//! Workspace-level integration tests: multi-file compilation through the
//! whole stack (frontend → pre-linker → optimizer → executor → machine),
//! exercising the paper's separate-compilation story end to end.

use dsm_core::workloads::{conv2d_source, transpose_source, Policy};
use dsm_core::{ErrorKind, ExecOptions, MachineConfig, OptConfig, Session};

/// A multi-file application: main + library file, a reshaped common
/// block, propagation into separately-"compiled" subroutines, and a
/// portion-passing call — all features at once.
#[test]
fn multi_file_application() {
    let main_f = "\
      program main
      integer i
      real*8 grid(256), scratch(256)
      common /state/ grid
c$distribute_reshape grid(block)
c$distribute_reshape scratch(cyclic(4))
      call fillseq(scratch)
      call relax(grid, scratch)
      do i = 1, 256, 4
        call bump(scratch(i))
      enddo
      end
";
    let lib_f = "\
      subroutine fillseq(x)
      integer i
      real*8 x(256)
      do i = 1, 256
        x(i) = i
      enddo
      end
      subroutine relax(g, s)
      integer i
      real*8 g(256), s(256)
      common /state/ g2
      real*8 g2(256)
c$distribute_reshape g2(block)
c$doacross local(i) affinity(i) = data(g(i))
      do i = 2, 255
        g(i) = (s(i-1) + s(i) + s(i+1)) / 3.0
      enddo
      end
      subroutine bump(x)
      integer j
      real*8 x(4)
      do j = 1, 4
        x(j) = x(j) + 100.0
      enddo
      end
";
    let program = Session::new()
        .source("main.f", main_f)
        .source("lib.f", lib_f)
        .optimize(OptConfig::default())
        .compile()
        .unwrap_or_else(|e| panic!("multi-file app failed: {e:?}"));
    assert!(
        program.prelink_report().clones_created >= 2,
        "fillseq and relax must be cloned for their reshaped signatures"
    );
    let out = program
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["grid", "scratch"]),
        )
        .expect("runs");
    let caps = &out.captures;
    assert!(out.report.parallel_regions >= 1);
    // scratch = i + 100 after bump; grid interior = mean of neighbours.
    assert_eq!(caps[1][9], 10.0 + 100.0);
    assert_eq!(caps[0][9], 10.0, "grid(10) = (9+10+11)/3");
}

/// The same workload compiled as one file vs split across files must
/// produce the same answers (separate compilation is transparent).
#[test]
fn split_files_equal_single_file() {
    let part1 = "      program main\n      real*8 a(64)\nc$distribute_reshape a(block)\n      call work(a)\n      end\n";
    let part2 = "      subroutine work(x)\n      integer i\n      real*8 x(64)\n      do i = 1, 64\n        x(i) = 3*i\n      enddo\n      end\n";
    let single = format!("{part1}{part2}");

    let p_split = Session::new()
        .source("a.f", part1)
        .source("b.f", part2)
        .compile()
        .expect("split compiles");
    let p_single = Session::new()
        .source("all.f", &single)
        .compile()
        .expect("single compiles");
    let opts = ExecOptions::new(2).capture(&["a"]);
    let c1 = p_split
        .run(&MachineConfig::small_test(2), &opts)
        .unwrap()
        .captures;
    let c2 = p_single
        .run(&MachineConfig::small_test(2), &opts)
        .unwrap()
        .captures;
    assert_eq!(c1[0], c2[0]);
}

/// Workload programs produce identical numerical results across every
/// optimization level (the optimizer must never change semantics).
#[test]
fn optimization_levels_agree_on_workloads() {
    let sources = [
        transpose_source(24, 1, Policy::Reshaped),
        conv2d_source(24, 1, Policy::Reshaped, true),
    ];
    for src in &sources {
        let mut reference: Option<Vec<f64>> = None;
        for opt in [
            OptConfig::none(),
            OptConfig::tile_peel_only(),
            OptConfig::tile_peel_hoist(),
            OptConfig::default(),
        ] {
            let p = Session::new()
                .source("w.f", src)
                .optimize(opt)
                .compile()
                .expect("compiles");
            let cap = p
                .run(
                    &Policy::Reshaped.machine(4, 1024),
                    &ExecOptions::new(4).capture(&["a"]),
                )
                .expect("runs")
                .captures;
            match &reference {
                None => reference = Some(cap[0].clone()),
                Some(r) => assert_eq!(&cap[0], r, "results changed under {opt:?}"),
            }
        }
    }
}

/// Results must not depend on the processor count.
#[test]
fn results_independent_of_nprocs() {
    let src = conv2d_source(32, 2, Policy::Reshaped, true);
    let p = Session::new()
        .source("c.f", &src)
        .compile()
        .expect("compiles");
    let mut reference: Option<Vec<f64>> = None;
    for nprocs in [1, 2, 4, 8] {
        let cap = p
            .run(
                &Policy::Reshaped.machine(nprocs, 1024),
                &ExecOptions::new(nprocs).capture(&["a"]),
            )
            .expect("runs")
            .captures;
        match &reference {
            None => reference = Some(cap[0].clone()),
            Some(r) => assert_eq!(&cap[0], r, "results changed at P={nprocs}"),
        }
    }
}

/// Cross-file link checks fire with the right error category.
#[test]
fn link_time_common_check_across_files() {
    let errs = Session::new()
        .source(
            "a.f",
            "      program main\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(block)\n      call s\n      end\n",
        )
        .source(
            "b.f",
            "      subroutine s\n      real*8 a(50)\n      common /blk/ a\nc$distribute_reshape a(block)\n      a(1) = 0.0\n      end\n",
        )
        .compile()
        .expect_err("inconsistent shapes must fail at link time");
    assert!(errs.iter().any(|e| e.kind == ErrorKind::Link), "{errs:?}");
}

/// Runtime checks validate whole-array shape matches across files.
#[test]
fn runtime_whole_array_shape_check() {
    let p = Session::new()
        .source(
            "a.f",
            "      program main\n      real*8 a(10, 20)\nc$distribute_reshape a(block, *)\n      call s(a)\n      end\n",
        )
        .source(
            "b.f",
            "      subroutine s(x)\n      real*8 x(20, 10)\n      x(1, 1) = 0.0\n      end\n",
        )
        .compile()
        .expect("compiles (shape bug is dynamic)");
    let err = p
        .run(
            &MachineConfig::small_test(2),
            &ExecOptions::new(2).with_checks(true),
        )
        .expect_err("transposed formal shape must fail the runtime check");
    assert!(err.to_string().contains("shape"), "{err}");
}

/// The executor's counters drive the paper's analyses; sanity-check that
/// a NUMA-hostile program reports dramatically more remote misses.
#[test]
fn counters_distinguish_placement_quality() {
    let hostile = transpose_source(96, 3, Policy::FirstTouch);
    let friendly = transpose_source(96, 3, Policy::Reshaped);
    let run = |src: &str, pol: Policy| {
        let p = Session::new()
            .source("t.f", src)
            .compile()
            .expect("compiles");
        p.run(&pol.machine(8, 64), &ExecOptions::new(8))
            .expect("runs")
            .report
    };
    let rh = run(&hostile, Policy::FirstTouch);
    let rf = run(&friendly, Policy::Reshaped);
    assert!(
        rh.total.remote_fraction() > rf.total.remote_fraction(),
        "hostile {:.2} vs friendly {:.2}",
        rh.total.remote_fraction(),
        rf.total.remote_fraction()
    );
}
