//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of criterion's API that the benches in
//! `crates/bench` use: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is honest but simple: each benchmark runs one warm-up call,
//! then `sample_size` timed samples, and reports min / mean / max wall-clock
//! per iteration. There is no statistical analysis, HTML report, or output
//! directory — results print to stdout.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works like the real crate.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            group: name.to_string(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, 10, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.group, name);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `iters_per_sample` calls of `routine` and record one sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up pass, also used to pick an iteration count that keeps each
    // sample above ~1ms so Instant resolution doesn't dominate.
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let once = warm.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters = if once < Duration::from_millis(1) {
        (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u64
    } else {
        1
    };

    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("  {name:<40} (benchmark body never called Bencher::iter)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {name:<40} time: [{} {} {}]",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Define a function that runs each target against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function("noop", |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        assert!(calls > 0);
    }
}
