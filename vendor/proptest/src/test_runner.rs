//! Deterministic runner state: config, per-case RNG, and case outcomes.

/// Test-runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` precondition not met — draw another case.
    Reject(String),
    /// A `prop_assert*!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// A rejected precondition.
    pub fn reject(why: &str) -> Self {
        TestCaseError::Reject(why.to_string())
    }
}

/// Per-case deterministic generator (SplitMix64 seeded from the test name
/// and case index, so every run of the suite sees the same inputs).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = Self {
            state: h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        };
        // A few discard rounds decorrelate adjacent case seeds.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`. Panics when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
