//! `any::<T>()` for the primitive types the workspace's tests draw.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (`any::<T>()`).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly well-behaved finite values, with occasional special values
        // so `prop_filter("finite", ..)`-style guards stay meaningful.
        match rng.below(16) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            5 => f64::MIN_POSITIVE,
            _ => {
                let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let exp = rng.below(41) as i32 - 20;
                let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
                sign * mantissa * 2f64.powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_mixes_specials_and_finites() {
        let mut rng = TestRng::for_case("arb-f64", 0);
        let mut finite = 0;
        let mut special = 0;
        for _ in 0..1000 {
            let v = f64::arbitrary(&mut rng);
            if v.is_finite() {
                finite += 1;
            } else {
                special += 1;
            }
        }
        assert!(finite > 500);
        assert!(special > 10);
    }
}
