//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A range of collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::for_case("collection", 0);
        let s = vec(0u64..10, 1..4);
        for _ in 0..500 {
            let v = s.gen_value(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
