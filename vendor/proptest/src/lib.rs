//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the subset of proptest's API that its test suites use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`strategy::Strategy`] with `prop_map` / `prop_filter`,
//! - [`strategy::Just`], [`arbitrary::any`], integer-range strategies,
//!   tuple strategies, `prop::collection::vec`, and simple
//!   regex-pattern string strategies (`"[a-d]"`, `"[ -~\n]{0,300}"`),
//! - [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`], [`prop_assume!`].
//!
//! Differences from real proptest, by design:
//!
//! - **Deterministic**: cases derive from a fixed per-test seed, so runs are
//!   reproducible in CI. Set `PROPTEST_CASES` to change the case count.
//! - **No shrinking**: a failing case reports its inputs (via the assertion
//!   message) but is not minimized.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The prelude mirrors `proptest::prelude`: strategies, config, macros, and
/// the crate itself under the name `prop` (for `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Run each test body over `config.cases` deterministically generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]   // optional
///     /// docs and attributes pass through
///     #[test]
///     fn my_test(x in 0u64..10, v in prop::collection::vec(any::<bool>(), 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg); $($rest)*);
    };
    (@with_config ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                let mut rejected = 0u32;
                let mut case = 0u32;
                let mut ran = 0u32;
                // Allow extra draws to compensate for prop_assume rejections,
                // like real proptest's max_global_rejects.
                while ran < config.cases && case < config.cases.saturating_mul(16).max(64) {
                    let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                    case += 1;
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), &mut rng);)+
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => ran += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest: test {} failed at case {} (after {} ok, {} rejected):\n{}",
                                test_name, case - 1, ran, rejected, msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$( ::std::boxed::Box::new($s) ),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Fallible assertion: fails the current case without aborting the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                left,
                right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Fallible inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
