//! String strategies from simple regex-like patterns.
//!
//! Real proptest compiles full regexes; this stand-in supports the subset
//! the workspace's tests use: sequences of literal characters and character
//! classes (`[a-d]`, `[ -~\n]`), each optionally repeated with `{n}` or
//! `{min,max}`. Unsupported syntax panics loudly so a silently-wrong
//! generator can't masquerade as coverage.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// A flattened set of candidate characters.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32, // inclusive
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other, // \\, \[, \-, \{ …
    }
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let e = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                set.push(unescape(e));
            }
            _ => {
                // Range `a-z` iff '-' is followed by a non-']' char.
                if chars.peek() == Some(&'-') {
                    let mut ahead = chars.clone();
                    ahead.next(); // the '-'
                    match ahead.peek() {
                        Some(&end) if end != ']' => {
                            chars.next(); // consume '-'
                            let end = match chars.next() {
                                Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in pattern {pattern:?}")
                                })),
                                Some(e) => e,
                                None => panic!("unterminated range in pattern {pattern:?}"),
                            };
                            assert!(
                                c <= end,
                                "inverted range {c:?}-{end:?} in pattern {pattern:?}"
                            );
                            for v in c as u32..=end as u32 {
                                if let Some(ch) = char::from_u32(v) {
                                    set.push(ch);
                                }
                            }
                            continue;
                        }
                        _ => {}
                    }
                }
                set.push(c);
            }
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern {pattern:?}");
    set
}

fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> (u32, u32) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    let (lo, hi) = match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().unwrap_or_else(|_| {
                                panic!("bad repetition {body:?} in pattern {pattern:?}")
                            }),
                            hi.trim().parse().unwrap_or_else(|_| {
                                panic!("bad repetition {body:?} in pattern {pattern:?}")
                            }),
                        ),
                        None => {
                            let n = body.trim().parse().unwrap_or_else(|_| {
                                panic!("bad repetition {body:?} in pattern {pattern:?}")
                            });
                            (n, n)
                        }
                    };
                    assert!(lo <= hi, "inverted repetition in pattern {pattern:?}");
                    return (lo, hi);
                }
                body.push(c);
            }
            panic!("unterminated repetition in pattern {pattern:?}");
        }
        Some('*') => {
            chars.next();
            (0, 16)
        }
        Some('+') => {
            chars.next();
            (1, 16)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars, pattern)),
            '\\' => Atom::Literal(unescape(chars.next().unwrap_or_else(|| {
                panic!("dangling escape in pattern {pattern:?}")
            }))),
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!(
                    "string pattern {pattern:?} uses regex syntax ({c:?}) beyond the \
                     vendored proptest subset (classes, literals, repetition)"
                )
            }
            _ => Atom::Literal(c),
        };
        let (min, max) = parse_repeat(&mut chars, pattern);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let count = p.min + rng.below((p.max - p.min + 1) as u64) as u32;
            for _ in 0..count {
                match &p.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                }
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        self.as_str().gen_value(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_yields_one_char() {
        let mut rng = TestRng::for_case("string", 0);
        for _ in 0..200 {
            let s = "[a-d]".gen_value(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(('a'..='d').contains(&s.chars().next().unwrap()));
        }
    }

    #[test]
    fn printable_ascii_with_bounded_repetition() {
        let mut rng = TestRng::for_case("string", 1);
        for _ in 0..50 {
            let s = "[ -~\n]{0,300}".gen_value(&mut rng);
            assert!(s.chars().count() <= 300);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn literals_and_counts() {
        let mut rng = TestRng::for_case("string", 2);
        assert_eq!("abc".gen_value(&mut rng), "abc");
        assert_eq!("a{3}".gen_value(&mut rng), "aaa");
    }
}
