//! The `Strategy` trait and the combinators the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a
/// deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred`, resampling on rejection.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        (**self).gen_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// `prop_filter` combinator.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.gen_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`. Panics if empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].gen_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let width = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                let off = rng.below(width);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..2000 {
            let v = (-50i64..50).gen_value(&mut r);
            assert!((-50..50).contains(&v));
            let u = (1usize..17).gen_value(&mut r);
            assert!((1..17).contains(&u));
        }
    }

    #[test]
    fn map_filter_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![Just(0i64), (10i64..20).prop_map(|v| v * 2)]
            .prop_filter("nonnegative", |v| *v >= 0);
        for _ in 0..500 {
            let v = s.gen_value(&mut r);
            assert!(v == 0 || (20..40).contains(&v));
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0u64..4, Just(7i32), 1usize..2).gen_value(&mut r);
        assert!(a < 4);
        assert_eq!(b, 7);
        assert_eq!(c, 1);
    }
}
