//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the tiny subset of `rand` it could plausibly need as a
//! deterministic generator. Nothing in the workspace currently calls into
//! this crate at runtime; it exists so `rand` dependency edges resolve.
//!
//! The generator is SplitMix64: tiny, fast, and good enough for test-data
//! generation. It is intentionally *not* cryptographically secure.

/// A deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Create a generator from an explicit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Minimal `Rng` surface: uniform draws from half-open integer ranges and
/// a uniform `f64` in `[0, 1)`.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[range.start, range.end)`. Panics on empty ranges.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let width = range.end - range.start;
        range.start + self.next_u64() % width
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Rng for SmallRng {
    fn next_u64(&mut self) -> u64 {
        SmallRng::next_u64(self)
    }
}

/// A process-global convenience generator, seeded deterministically.
pub fn thread_rng() -> SmallRng {
    SmallRng::seed_from_u64(0x5eed_0fd5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..1000 {
            let v = a.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f = a.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
