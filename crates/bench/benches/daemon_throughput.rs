//! Throughput and latency of the `dsmd` daemon: what the program cache
//! and pooled (snapshot-restored) machines buy over a cold
//! compile-per-request pipeline, single-client and under concurrent
//! load.
//!
//! Three sections:
//!
//! 1. single client, cold (`"cold":true` — per-request compile and
//!    machine construction) vs warm (cache hit + pooled machine), with
//!    the acceptance assert: warm throughput must be at least
//!    `DSM_BENCH_DAEMON_FLOOR`× cold (default 5×);
//! 2. multi-client: 8 concurrent connections hammering the warm path,
//!    aggregate requests/s and p50/p99 latency;
//! 3. where the speedup comes from: host microtimings of compile,
//!    machine construction, snapshot and restore.
//!
//! Recorded output: `bench_output_daemon.txt` at the workspace root.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Instant;

use dsm_core::{compile_source, ExecOptions, Machine, OptConfig};
use dsm_daemon::{serve, DaemonConfig};
use dsm_proto::{parse, run_request_json, MachineSpec, Value};

/// A compile-heavy, run-light program: the executed main loop is tiny
/// (16x16), but 256 never-called subroutines each carry a reshaped
/// distribution and an affinity-scheduled loop nest, so a cold request
/// pays the full front-end, pre-linker and lowering cost on every
/// compile while warm requests skip it via the program cache.
fn gen_program(nsubs: usize) -> String {
    let mut s = String::from(
        "      program main
      integer i, j
      real*8 a(16,16)
c$distribute_reshape a(*,block)
c$doacross local(i,j) affinity(j) = data(a(1,j))
      do j = 1, 16
        do i = 1, 16
          a(i,j) = i + 2*j
        enddo
      enddo
      end
",
    );
    for k in 0..nsubs {
        s.push_str(&format!(
            "      subroutine work{k}()
      integer i, j
      real*8 x(64,64)
c$distribute_reshape x(*,block)
c$doacross local(i,j) affinity(j) = data(x(1,j))
      do j = 1, 64
        do i = 1, 64
          x(i,j) = x(i,j) * 2.0d0 + i + j
        enddo
      enddo
      end
"
        ));
    }
    s
}

fn sources() -> Vec<(String, String)> {
    vec![("bench.f".to_string(), gen_program(256))]
}

/// The default `dsmfc` machine: a 1/64-scale Origin-2000, 8 processors.
fn spec() -> MachineSpec {
    MachineSpec::origin2000(8, 64, false)
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(socket: &PathBuf) -> Client {
        let stream = UnixStream::connect(socket).expect("daemon is listening");
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn run(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        let v = parse(reply.trim_end()).expect("valid reply");
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "bench request failed: {reply}"
        );
    }
}

struct Measured {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 * p).ceil() as usize).clamp(1, sorted_ms.len()) - 1;
    sorted_ms[idx]
}

fn measure_client(socket: &PathBuf, n: usize, cold: bool) -> Measured {
    let line = run_request_json(
        &sources(),
        &OptConfig::default(),
        &spec(),
        &ExecOptions::new(8).to_json(),
        0,
        None,
        cold,
    );
    let mut c = Client::connect(socket);
    let mut lat_ms = Vec::with_capacity(n);
    let start = Instant::now();
    for _ in 0..n {
        let t = Instant::now();
        c.run(&line);
        lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let dt = start.elapsed().as_secs_f64();
    lat_ms.sort_by(f64::total_cmp);
    Measured {
        rps: n as f64 / dt,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
    }
}

fn report(label: &str, n: usize, m: &Measured) {
    println!(
        "{label:<28} {n:>4} reqs   {:>7.1} req/s   p50 {:>7.2} ms   p99 {:>7.2} ms",
        m.rps, m.p50_ms, m.p99_ms
    );
}

fn main() {
    let socket = std::env::temp_dir().join(format!("dsmd-bench-{}.sock", std::process::id()));
    let handle = serve(&DaemonConfig {
        socket: socket.clone(),
        workers: 8,
        queue: 256,
    })
    .expect("daemon starts");

    println!(
        "=== dsmd daemon throughput (256-routine compile-heavy program, 8-proc 1/64 Origin-2000) ==="
    );

    // Warm the cache and pool once so "warm" measures steady state.
    measure_client(&socket, 2, false);

    let cold = measure_client(&socket, 40, true);
    report("single client, cold", 40, &cold);
    let warm = measure_client(&socket, 400, false);
    report("single client, warm", 400, &warm);
    let speedup = warm.rps / cold.rps;
    println!("warm/cold speedup: {speedup:.1}x");

    // 8 concurrent clients on the warm path: aggregate throughput and
    // tail latency under contention for workers, cache and pool.
    let clients = 8;
    let per_client = 100;
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let line = run_request_json(
                    &sources(),
                    &OptConfig::default(),
                    &spec(),
                    &ExecOptions::new(8).to_json(),
                    0,
                    None,
                    false,
                );
                let mut c = Client::connect(&socket);
                let mut lat_ms = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    c.run(&line);
                    lat_ms.push(t.elapsed().as_secs_f64() * 1e3);
                }
                lat_ms
            })
        })
        .collect();
    let mut lat_ms: Vec<f64> = threads
        .into_iter()
        .flat_map(|t| t.join().unwrap())
        .collect();
    let dt = start.elapsed().as_secs_f64();
    lat_ms.sort_by(f64::total_cmp);
    let multi = Measured {
        rps: (clients * per_client) as f64 / dt,
        p50_ms: percentile(&lat_ms, 0.50),
        p99_ms: percentile(&lat_ms, 0.99),
    };
    report(
        &format!("{clients} clients, warm"),
        clients * per_client,
        &multi,
    );

    let stats = handle.state().cache.stats();
    let pool = handle.state().pool.stats();
    println!(
        "cache: {} hits / {} misses; pool: {} created, {} reused",
        stats.hits, stats.misses, pool.created, pool.reused
    );
    handle.shutdown();
    handle.join();

    // Where the warm-path speedup comes from, on this host.
    let t = Instant::now();
    let program = compile_source(&sources(), &OptConfig::default()).unwrap();
    let compile_ms = t.elapsed().as_secs_f64() * 1e3;
    let cfg = spec().to_config();
    let t = Instant::now();
    let m = Machine::new(cfg.clone());
    let construct_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let snap = m.snapshot();
    let snapshot_ms = t.elapsed().as_secs_f64() * 1e3;
    let mut m = m;
    m.restore(&snap);
    let t = Instant::now();
    m.restore(&snap);
    let restore_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let _ = program.run_on(&mut m, &ExecOptions::new(8)).unwrap();
    let run_ms = t.elapsed().as_secs_f64() * 1e3;
    println!(
        "per-request costs: compile {compile_ms:.2} ms, machine construction \
         {construct_ms:.2} ms, snapshot {snapshot_ms:.2} ms, restore {restore_ms:.2} ms, \
         simulation {run_ms:.2} ms"
    );

    let floor: f64 = std::env::var("DSM_BENCH_DAEMON_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    if speedup < floor {
        eprintln!(
            "daemon_throughput: warm path only {speedup:.1}x over cold (floor {floor:.1}x)"
        );
        std::process::exit(1);
    }
    println!("DAEMON THROUGHPUT OK (warm >= {floor:.1}x cold)");
}
