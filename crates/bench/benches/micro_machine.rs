//! Criterion microbenchmarks: machine-substrate throughput.
//!
//! Measures the simulator's cache/TLB/directory pipeline on synthetic
//! access streams — the host-side cost that bounds how large an
//! experiment the harness can run — and sanity-checks the simulated
//! latencies (local vs remote, sequential vs strided).

use criterion::{criterion_group, criterion_main, Criterion};
use dsm_machine::{AccessKind, Machine, MachineConfig, NodeId, ProcId};

fn bench_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine");
    group.sample_size(20);

    group.bench_function("sequential_read_4k", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small_test(2));
            let a = m.alloc_pages(32 * 1024);
            let mut total = 0u64;
            for i in 0..4096u64 {
                total += m.access(ProcId(0), a + i * 8, AccessKind::Read);
            }
            std::hint::black_box(total)
        })
    });

    group.bench_function("strided_read_4k", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small_test(2));
            let a = m.alloc_pages(4096 * 256);
            let mut total = 0u64;
            for i in 0..4096u64 {
                total += m.access(ProcId(0), a + i * 256, AccessKind::Read);
            }
            std::hint::black_box(total)
        })
    });

    group.bench_function("false_sharing_pingpong", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::small_test(4));
            let a = m.alloc_pages(1024);
            let mut total = 0u64;
            for _ in 0..1024 {
                total += m.access(ProcId(0), a, AccessKind::Write);
                total += m.access(ProcId(2), a + 8, AccessKind::Write);
            }
            std::hint::black_box(total)
        })
    });

    group.finish();

    // Simulated-latency sanity: remote misses cost more than local.
    let mut m = Machine::new(MachineConfig::small_test(4));
    let local = m.alloc_pages(4096);
    let remote = m.alloc_pages(4096);
    m.place_range(local, 4096, NodeId(0));
    m.place_range(remote, 4096, NodeId(1));
    let cl = m.access(ProcId(0), local, AccessKind::Read);
    let cr = m.access(ProcId(0), remote, AccessKind::Read);
    println!("\nsimulated miss latency: local={cl} remote={cr} (paper: ~70 vs 110-180 cycles)");
    assert!(cr > cl);
}

criterion_group!(benches, bench_streams);
criterion_main!(benches);
