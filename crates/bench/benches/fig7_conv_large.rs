//! **Figure 7** — 2-D convolution, 5000×5000 (Section 8.3).
//!
//! The large-input counterpart of Figure 6.
//!
//! Paper shape: with `(*, block)` the per-processor portions are large,
//! so plain regular distribution performs as well as reshaped — the
//! page-granularity edge effects that hurt the small input vanish
//! ("regular distribution is perfectly adequate when the individual
//! portions of a distributed array are large"). With `(block, block)`
//! the portions have small contiguous runs regardless of input size, so
//! reshaping remains clearly best. At very high P the working set fits
//! the aggregate caches and speedups go superlinear.

use dsm_bench::{final_speedup, print_figure, proc_counts, scale, sweep};
use dsm_core::workloads::{conv2d_source, Policy};

fn main() {
    let scale = scale();
    let procs = proc_counts();
    let (n, reps) = (320, 1);

    let one = sweep(&|p| conv2d_source(n, reps, p, false), &procs, scale);
    print_figure("Figure 7 (left): conv 5000x5000 scaled, (*,block)", &one);
    let rg1 = final_speedup(&one, Policy::Regular);
    let rs1 = final_speedup(&one, Policy::Reshaped);
    let ft1 = final_speedup(&one, Policy::FirstTouch);
    println!("\nshape checks (*,block): regular {rg1:.2} ~ reshaped {rs1:.2}, both > ft {ft1:.2}");
    assert!(
        rg1 > rs1 * 0.8,
        "(*,block) large input: regular must be competitive with reshaped ({rg1:.2} vs {rs1:.2})"
    );
    assert!(
        rg1 > ft1,
        "(*,block): regular must beat hot-node first-touch"
    );

    let two = sweep(&|p| conv2d_source(n, reps, p, true), &procs, scale);
    print_figure(
        "Figure 7 (right): conv 5000x5000 scaled, (block,block)",
        &two,
    );
    let rs2 = final_speedup(&two, Policy::Reshaped);
    let rr2 = final_speedup(&two, Policy::RoundRobin);
    let ft2 = final_speedup(&two, Policy::FirstTouch);
    let rg2 = final_speedup(&two, Policy::Regular);
    println!("shape checks (block,block): rs {rs2:.2} > rr {rr2:.2} / ft {ft2:.2} / reg {rg2:.2}");
    assert!(
        rs2 > rr2 && rs2 > ft2 && rs2 > rg2,
        "(block,block): reshaped clearly best"
    );

    // Two-level vs one-level at the top processor count (communication /
    // computation ratio favours 2-D blocks at high P).
    let top1 = final_speedup(&one, Policy::Reshaped);
    let top2 = final_speedup(&two, Policy::Reshaped);
    println!("two-level {top2:.2} vs one-level {top1:.2} at top P (paper: 2-level wins at high P)");
    println!("FIG7 OK");
}
