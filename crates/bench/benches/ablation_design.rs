//! Ablations of the design choices DESIGN.md calls out, beyond the
//! paper's own Table-2 ablation:
//!
//! 1. **Processor-tile interchange** (Section 7.1.1): nested parallel
//!    loops with the tile loops outermost vs in place.
//! 2. **Loop skewing** (Section 7.1): with skewing, `A(i + c*k)` becomes
//!    tileable; without it the reference stays on the raw path.
//! 3. **OS page migration** (extension): a no-directive program under the
//!    migration daemon vs plain first-touch.

use dsm_bench::{run_built, scale};
use dsm_core::workloads::{lu_source, Policy};
use dsm_core::{ExecOptions, Machine, OptConfig, Session};

fn main() {
    let scale = scale();

    // --- 1. Serial-nest interchange on/off: only the inner loop of this
    // serial nest walks the distributed dimension, so without interchange
    // the tiler rebuilds the processor tile once per outer iteration.
    let nest_src = "      program main
      integer i, j
      real*8 b(512, 64)
c$distribute_reshape b(block, *)
      do j = 1, 64
        do i = 1, 512
          b(i, j) = i + j
        enddo
      enddo
      end
";
    let cfg = Policy::Reshaped.machine(4, scale);
    let with = run_built(nest_src, &OptConfig::default(), &cfg, 4);
    let without = run_built(
        nest_src,
        &OptConfig {
            interchange: false,
            ..OptConfig::default()
        },
        &cfg,
        4,
    );
    println!("=== ablation: serial-nest interchange (Section 7.1.1) ===");
    println!("  interchange on : {:>12} cycles", with.total_cycles);
    println!("  interchange off: {:>12} cycles", without.total_cycles);
    assert!(
        with.total_cycles < without.total_cycles,
        "interchange must pay on serial nests ({} vs {})",
        with.total_cycles,
        without.total_cycles
    );

    // Parallel nests interchange unconditionally (always legal for
    // doacross-nest), so LU is unaffected by the flag:
    let lu = lu_source(20, 20, 10, 1, Policy::Reshaped);
    let lu_with = run_built(&lu, &OptConfig::default(), &cfg, 4);
    let lu_without = run_built(
        &lu,
        &OptConfig {
            interchange: false,
            ..OptConfig::default()
        },
        &cfg,
        4,
    );
    assert_eq!(lu_with.total_cycles, lu_without.total_cycles);

    // --- 2. Skewing on/off for an invariant-offset reference.
    let skew_src = "      program main
      integer i, k, rep
      real*8 a(4096)
c$distribute_reshape a(block)
      k = 512
      do rep = 1, 4
      do i = 1, 2048
        a(i + 2*k) = i + rep
      enddo
      enddo
      end
";
    let cfg1 = Policy::Reshaped.machine(4, scale);
    let with_skew = run_built(skew_src, &OptConfig::default(), &cfg1, 4);
    let no_skew = run_built(
        skew_src,
        &OptConfig {
            skew: false,
            ..OptConfig::default()
        },
        &cfg1,
        4,
    );
    println!("=== ablation: loop skewing (invariant-offset sweep) ===");
    println!("  skew on : {:>12} cycles", with_skew.total_cycles);
    println!("  skew off: {:>12} cycles", no_skew.total_cycles);
    assert!(
        with_skew.total_cycles < no_skew.total_cycles,
        "skewing must enable tiling and win ({} vs {})",
        with_skew.total_cycles,
        no_skew.total_cycles
    );

    // --- 3. Page migration vs plain first-touch (extension).
    let mig_src = "      program main
      integer i, rep
      real*8 a(16384)
      do i = 1, 16384
        a(i) = 1.0
      enddo
      do rep = 1, 8
c$doacross local(i) shared(a)
      do i = 1, 16384
        a(i) = a(i) + 1.0
      enddo
      enddo
      end
";
    let prog = Session::new()
        .source("m.f", mig_src)
        .compile()
        .expect("compiles");
    let mut cfg2 = Policy::FirstTouch.machine(8, scale);
    let mut plain = Machine::new(cfg2.clone());
    let r_plain = dsm_exec::run_outcome(&mut plain, prog.program(), &ExecOptions::new(8))
        .unwrap()
        .report;
    cfg2.migration = dsm_machine::MigrationPolicy::threshold(4);
    let mut mig = Machine::new(cfg2);
    let r_mig = dsm_exec::run_outcome(&mut mig, prog.program(), &ExecOptions::new(8))
        .unwrap()
        .report;
    println!("=== ablation: OS page migration (no directives, serial init) ===");
    println!(
        "  first-touch      : {:>12} cycles, {} remote misses",
        r_plain.total_cycles, r_plain.total.remote_misses
    );
    println!(
        "  + migration      : {:>12} cycles, {} remote misses, {} pages migrated",
        r_mig.total_cycles,
        r_mig.total.remote_misses,
        mig.migrations()
    );
    assert!(r_mig.total.remote_misses <= r_plain.total.remote_misses);
    println!("ABLATION OK");
}
