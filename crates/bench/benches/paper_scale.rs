//! **Paper-scale runs** — Figures 5/6/7 at the paper's true input sizes.
//!
//! Unlike every other bench (which scales the machine down by
//! `DSM_BENCH_SCALE` and shrinks the arrays to match), this target runs
//! the **full-scale** Origin-2000 model on the paper's own inputs:
//!
//! * 2-D convolution 1000×1000 — Figure 6, exact: the one-level
//!   `(*,block)` sweep plus the two-level `(block,block)` panel whose
//!   ordering (reshaped < round-robin < regular) is the pinned
//!   regression (`crates/core/tests/paper_scale.rs`);
//! * 2-D convolution 5000×5000, `(*,block)` — Figure 7, sampled at 1/8
//!   (the exact run is ~25× the 1000² cost);
//! * transpose 5000×5000 — Figure 5, sampled at 1/8.
//!
//! Exact legs report measured cycles; sampled legs report extrapolated
//! estimates with their 95% confidence intervals (DESIGN.md §9 — miss
//! estimates documented within ±20%, cycles within ±10% at these
//! rates). Processor counts sweep to 128 to cover the paper's 96-proc
//! points.
//!
//! The 1000² legs are under a minute in release; the 5000² legs are
//! minutes even sampled, so they sit behind an explicit opt-in:
//!
//! ```text
//! cargo bench -p dsm-bench --bench paper_scale
//! DSM_PAPER_SCALE_FULL=1 cargo bench -p dsm-bench --bench paper_scale  # adds 5000² legs
//! ```

use dsm_core::workloads::{conv2d_source, transpose_source, Policy};
use dsm_core::{ExecOptions, RunReport, SamplingConfig, Session};

/// Full-scale machine: divisor 1.
const SCALE: usize = 1;

fn run(source: &str, policy: Policy, p: usize, sampling: Option<SamplingConfig>) -> RunReport {
    let prog = Session::new()
        .source("bench.f", source)
        .compile()
        .unwrap_or_else(|e| panic!("paper-scale workload failed to compile: {e:?}"));
    let mut opts = ExecOptions::new(p).serial_team(true);
    if let Some(s) = sampling {
        opts = opts.sampling(s);
    }
    prog.run(&policy.machine(p, SCALE), &opts)
        .unwrap_or_else(|e| panic!("paper-scale workload failed to run: {e}"))
        .report
}

fn report_row(label: &str, p: usize, r: &RunReport) {
    match &r.sampling {
        Some(s) if !s.exact => println!(
            "{label:<28} P={p:<4} kernel {:>12}  est L2 {:>9} ±{:>4.1}%  rem {:.2}  [sampled 1/{}]",
            r.kernel_cycles(),
            s.est_l2_misses,
            s.ci95_miss_pct,
            s.est_remote_misses as f64 / s.est_l2_misses.max(1) as f64,
            s.rate
        ),
        _ => println!(
            "{label:<28} P={p:<4} kernel {:>12}  L2 {:>9}          rem {:.2}  [exact]",
            r.kernel_cycles(),
            r.total.l2_misses,
            r.total.remote_fraction()
        ),
    }
}

fn main() {
    let procs: &[usize] = &[16, 64, 128];
    let policies: &[Policy] = &[Policy::Reshaped, Policy::RoundRobin, Policy::Regular];

    println!("=== Figure 6 (left) at paper scale: conv 1000x1000, (*,block), exact ===");
    for &policy in policies {
        let src = conv2d_source(1000, 1, policy, false);
        for &p in procs {
            let r = run(&src, policy, p, None);
            report_row(&format!("conv 1000^2 {}", policy.label()), p, &r);
        }
    }

    println!("\n=== Figure 6 (right) at paper scale: conv 1000x1000, (block,block), 3 sweeps, exact ===");
    let mut fig6: Vec<(Policy, u64)> = Vec::new();
    for &policy in policies {
        let src = conv2d_source(1000, 3, policy, true);
        let r = run(&src, policy, 64, None);
        report_row(&format!("conv 1000^2 2-level {}", policy.label()), 64, &r);
        fig6.push((policy, r.kernel_cycles()));
    }
    let cycles_of = |want: Policy| fig6.iter().find(|(p, _)| *p == want).unwrap().1;
    assert!(
        cycles_of(Policy::Reshaped) < cycles_of(Policy::RoundRobin)
            && cycles_of(Policy::RoundRobin) < cycles_of(Policy::Regular),
        "Fig-6 (block,block) paper-scale separation must hold: \
         reshaped < round-robin < regular"
    );
    println!("FIG6 PAPER-SCALE OK (2-level: reshaped < round-robin < regular)");

    // The 5000² legs are ~25× the work even sampled; keep them behind
    // an explicit opt-in so the default invocation stays a coffee break.
    if std::env::var("DSM_PAPER_SCALE_FULL").ok().as_deref() != Some("1") {
        println!("\n(5000^2 legs skipped: set DSM_PAPER_SCALE_FULL=1 to run them)");
        return;
    }

    println!("\n=== Figure 7 (left) at paper scale: conv 5000x5000, (*,block), sampled 1/8 ===");
    for &policy in policies {
        let src = conv2d_source(5000, 1, policy, false);
        for &p in procs {
            let r = run(&src, policy, p, Some(SamplingConfig::new(8)));
            report_row(&format!("conv 5000^2 {}", policy.label()), p, &r);
        }
    }

    println!("\n=== Figure 5 at paper scale: transpose 5000x5000, sampled 1/8 ===");
    for &policy in policies {
        let src = transpose_source(5000, 1, policy);
        for &p in procs {
            let r = run(&src, policy, p, Some(SamplingConfig::new(8)));
            report_row(&format!("transpose 5000^2 {}", policy.label()), p, &r);
        }
    }
    println!("\nPAPER-SCALE SWEEP COMPLETE");
}
