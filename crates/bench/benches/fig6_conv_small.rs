//! **Figure 6** — 2-D convolution, 1000×1000 (Section 8.3).
//!
//! Two parallelizations over the four policies, serial initialization:
//!
//! * one level, `(*, block)`: successive improvements first-touch →
//!   regular → round-robin → reshaped. On this *small* input, regular
//!   distribution suffers page-level false sharing as portions shrink
//!   with P (the paper calls its high-P behaviour "chaotic"), while
//!   reshaping removes the page-boundary edge effects and wins;
//! * two levels, `(block, block)`: first-touch and regular both poor
//!   (false sharing over both cache lines and pages), round-robin
//!   mid, reshaped clearly best — reshaping is "the only option" for
//!   such distributions.

use dsm_bench::{final_speedup, print_figure, proc_counts, scale, sweep};
use dsm_core::workloads::{conv2d_source, Policy};

fn main() {
    let scale = scale();
    let procs = proc_counts();
    let (n, reps) = (96, 1);

    let one = sweep(&|p| conv2d_source(n, reps, p, false), &procs, scale);
    print_figure("Figure 6 (left): conv 1000x1000 scaled, (*,block)", &one);
    let ft1 = final_speedup(&one, Policy::FirstTouch);
    let rs1 = final_speedup(&one, Policy::Reshaped);
    let rr1 = final_speedup(&one, Policy::RoundRobin);
    assert!(rs1 > ft1, "(*,block): reshaped must beat first-touch");
    assert!(
        rr1 > ft1,
        "(*,block): round-robin must beat serial-init first-touch"
    );
    // Deviation note (see EXPERIMENTS.md): at this scale the per-processor
    // working set fits comfortably in the scaled caches, so the fine
    // ordering among round-robin / regular / reshaped compresses; the
    // paper's small-input separation relies on a miss stream our scaled
    // cache regime does not sustain. We assert reshaped stays competitive.
    // The unscaled 1000² runs (paper_scale bench + the DSM_PAPER_SCALE=1
    // regression in crates/core/tests/paper_scale.rs) pin the full-size
    // behaviour: the (block,block) panel separates exactly as the paper
    // says, the (*,block) panel lands in the "regular adequate" regime.
    assert!(
        rs1 >= rr1 * 0.8,
        "(*,block): reshaped must stay close to round-robin"
    );

    let two = sweep(&|p| conv2d_source(n, reps, p, true), &procs, scale);
    print_figure(
        "Figure 6 (right): conv 1000x1000 scaled, (block,block)",
        &two,
    );
    let ft2 = final_speedup(&two, Policy::FirstTouch);
    let rg2 = final_speedup(&two, Policy::Regular);
    let rr2 = final_speedup(&two, Policy::RoundRobin);
    let rs2 = final_speedup(&two, Policy::Reshaped);
    println!(
        "\nshape checks (block,block): rs {rs2:.2} > rr {rr2:.2} >= ft {ft2:.2} ~ reg {rg2:.2}"
    );
    assert!(
        rs2 > rr2,
        "(block,block): reshaping is the only real option"
    );
    assert!(
        rs2 > ft2 && rs2 > rg2,
        "(block,block): reshaped beats both page-bound policies"
    );
    println!("FIG6 OK");
}
