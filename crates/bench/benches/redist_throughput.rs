//! **Redistribution throughput** — scheduled mover vs naive per-page
//! walker, host pages/s.
//!
//! Drives both movers through the same directive sequence on twin
//! machines: a block → cyclic(4) → block conversion pair plus a team
//! shrink/restore pair per iteration, over an 8 MiB array (8192 pages at
//! the 1 KiB test page size, P = 32). The metric is *pages retargeted
//! per second of host wall-clock* — every call covers the array's whole
//! page span, so both movers process the same page count and the ratio
//! is pure mover speed. The scheduled mover plans chunk-run coalesced,
//! fan-bounded rounds and skips already-home pages (the resize legs move
//! only the delta), so it must not be slower than the naive full remap.
//!
//! CI's bench-smoke job asserts scheduled ≥ `DSM_BENCH_REDIST_FLOOR` ×
//! naive (default 1.0); set the floor to `0` to report without
//! asserting.

use std::time::{Duration, Instant};

use dsm_ir::{Dist, DistKind, Distribution};
use dsm_machine::{Machine, MachineConfig, ProcId};
use dsm_runtime::{PoolSet, RtArray};

const NPROCS: usize = 32;
const EXTENT: u64 = 1 << 20; // 8 MiB of real*8 = 8192 small-test pages
const REPS: usize = 10;
const RUNS: usize = 3;

struct Workload {
    machine: Machine,
    #[allow(dead_code)]
    pools: PoolSet,
    array: RtArray,
}

fn fresh() -> Workload {
    let mut machine = Machine::new(MachineConfig::small_test(NPROCS));
    let mut pools = PoolSet::new(NPROCS, 4096);
    let array = RtArray::instantiate(
        &mut machine,
        &mut pools,
        "a",
        &[EXTENT],
        Some(&Distribution::new(vec![Dist::Block])),
        DistKind::Regular,
        NPROCS,
    );
    Workload {
        machine,
        pools,
        array,
    }
}

/// One full directive sequence; returns (pages retargeted, pages moved).
fn iteration(w: &mut Workload, scheduled: bool) -> (u64, u64) {
    let caller = ProcId(0);
    let npages = EXTENT * 8 / w.machine.config().page_size as u64;
    let cyclic = Distribution::new(vec![Dist::Cyclic(4)]);
    let block = Distribution::new(vec![Dist::Block]);
    let mut moved = 0usize;
    if scheduled {
        moved += w
            .array
            .redistribute_scheduled(&mut w.machine, caller, &cyclic, NPROCS)
            .unwrap();
        moved += w
            .array
            .resize_team(&mut w.machine, caller, NPROCS / 2, true)
            .unwrap();
        moved += w
            .array
            .resize_team(&mut w.machine, caller, NPROCS, true)
            .unwrap();
        moved += w
            .array
            .redistribute_scheduled(&mut w.machine, caller, &block, NPROCS)
            .unwrap();
    } else {
        moved += w
            .array
            .redistribute(&mut w.machine, caller, &cyclic, NPROCS)
            .unwrap();
        moved += w
            .array
            .resize_team(&mut w.machine, caller, NPROCS / 2, false)
            .unwrap();
        moved += w
            .array
            .resize_team(&mut w.machine, caller, NPROCS, false)
            .unwrap();
        moved += w
            .array
            .redistribute(&mut w.machine, caller, &block, NPROCS)
            .unwrap();
    }
    (4 * npages, moved as u64)
}

/// Best-of-RUNS wall clock for REPS iterations of one mover.
fn measure(scheduled: bool) -> (Duration, u64, u64) {
    let mut best: Option<(Duration, u64, u64)> = None;
    for _ in 0..RUNS {
        let mut w = fresh();
        let start = Instant::now();
        let mut retargeted = 0;
        let mut moved = 0;
        for _ in 0..REPS {
            let (r, m) = iteration(&mut w, scheduled);
            retargeted += r;
            moved += m;
        }
        let wall = start.elapsed();
        if best.as_ref().is_none_or(|(b, _, _)| wall < *b) {
            best = Some((wall, retargeted, moved));
        }
    }
    best.unwrap()
}

fn main() {
    let (naive_wall, naive_pages, naive_moved) = measure(false);
    let (sched_wall, sched_pages, sched_moved) = measure(true);
    assert_eq!(
        naive_pages, sched_pages,
        "both movers must retarget the same page span"
    );
    assert!(
        sched_moved <= naive_moved,
        "scheduled mover relocated more pages ({sched_moved}) than naive ({naive_moved})"
    );

    let naive_rate = naive_pages as f64 / naive_wall.as_secs_f64().max(1e-9);
    let sched_rate = sched_pages as f64 / sched_wall.as_secs_f64().max(1e-9);
    let ratio = sched_rate / naive_rate.max(1e-9);
    println!("Redistribution throughput: P={NPROCS}, {EXTENT} elems, {REPS} directive rounds");
    println!(
        "  naive walker:    {naive_wall:?} for {naive_pages} pages ({naive_moved} relocated) = {:.1}k pages/s",
        naive_rate / 1e3
    );
    println!(
        "  scheduled mover: {sched_wall:?} for {sched_pages} pages ({sched_moved} relocated) = {:.1}k pages/s",
        sched_rate / 1e3
    );
    println!("  scheduled/naive: {ratio:.2}x (best of {RUNS} runs each)");

    let floor: f64 = std::env::var("DSM_BENCH_REDIST_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    if floor > 0.0 {
        assert!(
            ratio >= floor,
            "scheduled mover only {ratio:.2}x the naive walker's pages/s, floor {floor:.1}x"
        );
        println!("REDIST_THROUGHPUT OK (floor {floor:.1}x)");
    } else {
        println!("REDIST_THROUGHPUT SKIPPED ASSERT (floor disabled)");
    }
}
