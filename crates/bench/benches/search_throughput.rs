//! Throughput of the auto-distribution search: candidate plans evaluated
//! per second, and how much of the serial evaluation cost the threaded
//! wave evaluator hides. This bounds what `--budget` the CI
//! `advisor-smoke` job can afford, and regresses loudly if candidate
//! generation, pruning, or the evaluator get slower.
//!
//! `DSM_BENCH_SCALE` (default 64) sets the machine scale divisor, as in
//! every other bench.

use dsm_advisor::{advise, AdvisorConfig};
use dsm_bench::scale;
use dsm_core::workloads::{transpose_source, Policy};
use std::time::Instant;

fn measure(label: &str, sources: &[(String, String)], cfg: &AdvisorConfig) {
    let start = Instant::now();
    let advice = match advise(sources, cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("search_throughput: {label}: advise failed: {e}");
            std::process::exit(1);
        }
    };
    let dt = start.elapsed().as_secs_f64();
    let search = advice.search_wall.as_secs_f64().max(1e-9);
    println!(
        "{label}: {} evaluated + {} pruned + {} rejected in {dt:.2}s \
         ({:.1} candidates/s), speedup over baseline {:.2}x, \
         eval overlap {:.2}x ({} thread(s))",
        advice.evaluated,
        advice.pruned,
        advice.rejected,
        advice.evaluated as f64 / search,
        advice.speedup(),
        advice.serial_eval_wall.as_secs_f64() / search,
        cfg.threads,
    );
    // The search must never hand back something slower than its own
    // baseline measurement — that would mean the ranking is broken.
    assert!(advice.best.total_cycles <= advice.baseline.total_cycles);
}

fn heat_source() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/fortran/heat.f");
    std::fs::read_to_string(path).expect("read examples/fortran/heat.f")
}

fn main() {
    let scale = scale();
    println!("=== advisor search throughput (scale {scale}) ===");
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let cfg = AdvisorConfig {
        nprocs: 8,
        scale,
        budget: 24,
        verify: false,
        ..AdvisorConfig::default()
    };
    measure(
        "transpose 160x160",
        &[(
            "transpose.f".to_string(),
            transpose_source(160, 3, Policy::FirstTouch),
        )],
        &cfg,
    );
    measure("heat.f", &[("heat.f".to_string(), heat_source())], &cfg);
    // The wave evaluator's concurrency claim: with >1 host core, the same
    // search must overlap candidate simulations (serial sum > wall).
    if threads >= 2 {
        let sources = [(
            "transpose.f".to_string(),
            transpose_source(160, 3, Policy::FirstTouch),
        )];
        let advice = advise(&sources, &cfg).expect("advise");
        assert!(
            advice.search_wall < advice.serial_eval_wall,
            "no overlap: search {:?} vs serial sum {:?}",
            advice.search_wall,
            advice.serial_eval_wall
        );
        println!(
            "overlap check: search {:?} < serial sum {:?} on {threads} cores",
            advice.search_wall, advice.serial_eval_wall
        );
    } else {
        println!("overlap check: skipped (single host core)");
    }
}
