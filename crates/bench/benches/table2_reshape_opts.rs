//! **Table 2** — Effect of reshape optimizations (Section 8.1).
//!
//! The paper measures four single-processor builds of NAS-LU:
//!
//! | build | paper (secs) |
//! |---|---|
//! | Reshape, no optimizations | 83.91 |
//! | Reshape, tile and peel | 53.26 |
//! | Reshape, tile and peel, hoist | 46.23 |
//! | Original code without reshaping | 45.71 |
//!
//! We rebuild the same ablation with [`OptConfig`] and report simulated
//! seconds at 195 MHz. Absolute values differ (scaled machine); the
//! expected *shape* is a large gap from no-opt to tile+peel, a smaller
//! one to +hoist, and near-parity with the non-reshaped original.

use dsm_bench::{run_built, scale};
use dsm_core::workloads::{lu_source, Policy};
use dsm_core::OptConfig;

fn main() {
    let scale = scale();
    let (n, steps) = (20, 1);
    let cfg = Policy::Reshaped.machine(1, scale);
    let reshaped = lu_source(n, n, n / 2, steps, Policy::Reshaped);
    let original = lu_source(n, n, n / 2, steps, Policy::FirstTouch);

    let rows: Vec<(&str, String, OptConfig, f64)> = vec![
        (
            "Reshape, no optimizations",
            reshaped.clone(),
            OptConfig::none(),
            83.91,
        ),
        (
            "Reshape, tile and peel",
            reshaped.clone(),
            OptConfig::tile_peel_only(),
            53.26,
        ),
        (
            "Reshape, tile and peel, hoist",
            reshaped.clone(),
            OptConfig::tile_peel_hoist(),
            46.23,
        ),
        (
            "Original code without reshaping",
            original,
            OptConfig::default(),
            45.71,
        ),
    ];

    println!("=== Table 2: Effect of Reshape Optimizations (1 processor) ===");
    println!(
        "{:<34} {:>12} {:>12} {:>8}",
        "build", "sim Mcycles", "sim secs", "paper s"
    );
    let mut measured = Vec::new();
    for (label, src, opt, paper) in &rows {
        let r = run_built(src, opt, &cfg, 1);
        let secs = r.seconds(195e6);
        measured.push(r.total_cycles);
        println!(
            "{:<34} {:>12.1} {:>12.4} {:>8.2}",
            label,
            r.total_cycles as f64 / 1e6,
            secs,
            paper
        );
    }
    let no_opt = measured[0] as f64;
    let tiled = measured[1] as f64;
    let hoisted = measured[2] as f64;
    let original_c = measured[3] as f64;
    println!("\nshape checks (paper ratios in parentheses):");
    println!("  no-opt / original   = {:.2}  (1.84)", no_opt / original_c);
    println!("  tiled  / original   = {:.2}  (1.17)", tiled / original_c);
    println!(
        "  hoisted/ original   = {:.2}  (1.01)",
        hoisted / original_c
    );
    assert!(no_opt > tiled, "tiling must improve the reshaped build");
    assert!(tiled > hoisted, "hoisting must improve the tiled build");
    assert!(
        hoisted < original_c * 1.25,
        "fully optimized reshaped build should run close to the original"
    );
    println!("TABLE2 OK");
}
