//! **Figure 5** — Performance of matrix transpose, 5000×5000
//! (Section 8.2).
//!
//! `A(j,i) = B(i,j)` with A `(*, block)` and B `(block, *)`, data
//! initialized *serially*.
//!
//! Paper shape: the `(block, *)` matrix cannot be distributed properly
//! without reshaping, so first-touch and regular distribution leave most
//! data on one or two nodes — those nodes bottleneck and performance is
//! extremely poor. Round-robin spreads pages and does much better.
//! Reshaping makes every portion contiguous and local, wins by 30–50%
//! over round-robin at moderate P, and also cuts TLB misses (the paper
//! measured round-robin spending ~15% of its time in TLB misses at 32
//! procs, the reshaped version less than half that).

use dsm_bench::{final_speedup, print_figure, proc_counts, scale, sweep};
use dsm_core::workloads::{transpose_source, Policy};

fn main() {
    let scale = scale();
    let procs = proc_counts();
    let (n, reps) = (320, 6);
    let series = sweep(&|p| transpose_source(n, reps, p), &procs, scale);
    print_figure(
        "Figure 5: matrix transpose speedups (scaled 5000x5000)",
        &series,
    );

    let ft = final_speedup(&series, Policy::FirstTouch);
    let rr = final_speedup(&series, Policy::RoundRobin);
    let rg = final_speedup(&series, Policy::Regular);
    let rs = final_speedup(&series, Policy::Reshaped);
    println!("\nshape checks:");
    println!("  reshaped {rs:.2} > round-robin {rr:.2} > first-touch {ft:.2} / regular {rg:.2}");
    assert!(rs > rr, "reshaped must beat round-robin");
    assert!(
        rr > ft,
        "round-robin must beat the hot-node first-touch version"
    );
    assert!(
        rr > rg * 0.9,
        "regular cannot fix (block,*) placement; ~first-touch level"
    );
    // TLB effect: reshaped touches fewer pages than round-robin.
    let top = series[0].procs.len() - 1;
    let tlb_rr = series
        .iter()
        .find(|s| s.policy == Policy::RoundRobin)
        .unwrap()
        .tlb_misses[top];
    let tlb_rs = series
        .iter()
        .find(|s| s.policy == Policy::Reshaped)
        .unwrap()
        .tlb_misses[top];
    println!("  TLB misses at top P: reshaped {tlb_rs} vs round-robin {tlb_rr}");
    assert!(tlb_rs < tlb_rr, "reshaping must reduce TLB misses");
    println!("FIG5 OK");
}
