//! **Figure 5** — Performance of matrix transpose, 5000×5000
//! (Section 8.2).
//!
//! `A(j,i) = B(i,j)` with A `(*, block)` and B `(block, *)`, data
//! initialized *serially*.
//!
//! Paper shape: the `(block, *)` matrix cannot be distributed properly
//! without reshaping, so first-touch and regular distribution leave most
//! data on one or two nodes — those nodes bottleneck and performance is
//! extremely poor. Round-robin spreads pages and does much better.
//! Reshaping makes every portion contiguous and local, wins by 30–50%
//! over round-robin at moderate P, and also cuts TLB misses (the paper
//! measured round-robin spending ~15% of its time in TLB misses at 32
//! procs, the reshaped version less than half that).

use dsm_bench::{final_speedup, print_figure, proc_counts, run_policy_with, scale, sweep};
use dsm_core::workloads::{transpose_source, Policy};
use dsm_core::{ExecOptions, Profile};

/// Remote misses attributed to `array` inside parallel regions (the
/// serial-init cell is excluded: first-touch necessarily initializes
/// locally, so the interesting traffic is the kernel's).
fn kernel_remote(profile: &Profile, array: &str) -> u64 {
    profile
        .cells
        .iter()
        .filter(|c| c.array == array && c.region != "(serial)")
        .map(|c| c.stats.remote_misses)
        .sum()
}

fn main() {
    let scale = scale();
    let procs = proc_counts();
    let (n, reps) = (320, 6);
    let series = sweep(&|p| transpose_source(n, reps, p), &procs, scale);
    print_figure(
        "Figure 5: matrix transpose speedups (scaled 5000x5000)",
        &series,
    );

    let ft = final_speedup(&series, Policy::FirstTouch);
    let rr = final_speedup(&series, Policy::RoundRobin);
    let rg = final_speedup(&series, Policy::Regular);
    let rs = final_speedup(&series, Policy::Reshaped);
    println!("\nshape checks:");
    println!("  reshaped {rs:.2} > round-robin {rr:.2} > first-touch {ft:.2} / regular {rg:.2}");
    assert!(rs > rr, "reshaped must beat round-robin");
    assert!(
        rr > ft,
        "round-robin must beat the hot-node first-touch version"
    );
    assert!(
        rr > rg * 0.9,
        "regular cannot fix (block,*) placement; ~first-touch level"
    );
    // TLB effect: reshaped touches fewer pages than round-robin.
    let top = series[0].procs.len() - 1;
    let tlb_rr = series
        .iter()
        .find(|s| s.policy == Policy::RoundRobin)
        .unwrap()
        .tlb_misses[top];
    let tlb_rs = series
        .iter()
        .find(|s| s.policy == Policy::Reshaped)
        .unwrap()
        .tlb_misses[top];
    println!("  TLB misses at top P: reshaped {tlb_rs} vs round-robin {tlb_rr}");
    assert!(tlb_rs < tlb_rr, "reshaping must reduce TLB misses");

    // Attribution study: the profiler must name the culprit. Under
    // first-touch the serially-initialized `(block,*)` matrix B is homed
    // on node 0, so the kernel's remote misses charge to B; reshaping
    // gives every processor its own local portions of both arrays, and
    // the (small) residual remote traffic flips to A's boundary lines.
    let nprocs = 8;
    let profile_of = |policy: Policy| {
        run_policy_with(
            &transpose_source(n, reps, policy),
            policy,
            scale,
            &ExecOptions::new(nprocs).profile(true).serial_team(true),
        )
        .report
        .profile
        .expect("profiling was on")
    };
    let ft_prof = profile_of(Policy::FirstTouch);
    let rs_prof = profile_of(Policy::Reshaped);
    let (ft_a, ft_b) = (kernel_remote(&ft_prof, "a"), kernel_remote(&ft_prof, "b"));
    let (rs_a, rs_b) = (kernel_remote(&rs_prof, "a"), kernel_remote(&rs_prof, "b"));
    println!("\nkernel remote-miss attribution at P={nprocs}:");
    println!("  first-touch: a={ft_a} b={ft_b}");
    println!("  reshaped:    a={rs_a} b={rs_b}");
    assert!(
        ft_b > ft_a,
        "under first-touch the remote misses must charge to B"
    );
    assert!(
        rs_a >= rs_b,
        "after reshaping the residual remote misses flip to A"
    );
    assert!(
        rs_b * 10 < ft_b.max(1),
        "reshaping must collapse B's remote misses (got {rs_b} vs {ft_b})"
    );
    assert!(
        ft_prof.hints.iter().any(|h| h.array == "b"),
        "first-touch profile must hint at reshaping B: {:?}",
        ft_prof.hints
    );
    println!("FIG5 OK");
}
