//! Criterion microbenchmarks: reshaped-array addressing cost.
//!
//! Measures the *simulator host* cost of executing a reshaped sweep under
//! each addressing mode the compiler can produce — and, more importantly,
//! reports the simulated-cycle ratios between the modes, which are the
//! quantities Table 2 aggregates (integer div/mod per access vs
//! FP-emulated vs tiled vs hoisted).

use criterion::{criterion_group, criterion_main, Criterion};
use dsm_core::workloads::Policy;
use dsm_core::{ExecOptions, Machine, OptConfig, Session};

const N: usize = 2048;

fn source() -> String {
    format!(
        "      program main
      integer i, rep
      real*8 a({N})
c$distribute_reshape a(block)
      do rep = 1, 2
      do i = 1, {N}
        a(i) = a(i) + 1.0
      enddo
      enddo
      end
"
    )
}

fn run_once(opt: &OptConfig) -> u64 {
    let prog = Session::new()
        .source("m.f", &source())
        .optimize(*opt)
        .compile()
        .unwrap();
    let cfg = Policy::Reshaped.machine(4, 64);
    let mut m = Machine::new(cfg);
    dsm_exec::run_outcome(&mut m, prog.program(), &ExecOptions::new(4))
        .unwrap()
        .report
        .total_cycles
}

fn bench_addressing(c: &mut Criterion) {
    let mut group = c.benchmark_group("addressing");
    group.sample_size(10);
    for (name, opt) in [
        ("raw_int_divmod", OptConfig::none()),
        (
            "raw_fp_divmod",
            OptConfig {
                fp_divmod: true,
                ..OptConfig::none()
            },
        ),
        ("tiled", OptConfig::tile_peel_only()),
        ("hoisted", OptConfig::tile_peel_hoist()),
    ] {
        group.bench_function(name, |b| b.iter(|| std::hint::black_box(run_once(&opt))));
    }
    group.finish();

    // Simulated-cycle ratios (the actual reproduction quantity).
    let raw = run_once(&OptConfig::none());
    let fp = run_once(&OptConfig {
        fp_divmod: true,
        ..OptConfig::none()
    });
    let tiled = run_once(&OptConfig::tile_peel_only());
    let hoisted = run_once(&OptConfig::tile_peel_hoist());
    println!("\nsimulated cycles: raw(int)={raw} raw(fp)={fp} tiled={tiled} hoisted={hoisted}");
    println!(
        "ratios vs hoisted: int={:.2} fp={:.2} tiled={:.2}",
        raw as f64 / hoisted as f64,
        fp as f64 / hoisted as f64,
        tiled as f64 / hoisted as f64
    );
    assert!(
        raw > fp,
        "35-cycle int div must cost more than 11-cycle fp emulation"
    );
    assert!(
        fp > tiled,
        "per-access div/mod must cost more than tiled addressing"
    );
    assert!(
        tiled > hoisted,
        "per-access pointer loads must cost more than hoisted"
    );
}

criterion_group!(benches, bench_addressing);
criterion_main!(benches);
