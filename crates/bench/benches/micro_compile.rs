//! Criterion microbenchmarks of the compiler itself.
//!
//! The paper notes that the first compilation "can potentially result in
//! several recompilations as the distribute_reshape directives are
//! propagated all the way down the call graph".  This bench measures the
//! host-side cost of each stage — frontend, full pipeline without
//! propagation, and full pipeline with a deep clone chain — so the cost
//! of the shadow-file mechanism is visible.

use criterion::{criterion_group, criterion_main, Criterion};
use dsm_core::{OptConfig, Session};

/// A call chain of `depth` subroutines, each passing the reshaped array
/// one level down (every level gets cloned by the pre-linker).
fn chain_source(depth: usize) -> String {
    let mut src = String::from(
        "      program main\n      real*8 a(512)\nc$distribute_reshape a(block)\n      call s1(a)\n      end\n",
    );
    for d in 1..=depth {
        let next = if d < depth {
            format!("      call s{}(x)\n", d + 1)
        } else {
            String::new()
        };
        src.push_str(&format!(
            "      subroutine s{d}(x)\n      integer i\n      real*8 x(512)\n      do i = 1, 512\n        x(i) = i\n      enddo\n{next}      end\n"
        ));
    }
    src
}

fn flat_source() -> String {
    dsm_core::workloads::lu_source(16, 16, 8, 1, dsm_core::workloads::Policy::Reshaped)
}

fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    group.sample_size(20);

    let flat = flat_source();
    group.bench_function("frontend_only", |b| {
        b.iter(|| {
            std::hint::black_box(dsm_frontend_compile(&flat));
        })
    });
    group.bench_function("full_pipeline_lu", |b| {
        b.iter(|| {
            std::hint::black_box(
                Session::new()
                    .source("lu.f", &flat)
                    .optimize(OptConfig::default())
                    .compile()
                    .unwrap(),
            );
        })
    });
    let chain = chain_source(8);
    group.bench_function("propagation_chain_depth8", |b| {
        b.iter(|| {
            std::hint::black_box(
                Session::new()
                    .source("chain.f", &chain)
                    .optimize(OptConfig::default())
                    .compile()
                    .unwrap(),
            );
        })
    });
    group.finish();

    // Report the clone counts so the propagation work is visible.
    let compiled = Session::new().source("chain.f", &chain).compile().unwrap();
    println!(
        "\npropagation chain depth 8: {} clones, {} recompilations",
        compiled.prelink_report().clones_created,
        compiled.prelink_report().recompilations
    );
    assert_eq!(compiled.prelink_report().clones_created, 8);
}

fn dsm_frontend_compile(src: &str) -> usize {
    dsm_frontend::compile_sources(&[("lu.f", src)])
        .map(|a| a.units.len())
        .unwrap_or(0)
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
