//! **Host scaling** — wall-clock cost of the simulator itself.
//!
//! The paper's evaluation sweeps simulated processor counts; before the
//! threaded team simulation, simulating N processors cost ~N× the host
//! wall-clock of one. This bench runs the Figure-5 transpose workload
//! (reshaped placement, nprocs = 8) twice — once with the serial-team
//! reference path (`ExecOptions::serial_team`) and once with the
//! default host-parallel path — and compares the host wall-clock the
//! [`dsm_core::RunReport`] records for the parallel regions (the part the
//! member threads accelerate; serial init is identical in both modes).
//!
//! Target: ≥4× speedup at nprocs = 8. Wall-clock depends on the host, so
//! the assertion scales with the cores actually available: hosts with
//! fewer than two cores only report the measurement.
//!
//! A third run with `ExecOptions::profile` measures the cost of the
//! attribution profiler, reported as overhead over the unprofiled
//! parallel run (the profiler's disabled-path cost — one predictable
//! branch per memory access — is below wall-clock noise and cannot be
//! measured from inside one build).

use std::time::Duration;

use dsm_bench::scale;
use dsm_core::workloads::{transpose_source, Policy};
use dsm_core::{ExecOptions, RunReport, Session};

const NPROCS: usize = 8;
const RUNS: usize = 3;

fn best_of(prog: &dsm_core::CompiledProgram, opts: &ExecOptions) -> (RunReport, Duration) {
    let cfg = Policy::Reshaped.machine(NPROCS, scale());
    let mut best: Option<(RunReport, Duration)> = None;
    for _ in 0..RUNS {
        let r = prog
            .run(&cfg, opts)
            .unwrap_or_else(|e| panic!("bench workload failed to run: {e}"))
            .report;
        let w = r.host_region_wall;
        if best.as_ref().is_none_or(|(_, b)| w < *b) {
            best = Some((r, w));
        }
    }
    best.unwrap()
}

fn main() {
    let src = transpose_source(320, 6, Policy::Reshaped);
    let prog = Session::new()
        .source("bench.f", &src)
        .compile()
        .unwrap_or_else(|e| panic!("bench workload failed to compile: {e:?}"));

    let (sr, serial_wall) = best_of(&prog, &ExecOptions::new(NPROCS).serial_team(true));
    let (pr, parallel_wall) = best_of(&prog, &ExecOptions::new(NPROCS));
    let (_, profiled_wall) = best_of(&prog, &ExecOptions::new(NPROCS).profile(true));

    assert_eq!(
        sr.total_cycles, pr.total_cycles,
        "parallel simulation must be cycle-exact on the conflict-free transpose"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    println!("Host scaling: fig5 transpose, reshaped, simulated nprocs={NPROCS}");
    println!("  host cores available:    {cores}");
    println!(
        "  serial-team region wall: {serial_wall:?} (total {:?})",
        sr.host_wall
    );
    println!(
        "  parallel region wall:    {parallel_wall:?} (total {:?})",
        pr.host_wall
    );
    println!("  wall-clock speedup:      {speedup:.2}x (best of {RUNS} runs each)");
    let overhead = profiled_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9) - 1.0;
    println!(
        "  profiled region wall:    {profiled_wall:?} ({:+.1}% over unprofiled)",
        overhead * 100.0
    );

    // The ≥4× target needs ≥8 host cores; scale the floor for smaller
    // hosts and only report on (near-)serial ones.
    let floor = if cores >= NPROCS {
        4.0
    } else {
        cores as f64 * 0.5
    };
    if cores >= 2 {
        assert!(
            speedup >= floor,
            "host wall-clock speedup {speedup:.2}x below floor {floor:.1}x on {cores} cores"
        );
        println!("HOST_SCALING OK (floor {floor:.1}x)");
    } else {
        println!("HOST_SCALING SKIPPED ASSERT (single-core host; measured {speedup:.2}x)");
    }
}
