//! **Host scaling** — wall-clock cost of the simulator itself.
//!
//! The paper's evaluation sweeps simulated processor counts; before the
//! threaded team simulation, simulating N processors cost ~N× the host
//! wall-clock of one. This bench runs the Figure-5 transpose workload
//! (reshaped placement, nprocs = 8) twice — once with the serial-team
//! reference path (`ExecOptions::serial_team`) and once with the
//! default host-parallel path — and compares the host wall-clock the
//! [`dsm_core::RunReport`] records for the parallel regions (the part the
//! member threads accelerate; serial init is identical in both modes).
//!
//! Target: ≥4× speedup at nprocs = 8. Wall-clock depends on the host, so
//! the assertion scales with the cores actually available: hosts with
//! fewer than two cores only report the measurement.
//!
//! A third run with `ExecOptions::profile` measures the cost of the
//! attribution profiler, reported as overhead over the unprofiled
//! parallel run (the profiler's disabled-path cost — one predictable
//! branch per memory access — is below wall-clock noise and cannot be
//! measured from inside one build).
//!
//! A fourth section measures the **engine speedup**: executed-iteration
//! throughput of the compiled bytecode engine over the tree-walking
//! interpreter on two serial-team workloads — the strided fig5
//! transpose (reported) and the block-distributed
//! [`dsm_core::workloads::fill_sweep_source`] (asserted), whose
//! unit-stride invariant-RHS columns are the engine's bulk-access-run
//! best case. Both engines are cycle-exact by contract, so the
//! wall-clock ratio is pure executor throughput. CI's bench-smoke job
//! treats a fill-sweep ratio below `DSM_BENCH_ENGINE_FLOOR` (default 5)
//! as a regression; set the floor to `0` to report without asserting.
//! The fill sweep runs at the default machine scale regardless of
//! `DSM_BENCH_SCALE`, so the guarded number does not move with the
//! sweep knob.

use std::time::Duration;

use dsm_bench::scale;
use dsm_core::workloads::{fill_sweep_source, transpose_source, Policy};
use dsm_core::{Engine, ExecOptions, RunReport, Session};

const NPROCS: usize = 8;
const RUNS: usize = 3;

fn best_of(prog: &dsm_core::CompiledProgram, opts: &ExecOptions) -> (RunReport, Duration) {
    let cfg = Policy::Reshaped.machine(NPROCS, scale());
    let mut best: Option<(RunReport, Duration)> = None;
    for _ in 0..RUNS {
        let r = prog
            .run(&cfg, opts)
            .unwrap_or_else(|e| panic!("bench workload failed to run: {e}"))
            .report;
        let w = r.host_region_wall;
        if best.as_ref().is_none_or(|(_, b)| w < *b) {
            best = Some((r, w));
        }
    }
    best.unwrap()
}

fn main() {
    let src = transpose_source(320, 6, Policy::Reshaped);
    let prog = Session::new()
        .source("bench.f", &src)
        .compile()
        .unwrap_or_else(|e| panic!("bench workload failed to compile: {e:?}"));

    let (sr, serial_wall) = best_of(&prog, &ExecOptions::new(NPROCS).serial_team(true));
    let (pr, parallel_wall) = best_of(&prog, &ExecOptions::new(NPROCS));
    let (_, profiled_wall) = best_of(&prog, &ExecOptions::new(NPROCS).profile(true));

    assert_eq!(
        sr.total_cycles, pr.total_cycles,
        "parallel simulation must be cycle-exact on the conflict-free transpose"
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9);
    println!("Host scaling: fig5 transpose, reshaped, simulated nprocs={NPROCS}");
    println!("  host cores available:    {cores}");
    println!(
        "  serial-team region wall: {serial_wall:?} (total {:?})",
        sr.host_wall
    );
    println!(
        "  parallel region wall:    {parallel_wall:?} (total {:?})",
        pr.host_wall
    );
    println!("  wall-clock speedup:      {speedup:.2}x (best of {RUNS} runs each)");
    let overhead = profiled_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9) - 1.0;
    println!(
        "  profiled region wall:    {profiled_wall:?} ({:+.1}% over unprofiled)",
        overhead * 100.0
    );

    // The ≥4× target needs ≥8 host cores; scale the floor for smaller
    // hosts and only report on (near-)serial ones.
    let floor = if cores >= NPROCS {
        4.0
    } else {
        cores as f64 * 0.5
    };
    if cores >= 2 {
        assert!(
            speedup >= floor,
            "host wall-clock speedup {speedup:.2}x below floor {floor:.1}x on {cores} cores"
        );
        println!("HOST_SCALING OK (floor {floor:.1}x)");
    } else {
        println!("HOST_SCALING SKIPPED ASSERT (single-core host; measured {speedup:.2}x)");
    }

    // Engine throughput: tree-walking interpreter vs compiled bytecode,
    // serial team (no host-scheduling noise — the ratio is pure
    // executor speed over identical simulated work). Reported on the
    // strided transpose, asserted on the bulk-friendly fill sweep.
    let (ir, interp_wall) = best_of(
        &prog,
        &ExecOptions::new(NPROCS)
            .serial_team(true)
            .engine(Engine::Interp),
    );
    assert_eq!(
        ir.total_cycles, sr.total_cycles,
        "engines must be cycle-exact on the same workload"
    );
    let transpose_speedup = interp_wall.as_secs_f64() / serial_wall.as_secs_f64().max(1e-9);
    println!("Engine throughput: bytecode vs interp, serial team");
    println!(
        "  transpose (strided):     {serial_wall:?} vs {interp_wall:?} = {transpose_speedup:.2}x"
    );

    const FILL_N: usize = 256;
    const FILL_REPS: usize = 20;
    let fill_iters = (FILL_N * FILL_N * FILL_REPS) as f64;
    let fill_src = fill_sweep_source(FILL_N, FILL_REPS);
    let fill_prog = Session::new()
        .source("fill.f", &fill_src)
        .compile()
        .unwrap_or_else(|e| panic!("fill sweep failed to compile: {e:?}"));
    let fill_cfg = Policy::Regular.machine(NPROCS, 64);
    let fill_best = |engine: Engine| {
        let opts = ExecOptions::new(NPROCS).serial_team(true).engine(engine);
        let mut best: Option<(RunReport, Duration)> = None;
        for _ in 0..RUNS {
            let r = fill_prog
                .run(&fill_cfg, &opts)
                .unwrap_or_else(|e| panic!("fill sweep failed to run: {e}"))
                .report;
            let w = r.host_region_wall;
            if best.as_ref().is_none_or(|(_, b)| w < *b) {
                best = Some((r, w));
            }
        }
        best.unwrap()
    };
    let (fb, byte_wall) = fill_best(Engine::Bytecode);
    let (fi, fill_interp_wall) = fill_best(Engine::Interp);
    assert_eq!(
        fb.total_cycles, fi.total_cycles,
        "engines must be cycle-exact on the fill sweep"
    );
    let byte_rate = fill_iters / byte_wall.as_secs_f64().max(1e-9);
    let interp_rate = fill_iters / fill_interp_wall.as_secs_f64().max(1e-9);
    let engine_speedup = byte_rate / interp_rate.max(1e-9);
    println!(
        "  fill sweep ({FILL_N}x{FILL_N}x{FILL_REPS}): bytecode {:.1}M iters/s, interp {:.1}M iters/s",
        byte_rate / 1e6,
        interp_rate / 1e6
    );
    println!("  engine speedup:          {engine_speedup:.2}x (bytecode over interp)");
    let engine_floor: f64 = std::env::var("DSM_BENCH_ENGINE_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    if engine_floor > 0.0 {
        assert!(
            engine_speedup >= engine_floor,
            "bytecode engine only {engine_speedup:.2}x over interp, floor {engine_floor:.1}x"
        );
        println!("ENGINE_SPEEDUP OK (floor {engine_floor:.1}x)");
    } else {
        println!("ENGINE_SPEEDUP SKIPPED ASSERT (floor disabled)");
    }
}
