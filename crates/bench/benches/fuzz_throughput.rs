//! Throughput of the differential conformance harness: programs checked
//! per second on the quick and full configuration matrices. This bounds
//! what budget the CI `fuzz-smoke` (200 programs) and nightly (2000
//! programs) jobs can afford, and regresses loudly if the generator,
//! oracle, or runner get slower.
//!
//! Scale the seed count with `DSM_BENCH_SCALE` (default 64 → 100 seeds;
//! larger divisors shrink the run).

use dsm_bench::scale;
use dsm_conformance::{check_seed, Matrix};
use std::time::Instant;

fn measure(label: &str, matrix: &Matrix, seeds: u64) {
    let start = Instant::now();
    let mut runs = 0u64;
    for seed in 0..seeds {
        match check_seed(seed, matrix) {
            Ok(stats) => runs += stats.runs as u64,
            Err(d) => {
                eprintln!("fuzz_throughput: seed {seed} diverged: {d}");
                std::process::exit(1);
            }
        }
    }
    let dt = start.elapsed().as_secs_f64();
    println!(
        "{label}: {seeds} programs, {runs} runs in {dt:.2}s  \
         ({:.0} programs/s, {:.0} runs/s)",
        seeds as f64 / dt,
        runs as f64 / dt
    );
}

fn main() {
    // scale() defaults to 64; keep 100 seeds there and shrink for larger
    // divisors so the CI bench-smoke stays quick.
    let seeds = (6400 / scale().max(1)).clamp(4, 1000) as u64;
    println!("=== conformance harness throughput ({seeds} seeds) ===");
    measure("quick matrix", &Matrix::quick(), seeds);
    measure("full matrix", &Matrix::full(), seeds);
}
