//! **Figure 4** — Performance of NAS-LU, class C (Section 8.1).
//!
//! Four versions on P = 1..64 processors: first-touch and round-robin
//! (no directives, data initialized *in parallel*), regular distribution,
//! and reshaped `(*, block, block, *)`.
//!
//! Paper shape: all four curves are close (the app is bandwidth-bound and
//! every policy spreads data once init is parallel); first-touch beats
//! round-robin and regular (those two nearly identical); only reshaping
//! realizes the exact `(*,block,block,*)` distribution and is best at
//! 64 procs, by a modest ~6% over first-touch. Speedups turn superlinear
//! at high P because the class-C working set exceeds one node's memory
//! (remote refs even at P=1) and the aggregate cache grows with P —
//! the paper counted a 3x drop in total L2 misses from 1 to 16 procs.

use dsm_bench::{final_speedup, print_figure, proc_counts, scale, sweep};
use dsm_core::workloads::{lu_source, Policy};

fn main() {
    let scale = scale();
    let procs = proc_counts();
    let (n, steps) = (26, 1);
    let series = sweep(&|p| lu_source(n, n, n / 2, steps, p), &procs, scale);
    print_figure("Figure 4: NAS-LU speedups (scaled class C)", &series);

    let ft = final_speedup(&series, Policy::FirstTouch);
    let rr = final_speedup(&series, Policy::RoundRobin);
    let rg = final_speedup(&series, Policy::Regular);
    let rs = final_speedup(&series, Policy::Reshaped);
    println!("\nshape checks:");
    println!("  reshaped best at top P:     {rs:.2} vs ft {ft:.2}, rr {rr:.2}, reg {rg:.2}");
    assert!(rs >= ft * 0.98, "reshaped should match or beat first-touch");
    assert!(rs > rr, "reshaped should beat round-robin");
    assert!(
        rs > 1.0 && ft > 1.0,
        "everything scales on this bandwidth-bound code"
    );
    // All four curves close (within ~2x of each other at top P), as in
    // the paper.
    let worst = ft.min(rr).min(rg).min(rs);
    assert!(rs / worst < 3.0, "curves should be comparatively close");
    println!("FIG4 OK");
}
