//! Shared harness for the paper-reproduction benchmarks.
//!
//! Each bench target (`cargo bench -p dsm-bench`) regenerates one table
//! or figure of the paper's Section 8: it sweeps processor counts and
//! placement policies over the corresponding workload, prints the series
//! the figure plots (speedup over the serial run), and prints the
//! hardware-counter evidence the paper cites (remote-miss fractions, TLB
//! misses, cache misses).
//!
//! Scale: experiments run on a machine scaled down from the Origin-2000
//! by [`SCALE`] (overridable with the `DSM_BENCH_SCALE` environment
//! variable) with array sizes scaled to preserve the paper's
//! working-set : cache and portion : page ratios.

use dsm_core::workloads::Policy;
use dsm_core::{ExecOptions, Machine, MachineConfig, OptConfig, RunOutcome, RunReport, Session};

/// Default linear scale divisor relative to the real Origin-2000.
pub const SCALE: usize = 64;

/// Linear scale divisor (`DSM_BENCH_SCALE` overrides the default).
pub fn scale() -> usize {
    std::env::var("DSM_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SCALE)
}

/// Processor counts swept by the figures (paper: up to 64/96 procs).
pub fn proc_counts() -> Vec<usize> {
    match std::env::var("DSM_BENCH_PROCS").ok().as_deref() {
        Some("full") => vec![1, 2, 4, 8, 16, 32, 64],
        _ => vec![1, 4, 16, 64],
    }
}

/// One policy's sweep results.
#[derive(Debug, Clone)]
pub struct Series {
    /// The placement policy of this curve.
    pub policy: Policy,
    /// Processor counts.
    pub procs: Vec<usize>,
    /// Total cycles per processor count.
    pub cycles: Vec<u64>,
    /// Speedups over the shared serial baseline.
    pub speedup: Vec<f64>,
    /// Remote fraction of L2 misses per run.
    pub remote_frac: Vec<f64>,
    /// Total L2 misses per run.
    pub l2_misses: Vec<u64>,
    /// Total TLB misses per run.
    pub tlb_misses: Vec<u64>,
}

/// Compile `source` and run it under `policy` on `nprocs` processors.
///
/// # Panics
///
/// Panics on compile or runtime errors — experiment programs are trusted.
pub fn run_policy(source: &str, policy: Policy, nprocs: usize, scale: usize) -> RunReport {
    run_policy_with(source, policy, scale, &ExecOptions::new(nprocs)).report
}

/// [`run_policy`] with explicit [`ExecOptions`] — used by benches that
/// need the attribution profile or captured arrays.
///
/// # Panics
///
/// Panics on compile or runtime errors — experiment programs are trusted.
pub fn run_policy_with(
    source: &str,
    policy: Policy,
    scale: usize,
    opts: &ExecOptions,
) -> RunOutcome {
    let prog = Session::new()
        .source("bench.f", source)
        .optimize(OptConfig::default())
        .compile()
        .unwrap_or_else(|e| panic!("bench workload failed to compile: {e:?}"));
    let cfg = policy.machine(opts.nprocs, scale);
    prog.run(&cfg, opts)
        .unwrap_or_else(|e| panic!("bench workload failed to run: {e}"))
}

/// Run the full four-policy sweep for one figure.
///
/// `make_source` receives the policy (sources differ only in directives).
/// The speedup baseline is the first-touch serial run, like the paper's
/// "speedup over the serial version".
pub fn sweep(make_source: &dyn Fn(Policy) -> String, procs: &[usize], scale: usize) -> Vec<Series> {
    let baseline = run_policy(
        &make_source(Policy::FirstTouch),
        Policy::FirstTouch,
        1,
        scale,
    );
    let baseline_kernel = baseline.kernel_cycles();
    Policy::ALL
        .iter()
        .map(|&policy| {
            let src = make_source(policy);
            let mut s = Series {
                policy,
                procs: procs.to_vec(),
                cycles: Vec::new(),
                speedup: Vec::new(),
                remote_frac: Vec::new(),
                l2_misses: Vec::new(),
                tlb_misses: Vec::new(),
            };
            for &p in procs {
                let r = run_policy(&src, policy, p, scale);
                s.cycles.push(r.kernel_cycles());
                s.speedup
                    .push(baseline_kernel as f64 / r.kernel_cycles().max(1) as f64);
                s.remote_frac.push(r.total.remote_fraction());
                s.l2_misses.push(r.total.l2_misses);
                s.tlb_misses.push(r.total.tlb_misses);
            }
            s
        })
        .collect()
}

/// Print a figure's speedup table plus the counter evidence.
pub fn print_figure(title: &str, series: &[Series]) {
    println!("\n=== {title} ===");
    let procs = &series[0].procs;
    print!("{:<12}", "policy");
    for p in procs {
        print!("  P={p:<5}");
    }
    println!("   (kernel speedup over serial)");
    for s in series {
        print!("{:<12}", s.policy.label());
        for v in &s.speedup {
            print!("  {v:<7.2}");
        }
        println!();
    }
    print!("{:<12}", "rem-frac");
    println!("  (remote fraction of L2 misses at each P, per policy)");
    for s in series {
        print!("{:<12}", s.policy.label());
        for v in &s.remote_frac {
            print!("  {v:<7.2}");
        }
        println!();
    }
    print!("{:<12}", "tlb-misses");
    println!("  (TLB misses at each P, per policy)");
    for s in series {
        print!("{:<12}", s.policy.label());
        for v in &s.tlb_misses {
            print!("  {v:<7}");
        }
        println!();
    }
    print_chart(series);
}

/// Render an ASCII bar chart of the final-P speedups (one glance at who
/// wins, mirroring the paper's figures).
pub fn print_chart(series: &[Series]) {
    let top = series
        .iter()
        .filter_map(|s| s.speedup.last().copied())
        .fold(1.0_f64, f64::max);
    println!("final-P speedups:");
    for s in series {
        let v = s.speedup.last().copied().unwrap_or(0.0);
        let width = ((v / top) * 50.0).round() as usize;
        println!(
            "  {:<12} {:>8.2} |{}",
            s.policy.label(),
            v,
            "#".repeat(width)
        );
    }
}

/// Convenience: highest-P speedup of a policy in a sweep.
pub fn final_speedup(series: &[Series], policy: Policy) -> f64 {
    series
        .iter()
        .find(|s| s.policy == policy)
        .and_then(|s| s.speedup.last().copied())
        .unwrap_or(0.0)
}

/// Run a compiled program fresh on an explicitly built machine (used by
/// Table 2, which needs single-processor runs of differently-optimized
/// builds).
pub fn run_built(source: &str, opt: &OptConfig, cfg: &MachineConfig, nprocs: usize) -> RunReport {
    let prog = Session::new()
        .source("bench.f", source)
        .optimize(*opt)
        .compile()
        .unwrap_or_else(|e| panic!("bench workload failed to compile: {e:?}"));
    let mut m = Machine::new(cfg.clone());
    dsm_exec::run_outcome(&mut m, prog.program(), &ExecOptions::new(nprocs))
        .unwrap_or_else(|e| panic!("bench workload failed to run: {e}"))
        .report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::workloads::transpose_source;

    #[test]
    fn sweep_produces_all_series() {
        let series = sweep(&|p| transpose_source(32, 1, p), &[1, 4], 1024);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.speedup.len(), 2);
            assert!(s.cycles.iter().all(|&c| c > 0));
        }
        print_figure("smoke", &series);
    }
}
