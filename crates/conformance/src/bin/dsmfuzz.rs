//! `dsmfuzz` — differential conformance fuzzer.
//!
//! Generates directive-Fortran programs from sequential seeds, runs
//! each across the full machine-configuration matrix, and compares
//! every run against the layout-oblivious oracle. On the first
//! divergence it greedily shrinks the program to a minimal reproducer
//! and (with `--out`) writes the failing and shrunken sources plus the
//! divergence report as artifacts.
//!
//! ```text
//! dsmfuzz [--seed S] [--count N] [--quick] [--out DIR]
//! dsmfuzz --replay SEED [--quick] [--out DIR]
//! dsmfuzz --dump SEED
//! ```
//!
//! Exit status: 0 = all programs conform, 1 = divergence found,
//! 2 = usage error.

use dsm_conformance::{
    check_engine_diff, check_redist_diff, check_sources, generate, generate_redist, shrink,
    Divergence, Matrix, Spec,
};
use std::path::PathBuf;

struct Args {
    seed: u64,
    count: u64,
    replay: Option<u64>,
    dump: Option<u64>,
    quick: bool,
    engine_diff: bool,
    redist: bool,
    out: Option<PathBuf>,
}

const USAGE: &str = "usage: dsmfuzz [--seed S] [--count N] [--replay SEED] [--dump SEED] \
     [--quick] [--engine-diff] [--redist] [--out DIR]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        count: 200,
        replay: None,
        dump: None,
        quick: false,
        engine_diff: false,
        redist: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse()
                .map_err(|e| format!("{name}: {e}"))
        };
        match a.as_str() {
            "--seed" => args.seed = num("--seed")?,
            "--count" => args.count = num("--count")?,
            "--replay" => args.replay = Some(num("--replay")?),
            "--dump" => args.dump = Some(num("--dump")?),
            "--quick" => args.quick = true,
            "--engine-diff" => args.engine_diff = true,
            "--redist" => args.redist = true,
            "--out" => args.out = Some(PathBuf::from(it.next().ok_or("--out needs a directory")?)),
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dsmfuzz: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    let matrix = if args.quick {
        Matrix::quick()
    } else {
        Matrix::full()
    };

    // `--redist` switches to redistribution-heavy programs (every seed
    // carries mid-phase `c$redistribute` / `c$resize_team` directives)
    // and pits the scheduled mover against the naive per-page walker.
    let gen_spec: fn(u64) -> Spec = if args.redist { generate_redist } else { generate };

    if let Some(seed) = args.dump {
        print!("{}", render_concat(&gen_spec(seed)));
        return;
    }

    let (first, count) = match args.replay {
        Some(seed) => (seed, 1),
        None => (args.seed, args.count),
    };
    // Oracle conformance by default; `--engine-diff` pits the compiled
    // bytecode engine against the tree-walking interpreter instead.
    let check: CheckFn = if args.redist {
        check_redist_diff
    } else if args.engine_diff {
        check_engine_diff
    } else {
        check_sources
    };
    let mut total_runs = 0usize;
    for seed in first..first.saturating_add(count) {
        let spec = gen_spec(seed);
        let sources = spec.render();
        match check(&sources, &spec.capture_names(), &matrix) {
            Ok(stats) => {
                total_runs += stats.runs;
                let done = seed - first + 1;
                if done % 25 == 0 || done == count {
                    eprintln!("dsmfuzz: {done}/{count} programs conform ({total_runs} runs)");
                }
            }
            Err(d) => {
                report_failure(seed, &spec, &d, &matrix, check, args.out.as_deref());
                std::process::exit(1);
            }
        }
    }
    let what = if args.redist {
        "mover divergences"
    } else if args.engine_diff {
        "engine divergences"
    } else {
        "divergences"
    };
    println!(
        "dsmfuzz: {count} programs x matrix ({} primary runs each): \
         zero {what}, zero invariant violations",
        matrix.runs()
    );
}

fn render_concat(spec: &Spec) -> String {
    spec.render()
        .into_iter()
        .map(|(name, text)| format!("! --- {name} ---\n{text}"))
        .collect()
}

type CheckFn =
    fn(&[(String, String)], &[String], &Matrix) -> Result<dsm_conformance::CheckStats, Box<Divergence>>;

fn report_failure(
    seed: u64,
    spec: &Spec,
    d: &Divergence,
    matrix: &Matrix,
    check: CheckFn,
    out: Option<&std::path::Path>,
) {
    eprintln!("dsmfuzz: seed {seed} DIVERGED");
    eprintln!("  {d}");
    eprintln!("--- failing program (seed {seed}) ---");
    eprint!("{}", render_concat(spec));

    // Shrink while the same failure class persists.
    let kind = d.kind;
    eprintln!("--- shrinking (this reruns the matrix per candidate) ---");
    let min = shrink(spec, 400, |cand| {
        matches!(
            check(&cand.render(), &cand.capture_names(), matrix),
            Err(e) if e.kind == kind
        )
    });
    let min_src = render_concat(&min);
    let min_div = check(&min.render(), &min.capture_names(), matrix)
        .err()
        .map(|e| e.to_string())
        .unwrap_or_else(|| "shrunken program no longer fails (flaky?)".into());
    eprintln!(
        "--- minimal reproducer ({} lines) ---",
        min_src.lines().count()
    );
    eprint!("{min_src}");
    eprintln!("--- divergence on minimal reproducer ---");
    eprintln!("  {min_div}");
    eprintln!("replay with: dsmfuzz --replay {seed}");

    if let Some(dir) = out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("dsmfuzz: cannot create {}: {e}", dir.display());
            return;
        }
        let writes = [
            (format!("failing-{seed}.f"), render_concat(spec)),
            (format!("failing-{seed}-min.f"), min_src),
            (
                format!("divergence-{seed}.txt"),
                format!("seed {seed}\noriginal: {d}\nminimal: {min_div}\n"),
            ),
        ];
        for (name, contents) in writes {
            let path = dir.join(name);
            if let Err(e) = std::fs::write(&path, contents) {
                eprintln!("dsmfuzz: cannot write {}: {e}", path.display());
            } else {
                eprintln!("dsmfuzz: wrote {}", path.display());
            }
        }
    }
}
