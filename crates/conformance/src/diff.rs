//! Differential runner: one program, every configuration, one verdict.
//!
//! Each program is compiled once per optimization variant and executed
//! across the processor-count × migration-policy × serial-team × checks
//! × profile matrix.
//! Every run is held to three standards:
//!
//! 1. **Oracle agreement** — captured arrays are bit-identical to the
//!    layout-oblivious reference evaluation (directives — and reactive
//!    page migration — change placement, never values).
//! 2. **Counter balance** — per processor and in aggregate, every L2
//!    miss is served locally or remotely (`local + remote == l2`), the
//!    hierarchy filters monotonically (`l2 ≤ l1 ≤ accesses`), and when
//!    profiling is on the attribution table sums back to the machine
//!    counters exactly.
//! 3. **Determinism** — serial-team runs repeat cycle-exactly; threaded
//!    runs repeat with identical data and access totals (cycles may
//!    legitimately wobble only when members falsely share lines, see
//!    `crates/core/tests/parallel_diff.rs`).
//! 4. **Sampling transparency** — every cell is additionally re-run
//!    with statistical set sampling at each rate in the matrix; the
//!    sampled replica must match the oracle bit-for-bit with the same
//!    access total and balanced raw counters (only cost estimates may
//!    differ from the exact run).

use crate::oracle;
use dsm_compile::{compile_sources, OptConfig};
use dsm_exec::{run_outcome, Engine, ExecOptions, RedistMode, RunOutcome};
use dsm_machine::{CounterSet, Machine, MachineConfig, MigrationPolicy, SamplingConfig};

/// Which slice of the configuration matrix to run.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// Processor counts.
    pub procs: Vec<usize>,
    /// Named optimization variants.
    pub opt_variants: Vec<(&'static str, OptConfig)>,
    /// (serial_team, checks, profile) combinations.
    pub modes: Vec<(bool, bool, bool)>,
    /// Reactive page-migration policies each mode runs under.
    pub policies: Vec<MigrationPolicy>,
    /// Statistical sampling rates (1/N) each cell additionally runs
    /// under. A sampled replica must produce captures bit-identical to
    /// the exact run (sampling is a cost model, never a semantics
    /// change), an unchanged access total, and internally balanced raw
    /// counters; only its cost estimates may differ.
    pub sampling: Vec<u32>,
}

impl Matrix {
    /// The full acceptance matrix: P ∈ {1, 2, 4, 8}, both optimization
    /// variants, all eight mode combinations, all three migration
    /// policies.
    pub fn full() -> Self {
        let mut modes = Vec::new();
        for serial in [true, false] {
            for checks in [false, true] {
                for profile in [false, true] {
                    modes.push((serial, checks, profile));
                }
            }
        }
        Matrix {
            procs: vec![1, 2, 4, 8],
            opt_variants: vec![
                ("default", OptConfig::default()),
                ("none", OptConfig::none()),
            ],
            modes,
            policies: vec![
                MigrationPolicy::Off,
                MigrationPolicy::threshold(4),
                MigrationPolicy::competitive(4),
            ],
            sampling: vec![2, 4],
        }
    }

    /// A cheap smoke slice for debug-mode tests: default optimizations,
    /// P ∈ {1, 4}, serial/threaded plain plus one everything-on run,
    /// migration off and threshold.
    pub fn quick() -> Self {
        Matrix {
            procs: vec![1, 4],
            opt_variants: vec![("default", OptConfig::default())],
            modes: vec![
                (true, false, false),
                (false, false, false),
                (true, true, true),
            ],
            policies: vec![MigrationPolicy::Off, MigrationPolicy::threshold(4)],
            sampling: vec![4],
        }
    }

    /// Number of primary runs (determinism replicas excluded; each
    /// sampling rate adds one replica per cell).
    pub fn runs(&self) -> usize {
        self.procs.len()
            * self.opt_variants.len()
            * self.modes.len()
            * self.policies.len()
            * (1 + self.sampling.len())
    }
}

/// One way a program failed conformance.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Machine/exec configuration the failure appeared under.
    pub config: String,
    /// Failure class: `compile`, `oracle`, `exec-error`,
    /// `capture-mismatch`, `counter-balance`, `attribution`,
    /// `nondeterminism`, `profile-perturbs`.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.config, self.detail)
    }
}

/// Statistics of a passing program.
#[derive(Debug, Clone, Copy)]
pub struct CheckStats {
    /// Total executions performed (including determinism replicas).
    pub runs: usize,
    /// Subroutine clones the pre-linker created.
    pub clones: usize,
}

/// Run `sources` through `matrix`; `Ok` carries run statistics, `Err`
/// the first divergence found.
pub fn check_sources(
    sources: &[(String, String)],
    captures: &[String],
    matrix: &Matrix,
) -> Result<CheckStats, Box<Divergence>> {
    let expected = oracle::evaluate(sources, captures).map_err(|e| {
        Box::new(Divergence {
            config: "oracle".into(),
            kind: "oracle",
            detail: e.to_string(),
        })
    })?;
    let capture_refs: Vec<&str> = captures.iter().map(|s| s.as_str()).collect();
    let mut runs = 0;
    let mut clones = 0;

    for (opt_name, opt) in &matrix.opt_variants {
        let compiled = compile_sources(sources, opt).map_err(|errs| {
            Box::new(Divergence {
                config: format!("opt={opt_name}"),
                kind: "compile",
                detail: format!("{errs:?}"),
            })
        })?;
        clones = clones.max(compiled.prelink.clones_created);
        for &p in &matrix.procs {
            for &policy in &matrix.policies {
                // Reference cycle timings of this (opt, P, policy):
                // serial-team, plain. Used to pin profiling as purely
                // observational (migration decisions do not depend on the
                // profile flag, so the base is compared within one policy).
                let mut serial_plain: Option<RunOutcome> = None;
                for &(serial, checks, profile) in &matrix.modes {
                    let config = format!(
                        "opt={opt_name} P={p} migrate={policy} serial_team={} checks={} profile={}",
                        on(serial),
                        on(checks),
                        on(profile)
                    );
                    let out = execute(
                        &compiled.program,
                        p,
                        policy,
                        serial,
                        checks,
                        profile,
                        &capture_refs,
                    )
                    .map_err(|e| {
                        Box::new(Divergence {
                            config: config.clone(),
                            kind: "exec-error",
                            detail: e,
                        })
                    })?;
                    runs += 1;
                    compare_captures(&out, &expected, captures, &config)?;
                    check_balance(&out, profile, &config)?;

                    // Sampling axis: re-run the cell with statistical
                    // set sampling at each configured rate. The sampled
                    // run must match the oracle bit-for-bit (and hence
                    // the exact run), keep the same access total, and
                    // its raw counters must stay internally balanced —
                    // only the cost estimates may move.
                    for &rate in &matrix.sampling {
                        let sconfig = format!("{config} sample=1/{rate}");
                        let sampled = execute_engine(
                            &compiled.program,
                            p,
                            policy,
                            serial,
                            checks,
                            profile,
                            &capture_refs,
                            Engine::default(),
                            Some(SamplingConfig::new(rate)),
                        )
                        .map_err(|e| {
                            Box::new(Divergence {
                                config: sconfig.clone(),
                                kind: "exec-error",
                                detail: e,
                            })
                        })?;
                        runs += 1;
                        compare_captures(&sampled, &expected, captures, &sconfig)?;
                        check_balance(&sampled, profile, &sconfig)?;
                        if sampled.report.total.accesses() != out.report.total.accesses() {
                            return Err(Box::new(Divergence {
                                config: sconfig,
                                kind: "counter-balance",
                                detail: format!(
                                    "sampling changed the access total: {} vs exact {}",
                                    sampled.report.total.accesses(),
                                    out.report.total.accesses()
                                ),
                            }));
                        }
                        if sampled.report.sampling.is_none() {
                            return Err(Box::new(Divergence {
                                config: sconfig,
                                kind: "counter-balance",
                                detail: "sampled run reported no sampling summary".into(),
                            }));
                        }
                    }

                    if serial && !checks && !profile {
                        // Serial-team simulation has no host concurrency at
                        // all: a second run must be cycle-exact.
                        let again = execute(
                            &compiled.program,
                            p,
                            policy,
                            serial,
                            checks,
                            profile,
                            &capture_refs,
                        )
                        .map_err(|e| {
                            Box::new(Divergence {
                                config: config.clone(),
                                kind: "exec-error",
                                detail: e,
                            })
                        })?;
                        runs += 1;
                        check_replica(&out, &again, true, &config)?;
                        serial_plain = Some(out);
                    } else if !serial && !checks && !profile {
                        // Threaded runs must repeat with identical data and
                        // access totals; cycles may wobble under false
                        // sharing, so they are not compared here.
                        let again = execute(
                            &compiled.program,
                            p,
                            policy,
                            serial,
                            checks,
                            profile,
                            &capture_refs,
                        )
                        .map_err(|e| {
                            Box::new(Divergence {
                                config: config.clone(),
                                kind: "exec-error",
                                detail: e,
                            })
                        })?;
                        runs += 1;
                        check_replica(&out, &again, false, &config)?;
                    } else if serial && !checks && profile {
                        // Attribution must be observational: identical
                        // simulated time and counters as the plain run.
                        if let Some(base) = &serial_plain {
                            if base.report.total_cycles != out.report.total_cycles
                                || base.report.total != out.report.total
                            {
                                return Err(Box::new(Divergence {
                                    config,
                                    kind: "profile-perturbs",
                                    detail: format!(
                                        "plain {} cycles vs profiled {}",
                                        base.report.total_cycles, out.report.total_cycles
                                    ),
                                }));
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(CheckStats { runs, clones })
}

fn on(b: bool) -> &'static str {
    if b {
        "on"
    } else {
        "off"
    }
}

fn execute(
    program: &dsm_ir::Program,
    p: usize,
    policy: MigrationPolicy,
    serial: bool,
    checks: bool,
    profile: bool,
    captures: &[&str],
) -> Result<RunOutcome, String> {
    execute_engine(
        program,
        p,
        policy,
        serial,
        checks,
        profile,
        captures,
        Engine::default(),
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn execute_engine(
    program: &dsm_ir::Program,
    p: usize,
    policy: MigrationPolicy,
    serial: bool,
    checks: bool,
    profile: bool,
    captures: &[&str],
    engine: Engine,
    sampling: Option<SamplingConfig>,
) -> Result<RunOutcome, String> {
    let mut cfg = MachineConfig::small_test(p);
    cfg.migration = policy;
    let mut machine = Machine::new(cfg);
    let mut opts = ExecOptions::new(p)
        .serial_team(serial)
        .with_checks(checks)
        .profile(profile)
        .max_steps(100_000_000)
        .capture(captures)
        .engine(engine);
    if let Some(s) = sampling {
        opts = opts.sampling(s);
    }
    run_outcome(&mut machine, program, &opts).map_err(|e| e.to_string())
}

/// Run `sources` under **both** executors across `matrix` and demand the
/// tree-walking interpreter and the compiled bytecode engine be
/// observationally indistinguishable: bit-identical captures, and —
/// for serial-team runs, where the simulation is fully deterministic —
/// identical cycles, per-processor counters, page placement, migration
/// work, and attribution profiles.  Threaded runs are compared on their
/// deterministic subset (data and access totals), exactly as the
/// determinism replica check does.
pub fn check_engine_diff(
    sources: &[(String, String)],
    captures: &[String],
    matrix: &Matrix,
) -> Result<CheckStats, Box<Divergence>> {
    let capture_refs: Vec<&str> = captures.iter().map(|s| s.as_str()).collect();
    let mut runs = 0;
    let mut clones = 0;
    for (opt_name, opt) in &matrix.opt_variants {
        let compiled = compile_sources(sources, opt).map_err(|errs| {
            Box::new(Divergence {
                config: format!("opt={opt_name}"),
                kind: "compile",
                detail: format!("{errs:?}"),
            })
        })?;
        clones = clones.max(compiled.prelink.clones_created);
        for &p in &matrix.procs {
            for &policy in &matrix.policies {
                for &(serial, checks, profile) in &matrix.modes {
                    let config = format!(
                        "engines=bytecode/interp opt={opt_name} P={p} migrate={policy} \
                         serial_team={} checks={} profile={}",
                        on(serial),
                        on(checks),
                        on(profile)
                    );
                    let run = |engine: Engine| {
                        execute_engine(
                            &compiled.program,
                            p,
                            policy,
                            serial,
                            checks,
                            profile,
                            &capture_refs,
                            engine,
                            None,
                        )
                        .map_err(|e| {
                            Box::new(Divergence {
                                config: format!("{config} [{engine}]"),
                                kind: "exec-error",
                                detail: e,
                            })
                        })
                    };
                    let byte = run(Engine::Bytecode)?;
                    let tree = run(Engine::Interp)?;
                    runs += 2;
                    compare_engines(&byte, &tree, serial, &config)?;
                }
            }
        }
    }
    Ok(CheckStats { runs, clones })
}

/// Run `sources` under **both** redistribution movers (the scheduled
/// round-packed engine and the naive per-page walker) and demand they be
/// data-identical: bit-identical captures against the oracle, identical
/// final page placement, and identical hardware counters except the
/// cycle clocks (the movers price the same moves differently, and the
/// scheduler moves only the delta pages — `redist_pages` must never
/// exceed the naive count). Cells run serial-team so every comparison is
/// deterministic.
pub fn check_redist_diff(
    sources: &[(String, String)],
    captures: &[String],
    matrix: &Matrix,
) -> Result<CheckStats, Box<Divergence>> {
    let expected = oracle::evaluate(sources, captures).map_err(|e| {
        Box::new(Divergence {
            config: "oracle".into(),
            kind: "oracle",
            detail: e.to_string(),
        })
    })?;
    let capture_refs: Vec<&str> = captures.iter().map(|s| s.as_str()).collect();
    let mut runs = 0;
    let mut clones = 0;
    for (opt_name, opt) in &matrix.opt_variants {
        let compiled = compile_sources(sources, opt).map_err(|errs| {
            Box::new(Divergence {
                config: format!("opt={opt_name}"),
                kind: "compile",
                detail: format!("{errs:?}"),
            })
        })?;
        clones = clones.max(compiled.prelink.clones_created);
        for &p in &matrix.procs {
            for engine in [Engine::Bytecode, Engine::Interp] {
                let config = format!("movers=scheduled/naive opt={opt_name} P={p} [{engine}]");
                let run = |mode: RedistMode| {
                    let mut cfg = MachineConfig::small_test(p);
                    cfg.migration = MigrationPolicy::Off;
                    let mut machine = Machine::new(cfg);
                    let opts = ExecOptions::new(p)
                        .serial_team(true)
                        .max_steps(100_000_000)
                        .capture(&capture_refs)
                        .engine(engine)
                        .redist(mode);
                    run_outcome(&mut machine, &compiled.program, &opts).map_err(|e| {
                        Box::new(Divergence {
                            config: format!("{config} {mode}"),
                            kind: "exec-error",
                            detail: e.to_string(),
                        })
                    })
                };
                let sched = run(RedistMode::Scheduled)?;
                let naive = run(RedistMode::Naive)?;
                runs += 2;
                compare_captures(&sched, &expected, captures, &config)?;
                compare_captures(&naive, &expected, captures, &config)?;
                check_balance(&sched, false, &config)?;
                check_balance(&naive, false, &config)?;
                compare_movers(&sched, &naive, &config)?;
            }
        }
    }
    Ok(CheckStats { runs, clones })
}

/// Mover-vs-mover equality: identical placement and memory behavior,
/// cycle accounting aside.
fn compare_movers(
    sched: &RunOutcome,
    naive: &RunOutcome,
    config: &str,
) -> Result<(), Box<Divergence>> {
    let fail = |detail: String| {
        Err(Box::new(Divergence {
            config: config.into(),
            kind: "redist-diff",
            detail,
        }))
    };
    let (rs, rn) = (&sched.report, &naive.report);
    if rs.pages_per_node != rn.pages_per_node {
        return fail(format!(
            "final page placement differs: scheduled {:?} vs naive {:?}",
            rs.pages_per_node, rn.pages_per_node
        ));
    }
    // The movers only remap pages and charge cycles, so every hardware
    // counter except the clocks must agree exactly.
    let sans_cycles = |c: &CounterSet| {
        let mut c = *c;
        c.cycles = 0;
        c
    };
    if sans_cycles(&rs.total) != sans_cycles(&rn.total) {
        return fail(format!(
            "memory counters differ\nscheduled: {}\nnaive:     {}",
            rs.total, rn.total
        ));
    }
    for (i, (a, b)) in rs.per_proc.iter().zip(&rn.per_proc).enumerate() {
        if sans_cycles(a) != sans_cycles(b) {
            return fail(format!("P{i} memory counters differ between movers"));
        }
    }
    if rs.redist_pages > rn.redist_pages {
        return fail(format!(
            "scheduler moved more pages than the naive walker: {} vs {}",
            rs.redist_pages, rn.redist_pages
        ));
    }
    if rs.parallel_regions != rn.parallel_regions || rs.argcheck_ops != rn.argcheck_ops {
        return fail("region/argcheck behavior differs between movers".into());
    }
    Ok(())
}

/// Engine-vs-engine observational equality (`byte` = bytecode run,
/// `tree` = interpreter run of the same configuration).
fn compare_engines(
    byte: &RunOutcome,
    tree: &RunOutcome,
    cycle_exact: bool,
    config: &str,
) -> Result<(), Box<Divergence>> {
    let fail = |detail: String| {
        Err(Box::new(Divergence {
            config: config.into(),
            kind: "engine-diff",
            detail,
        }))
    };
    if byte.captures.len() != tree.captures.len() {
        return fail("capture set sizes differ between engines".into());
    }
    for (a, (g, w)) in byte.captures.iter().zip(&tree.captures).enumerate() {
        if g.len() != w.len() {
            return fail(format!(
                "capture {a}: bytecode has {} elements, interp {}",
                g.len(),
                w.len()
            ));
        }
        for (i, (x, y)) in g.iter().zip(w).enumerate() {
            if x.to_bits() != y.to_bits() {
                return fail(format!(
                    "capture {a} element {i}: bytecode {x:?} ({:#x}), interp {y:?} ({:#x})",
                    x.to_bits(),
                    y.to_bits()
                ));
            }
        }
    }
    let (rb, rt) = (&byte.report, &tree.report);
    if cycle_exact {
        if rb.total_cycles != rt.total_cycles {
            return fail(format!(
                "total cycles: bytecode {} vs interp {}",
                rb.total_cycles, rt.total_cycles
            ));
        }
        if rb.total != rt.total || rb.per_proc != rt.per_proc {
            return fail(format!(
                "hardware counters differ\nbytecode: {}\ninterp:   {}",
                rb.total, rt.total
            ));
        }
        if rb.parallel_regions != rt.parallel_regions || rb.parallel_cycles != rt.parallel_cycles {
            return fail(format!(
                "parallel regions/cycles: bytecode {}/{} vs interp {}/{}",
                rb.parallel_regions, rb.parallel_cycles, rt.parallel_regions, rt.parallel_cycles
            ));
        }
        if rb.pages_per_node != rt.pages_per_node
            || rb.pages_migrated != rt.pages_migrated
            || rb.migration_cycles != rt.migration_cycles
        {
            return fail("page placement / migration work differs between engines".into());
        }
        if rb.redist_pages != rt.redist_pages || rb.redist_cycles != rt.redist_cycles {
            return fail(format!(
                "redistribution work differs: bytecode {}p/{}c vs interp {}p/{}c",
                rb.redist_pages, rb.redist_cycles, rt.redist_pages, rt.redist_cycles
            ));
        }
        if rb.argcheck_ops != rt.argcheck_ops {
            return fail(format!(
                "argument-checker traffic: bytecode {:?} vs interp {:?}",
                rb.argcheck_ops, rt.argcheck_ops
            ));
        }
        if rb.profile != rt.profile {
            return fail("attribution profiles differ between engines".into());
        }
    } else {
        let access = |r: &dsm_exec::RunReport| {
            (
                r.total.loads,
                r.total.stores,
                r.total.page_faults,
                r.parallel_regions,
                r.argcheck_ops,
            )
        };
        if access(rb) != access(rt) {
            return fail(format!(
                "access totals differ between engines: bytecode {:?} vs interp {:?}",
                access(rb),
                access(rt)
            ));
        }
    }
    Ok(())
}

fn compare_captures(
    out: &RunOutcome,
    expected: &[Vec<f64>],
    names: &[String],
    config: &str,
) -> Result<(), Box<Divergence>> {
    for ((name, got), want) in names.iter().zip(&out.captures).zip(expected) {
        if got.len() != want.len() {
            return Err(Box::new(Divergence {
                config: config.into(),
                kind: "capture-mismatch",
                detail: format!(
                    "array `{name}`: {} elements captured, oracle has {}",
                    got.len(),
                    want.len()
                ),
            }));
        }
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            if g.to_bits() != w.to_bits() {
                return Err(Box::new(Divergence {
                    config: config.into(),
                    kind: "capture-mismatch",
                    detail: format!(
                        "array `{name}` element {i} (linear, column-major): \
                         machine {g:?} ({:#x}), oracle {w:?} ({:#x})",
                        g.to_bits(),
                        w.to_bits()
                    ),
                }));
            }
        }
    }
    Ok(())
}

/// Structural counter identities that hold for *every* run.
fn check_balance(out: &RunOutcome, profile: bool, config: &str) -> Result<(), Box<Divergence>> {
    let fail = |detail: String, kind: &'static str| {
        Err(Box::new(Divergence {
            config: config.into(),
            kind,
            detail,
        }))
    };
    let balance = |c: &CounterSet, who: &str| {
        if c.local_misses + c.remote_misses != c.l2_misses {
            return fail(
                format!(
                    "{who}: local {} + remote {} != l2 misses {}",
                    c.local_misses, c.remote_misses, c.l2_misses
                ),
                "counter-balance",
            );
        }
        if c.l2_misses > c.l1_misses || c.l1_misses > c.accesses() {
            return fail(
                format!(
                    "{who}: hierarchy not monotone: l2 {} l1 {} accesses {}",
                    c.l2_misses,
                    c.l1_misses,
                    c.accesses()
                ),
                "counter-balance",
            );
        }
        Ok(())
    };
    balance(&out.report.total, "total")?;
    for (i, c) in out.report.per_proc.iter().enumerate() {
        balance(c, &format!("P{i}"))?;
    }

    if profile {
        let Some(prof) = out.profile() else {
            return fail("profile requested but absent".into(), "attribution");
        };
        let t = prof.totals();
        let total = &out.report.total;
        // Every attributed access resolves at exactly one level.
        if t.l1_hits + t.l2_hits + t.local_misses + t.remote_misses != t.accesses() {
            return fail(
                format!(
                    "attributed accesses {} != l1 {} + l2 {} + local {} + remote {}",
                    t.accesses(),
                    t.l1_hits,
                    t.l2_hits,
                    t.local_misses,
                    t.remote_misses
                ),
                "attribution",
            );
        }
        // The table sums back to the machine counters.
        let checks: [(&str, u64, u64); 4] = [
            ("local_misses", t.local_misses, total.local_misses),
            ("remote_misses", t.remote_misses, total.remote_misses),
            ("tlb_misses", t.tlb_misses, total.tlb_misses),
            (
                "invalidations_sent",
                t.invalidations_sent,
                total.invalidations_sent,
            ),
        ];
        for (what, attributed, machine) in checks {
            if attributed != machine {
                return fail(
                    format!("{what}: attributed {attributed} != machine {machine}"),
                    "attribution",
                );
            }
        }
        // Element traffic is a subset of machine traffic (spills and
        // argcheck lookups also count at the machine).
        if t.loads > total.loads || t.stores > total.stores {
            return fail(
                format!(
                    "attributed loads/stores {}/{} exceed machine {}/{}",
                    t.loads, t.stores, total.loads, total.stores
                ),
                "attribution",
            );
        }
        // Per-region rollup agrees with the per-array rollup.
        let rl: u64 = prof.regions.iter().map(|r| r.stats.local_misses).sum();
        let rr: u64 = prof.regions.iter().map(|r| r.stats.remote_misses).sum();
        if (rl, rr) != (t.local_misses, t.remote_misses) {
            return fail(
                format!(
                    "region rollup ({rl}, {rr}) != array rollup ({}, {})",
                    t.local_misses, t.remote_misses
                ),
                "attribution",
            );
        }
    }
    Ok(())
}

/// Compare a run against its immediate re-execution.
fn check_replica(
    a: &RunOutcome,
    b: &RunOutcome,
    cycle_exact: bool,
    config: &str,
) -> Result<(), Box<Divergence>> {
    let fail = |detail: String| {
        Err(Box::new(Divergence {
            config: config.into(),
            kind: "nondeterminism",
            detail,
        }))
    };
    // Bitwise comparison: integer arrays are captured as raw i64 bits,
    // which are NaN patterns for negative values — `==` on f64 would
    // report spurious differences (NaN != NaN).
    let same_bits = a.captures.len() == b.captures.len()
        && a.captures.iter().zip(&b.captures).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(u, v)| u.to_bits() == v.to_bits())
        });
    if !same_bits {
        return fail("captured arrays differ between identical runs".into());
    }
    let (ra, rb) = (&a.report, &b.report);
    if cycle_exact {
        if ra.total_cycles != rb.total_cycles {
            return fail(format!(
                "total cycles {} vs {}",
                ra.total_cycles, rb.total_cycles
            ));
        }
        if ra.total != rb.total || ra.per_proc != rb.per_proc {
            return fail("counters differ between identical serial-team runs".into());
        }
        if ra.parallel_cycles != rb.parallel_cycles || ra.pages_per_node != rb.pages_per_node {
            return fail("region cycles / page placement differ between runs".into());
        }
    } else {
        let access = |r: &dsm_exec::RunReport| {
            (
                r.total.loads,
                r.total.stores,
                r.total.page_faults,
                r.parallel_regions,
            )
        };
        if access(ra) != access(rb) {
            return fail(format!(
                "access totals differ between identical threaded runs: {:?} vs {:?}",
                access(ra),
                access(rb)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources(text: &str) -> Vec<(String, String)> {
        vec![("main.f".to_string(), text.to_string())]
    }

    #[test]
    fn clean_program_passes_quick_matrix() {
        let src = "      program main\n      integer i\n      real*8 a(16)\nc$distribute a(block)\nc$doacross local(i)\n      do i = 1, 16\n        a(i) = dble(i) * 0.5\n      enddo\n      end\n";
        let stats = check_sources(&sources(src), &["a".to_string()], &Matrix::quick())
            .expect("conformant program");
        assert!(stats.runs >= Matrix::quick().runs());
    }

    #[test]
    fn matrix_includes_migration_axis() {
        let q = Matrix::quick();
        assert!(q.policies.contains(&MigrationPolicy::Off));
        assert!(q.policies.iter().any(|p| !p.is_off()));
        let f = Matrix::full();
        assert_eq!(f.policies.len(), 3);
        // Base cells times (exact + one replica per sampling rate).
        assert_eq!(f.runs(), 4 * 2 * 8 * 3 * (1 + 2));
        assert!(!q.sampling.is_empty(), "quick slice exercises sampling");
    }

    #[test]
    fn oracle_mismatch_is_reported() {
        // Force a mismatch by asking the oracle for an array the program
        // does not have… both sides return empty, so instead check that a
        // bad program (zero step) surfaces as a divergence, not a panic.
        let src = "      program main\n      integer i\n      real*8 a(4)\n      do i = 1, 4, i - i\n        a(i) = 1.0\n      enddo\n      end\n";
        let err = check_sources(&sources(src), &["a".to_string()], &Matrix::quick());
        assert!(err.is_err());
    }
}
