//! Greedy program shrinker.
//!
//! Given a failing [`Spec`] and a predicate that re-runs the
//! differential check, repeatedly tries structure-level simplifications
//! — drop a phase, strip a clause, flatten an expression, shrink an
//! extent, remove a distribution — keeping any mutation under which the
//! failure persists, until a full round of candidates yields nothing.
//! Because mutations act on the [`Spec`] (not text), every candidate is
//! a well-formed program, and the final result renders as a small,
//! paste-able Fortran reproducer.

use crate::spec::{collect_reads, Bounds, DistSpec, LoopSpec, Phase, RExpr, Spec};

/// Shrink `spec` while `fails` keeps returning `true`. The predicate is
/// called at most `budget` times (each call is a full matrix run, so
/// this bounds shrink time); the original spec is returned unchanged if
/// it does not fail.
pub fn shrink(spec: &Spec, budget: usize, mut fails: impl FnMut(&Spec) -> bool) -> Spec {
    let mut best = spec.clone();
    if !fails(&best) {
        return best;
    }
    let mut calls = 1usize;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if calls >= budget {
                return best;
            }
            calls += 1;
            if fails(&cand) {
                best = cand;
                improved = true;
                break; // restart candidate enumeration from the smaller spec
            }
        }
        if !improved {
            return best;
        }
    }
}

/// All one-step simplifications of `spec`, most aggressive first.
fn candidates(spec: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();

    // Keep only a prefix of the phases (most aggressive: one phase).
    for keep in 1..spec.phases.len() {
        let mut s = spec.clone();
        s.phases.truncate(keep);
        out.push(s);
    }
    // Drop each single phase.
    for i in 0..spec.phases.len() {
        if spec.phases.len() > 1 {
            let mut s = spec.clone();
            s.phases.remove(i);
            out.push(s);
        }
    }
    // Per-phase simplifications.
    for (i, p) in spec.phases.iter().enumerate() {
        match p {
            Phase::Loop(l) => {
                for l2 in loop_simplifications(l) {
                    let mut s = spec.clone();
                    s.phases[i] = Phase::Loop(l2);
                    out.push(s);
                }
            }
            Phase::Init { arr, rhs } if *rhs != RExpr::F(1.0) => {
                let mut s = spec.clone();
                s.phases[i] = Phase::Init {
                    arr: *arr,
                    rhs: RExpr::F(1.0),
                };
                out.push(s);
            }
            _ => {}
        }
    }
    // Strip distributions, shrink extents.
    for (i, a) in spec.arrays.iter().enumerate() {
        if !matches!(a.dist, DistSpec::None) {
            let mut s = spec.clone();
            s.arrays[i].dist = DistSpec::None;
            out.push(s);
        }
        if a.dims.iter().any(|&d| d > 4) {
            let mut s = spec.clone();
            s.arrays[i].dims = a.dims.iter().map(|&d| d.min(4)).collect();
            out.push(s);
        }
        if a.dims.len() > 1 {
            // Drop trailing dimensions; remap loop slots conservatively.
            let mut s = spec.clone();
            s.arrays[i].dims.truncate(1);
            for ph in &mut s.phases {
                if let Phase::Loop(l) = ph {
                    if l.arr == i {
                        l.slot = 0;
                        l.nest2 = false;
                    }
                    if let Some(aff) = &mut l.affinity {
                        if aff.arr == i {
                            aff.slot = 0;
                        }
                    }
                }
            }
            // A call whose formal shape no longer matches would now be a
            // compile error (a different failure); drop such calls.
            s.phases.retain(|ph| match ph {
                Phase::Call { arr, .. } => *arr != i,
                _ => true,
            });
            if !s.phases.is_empty() {
                out.push(s);
            }
        }
    }
    // Remove unreferenced arrays / subs (with index remapping).
    for i in 0..spec.arrays.len() {
        if spec.arrays.len() > 1 && !array_referenced(spec, i) {
            out.push(remove_array(spec, i));
        }
    }
    for i in 0..spec.subs.len() {
        if !spec
            .phases
            .iter()
            .any(|p| matches!(p, Phase::Call { sub, .. } if *sub == i))
        {
            let mut s = spec.clone();
            s.subs.remove(i);
            for p in &mut s.phases {
                if let Phase::Call { sub, .. } = p {
                    if *sub > i {
                        *sub -= 1;
                    }
                }
            }
            out.push(s);
        }
    }
    out
}

fn loop_simplifications(l: &LoopSpec) -> Vec<LoopSpec> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut LoopSpec)| {
        let mut l2 = l.clone();
        f(&mut l2);
        if l2 != *l {
            out.push(l2);
        }
    };
    push(&|l| l.rhs = RExpr::F(1.0));
    push(&|l| l.guard = None);
    push(&|l| l.affinity = None);
    push(&|l| l.sched = None);
    push(&|l| l.nest2 = false);
    push(&|l| l.shareds = false);
    push(&|l| l.bounds = Bounds::Full);
    out
}

fn array_referenced(spec: &Spec, i: usize) -> bool {
    spec.phases.iter().any(|p| {
        let mut hit = false;
        let mut note = |arr: usize| hit |= arr == i;
        match p {
            Phase::Init { arr, rhs } => {
                note(*arr);
                collect_reads(rhs, &mut note);
            }
            Phase::ScalarAssign { rhs } => collect_reads(rhs, &mut note),
            Phase::Loop(l) => {
                note(l.arr);
                if let Some(a) = &l.affinity {
                    note(a.arr);
                }
                collect_reads(&l.rhs, &mut note);
            }
            Phase::Redistribute { arr, .. } | Phase::Call { arr, .. } => note(*arr),
            Phase::Barrier | Phase::ResizeTeam { .. } => {}
        }
        hit
    })
}

/// Remove array `i` (known unreferenced) and shift all indices above it.
fn remove_array(spec: &Spec, i: usize) -> Spec {
    let mut s = spec.clone();
    s.arrays.remove(i);
    let fix = |arr: &mut usize| {
        if *arr > i {
            *arr -= 1;
        }
    };
    let fix_expr = |e: &mut RExpr| fix_reads(e, i);
    for p in &mut s.phases {
        match p {
            Phase::Init { arr, rhs } => {
                fix(arr);
                fix_expr(rhs);
            }
            Phase::ScalarAssign { rhs } => fix_expr(rhs),
            Phase::Loop(l) => {
                fix(&mut l.arr);
                if let Some(a) = &mut l.affinity {
                    fix(&mut a.arr);
                }
                fix_expr(&mut l.rhs);
            }
            Phase::Redistribute { arr, .. } | Phase::Call { arr, .. } => fix(arr),
            Phase::Barrier | Phase::ResizeTeam { .. } => {}
        }
    }
    s
}

fn fix_reads(e: &mut RExpr, removed: usize) {
    match e {
        RExpr::Read(arr, _, _) if *arr > removed => *arr -= 1,
        RExpr::Read(..) => {}
        RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::MaxR(a, b) => {
            fix_reads(a, removed);
            fix_reads(b, removed);
        }
        RExpr::Half(a) | RExpr::SqrtAbs(a) | RExpr::Trunc(a) => fix_reads(a, removed),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn shrink_reaches_minimal_doacross() {
        // Failure predicate: "has any doacross loop". The shrinker must
        // strip everything else away.
        let spec = generate(7);
        let has_doacross = |s: &Spec| {
            s.phases
                .iter()
                .any(|p| matches!(p, Phase::Loop(l) if l.doacross))
        };
        assert!(has_doacross(&spec), "seed 7 should contain a doacross");
        let min = shrink(&spec, 500, has_doacross);
        assert!(has_doacross(&min));
        assert_eq!(min.phases.len(), 1, "{min:?}");
        assert_eq!(min.arrays.len(), 1, "{min:?}");
        assert!(min.subs.is_empty(), "{min:?}");
        let (_, text) = &min.render()[0];
        assert!(
            text.lines().count() <= 15,
            "minimal reproducer should be tiny:\n{text}"
        );
    }

    #[test]
    fn non_failing_spec_is_untouched() {
        let spec = generate(3);
        let out = shrink(&spec, 10, |_| false);
        assert_eq!(out, spec);
    }
}
