//! Structured model of a generated test program.
//!
//! The fuzzer does not manipulate Fortran text directly: it builds a
//! [`Spec`] — arrays, distribution directives, phases, callee
//! subroutines — and renders it to directive-Fortran sources on demand.
//! The shrinker mutates the [`Spec`] (drop a phase, simplify an
//! expression, strip a clause) and re-renders, so every shrink candidate
//! is a structurally plausible program rather than a random text edit.
//!
//! Every program a [`Spec`] can express is *confluent by construction*:
//! `doacross` bodies write arrays only at indices that carry the parallel
//! loop variable bare in a fixed dimension slot, so distinct iterations
//! touch disjoint elements and the final array contents are independent
//! of scheduling, distribution, and team interleaving. That is exactly
//! the paper's invariant (directives change placement, not semantics),
//! and it is what lets a layout-oblivious serial oracle predict the
//! output of every machine configuration.

/// Element type of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElemTy {
    /// `real*8`
    Real,
    /// `integer`
    Int,
}

/// One per-dimension item of a distribution directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistItemSpec {
    /// `block`
    Block,
    /// `cyclic` (chunk 1) or `cyclic(k)`
    Cyclic(Option<i64>),
    /// `*` (not distributed)
    Star,
}

impl DistItemSpec {
    fn render(self) -> String {
        match self {
            DistItemSpec::Block => "block".into(),
            DistItemSpec::Cyclic(None) => "cyclic".into(),
            DistItemSpec::Cyclic(Some(k)) => format!("cyclic({k})"),
            DistItemSpec::Star => "*".into(),
        }
    }
}

/// How an array is distributed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistSpec {
    /// No directive: placed by the page policy.
    None,
    /// `c$distribute` (page-granularity regular distribution).
    Regular(Vec<DistItemSpec>),
    /// `c$distribute_reshape` (layout-changing distribution).
    Reshaped(Vec<DistItemSpec>),
}

/// One main-program array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Fortran name (`a`, `b`, …).
    pub name: String,
    /// Extents (all ≥ 3).
    pub dims: Vec<i64>,
    /// Element type.
    pub ty: ElemTy,
    /// Distribution directive.
    pub dist: DistSpec,
}

/// Safe index forms for reading an array inside a loop: every form maps
/// any loop-variable value ≥ 1 into the dimension's bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// `mod(v + c, E) + 1` — wraps, always in bounds.
    Mod,
    /// `min(v + 1, E)` on dim 0, `max(E - v, 1)` elsewhere — both clamp
    /// from *both* sides, since the driving variable may range far past
    /// this array's extent.
    Clamp,
    /// `E + 1 - min(v, E)` — reversed traversal.
    Rev,
}

/// Generated right-hand-side expressions. All real-valued (integer
/// leaves are wrapped in `dble`), so any tree is type-correct anywhere.
#[derive(Debug, Clone, PartialEq)]
pub enum RExpr {
    /// Real literal.
    F(f64),
    /// The shared real scalar `s`.
    SVar,
    /// `dble(i)` — the (outermost) loop variable in scope.
    PvF,
    /// `dble(j)` — the second loop variable; renders `dble(1)` when not
    /// in scope (shrink mutations may strip the inner loop).
    IvF,
    /// Identity read of the statement's target array (same indices as
    /// the left-hand side).
    SelfRead,
    /// Read of main array `arr` through a safe index form (offset `off`).
    Read(usize, i64, ReadKind),
    /// `(x + y)`
    Add(Box<RExpr>, Box<RExpr>),
    /// `(x - y)`
    Sub(Box<RExpr>, Box<RExpr>),
    /// `(x * y)`
    Mul(Box<RExpr>, Box<RExpr>),
    /// `(x / 2.0)`
    Half(Box<RExpr>),
    /// `sqrt(abs(x))`
    SqrtAbs(Box<RExpr>),
    /// `dble(int(x))` — exercises real→int truncation.
    Trunc(Box<RExpr>),
    /// `max(x, y)` / `min(x, y)` over reals.
    MaxR(Box<RExpr>, Box<RExpr>),
}

/// Loop bounds relative to the driven dimension's extent `E`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bounds {
    /// `1, E`
    Full,
    /// `2, E - 1`
    Shifted,
    /// `1, E, 2`
    Strided,
    /// `E, 1, -1`
    Reversed,
}

/// `schedtype` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedSpec {
    /// `schedtype(simple)`
    Simple,
    /// `schedtype(interleave(k))`
    Interleave(i64),
    /// `schedtype(dynamic(k))`
    Dynamic(i64),
}

/// `affinity(i) = data(arr(…))` clause: the loop variable drives
/// dimension `slot` of array `arr` (other index positions are `1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffSpec {
    /// Index into [`Spec::arrays`].
    pub arr: usize,
    /// Dimension of `arr` driven by the loop variable.
    pub slot: usize,
}

/// A loop nest writing one array at identity indices.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopSpec {
    /// Written array (index into [`Spec::arrays`]).
    pub arr: usize,
    /// Dimension of `arr` driven by the outer (parallel) loop variable.
    pub slot: usize,
    /// Outer loop bounds.
    pub bounds: Bounds,
    /// Emit a `c$doacross` on the outer loop.
    pub doacross: bool,
    /// Emit `nest(i, j)` (needs rank ≥ 2, no guard).
    pub nest2: bool,
    /// Emit a `shared(...)` clause listing referenced arrays.
    pub shareds: bool,
    /// Optional affinity clause.
    pub affinity: Option<AffSpec>,
    /// Optional schedtype clause (not combined with affinity).
    pub sched: Option<SchedSpec>,
    /// `if (mod(i, k) .eq. 0) then … endif` around the body.
    pub guard: Option<i64>,
    /// Right-hand side of the assignment.
    pub rhs: RExpr,
}

/// One top-level phase of the main program.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Serial loop nest writing every element of an array.
    Init {
        /// Written array.
        arr: usize,
        /// Right-hand side.
        rhs: RExpr,
    },
    /// `s = <expr>` at serial level.
    ScalarAssign {
        /// Right-hand side (no loop variables in scope).
        rhs: RExpr,
    },
    /// A (possibly parallel) loop nest.
    Loop(LoopSpec),
    /// `c$redistribute` of a regular-distributed array.
    Redistribute {
        /// Redistributed array.
        arr: usize,
        /// New per-dimension items.
        dists: Vec<DistItemSpec>,
    },
    /// `c$resize_team(P)` — re-chunk every regular array for a team of
    /// `P` processors (only legal when no reshaped array is declared).
    ResizeTeam {
        /// New team size (clamped to the machine at run time).
        nprocs: i64,
    },
    /// Cross-file call passing a whole array.
    Call {
        /// Index into [`Spec::subs`].
        sub: usize,
        /// Passed array (must be `real*8`; formal shape matches).
        arr: usize,
    },
    /// `c$barrier`.
    Barrier,
}

/// A subroutine in the second source file. It takes a single `real*8`
/// formal `x` with fixed declared shape and updates it in place at
/// identity indices (reads only `x`, loop variables and literals).
#[derive(Debug, Clone, PartialEq)]
pub struct SubSpec {
    /// Subroutine name (`sub1`, `sub2`, …).
    pub name: String,
    /// Declared formal extents.
    pub dims: Vec<i64>,
    /// Put a `c$doacross` on the outer loop of the update nest.
    pub doacross: bool,
    /// Right-hand side (must not contain [`RExpr::Read`]).
    pub rhs: RExpr,
}

/// A complete generated program.
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Main-program arrays.
    pub arrays: Vec<ArraySpec>,
    /// Cross-file subroutines.
    pub subs: Vec<SubSpec>,
    /// Main-program phases in order.
    pub phases: Vec<Phase>,
}

const LOOP_VARS: [&str; 3] = ["i", "j", "k"];

impl Spec {
    /// Names of all main-program arrays, in declaration order (the
    /// capture list of every differential run).
    pub fn capture_names(&self) -> Vec<String> {
        self.arrays.iter().map(|a| a.name.clone()).collect()
    }

    /// Render to `(file name, source)` pairs: `main.f`, plus `subs.f`
    /// when any subroutine exists (cross-file to exercise the
    /// shadow/prelink mechanism).
    pub fn render(&self) -> Vec<(String, String)> {
        let mut main = String::new();
        main.push_str("      program main\n");
        main.push_str("      integer i, j, k\n");
        main.push_str("      real*8 s\n");
        for a in &self.arrays {
            let dims = a
                .dims
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let ty = match a.ty {
                ElemTy::Real => "real*8",
                ElemTy::Int => "integer",
            };
            main.push_str(&format!("      {ty} {}({dims})\n", a.name));
        }
        for a in &self.arrays {
            let (kw, items) = match &a.dist {
                DistSpec::None => continue,
                DistSpec::Regular(items) => ("c$distribute", items),
                DistSpec::Reshaped(items) => ("c$distribute_reshape", items),
            };
            let items = items
                .iter()
                .map(|d| d.render())
                .collect::<Vec<_>>()
                .join(", ");
            main.push_str(&format!("{kw} {}({items})\n", a.name));
        }
        for p in &self.phases {
            self.render_phase(&mut main, p);
        }
        main.push_str("      end\n");

        let mut out = vec![("main.f".to_string(), main)];
        if !self.subs.is_empty() {
            let mut subs = String::new();
            for s in &self.subs {
                self.render_sub(&mut subs, s);
            }
            out.push(("subs.f".to_string(), subs));
        }
        out
    }

    fn render_phase(&self, out: &mut String, p: &Phase) {
        match p {
            Phase::Init { arr, rhs } => {
                let a = &self.arrays[*arr];
                let rank = a.dims.len();
                let idx: Vec<String> = (0..rank).map(|d| LOOP_VARS[d].to_string()).collect();
                let lhs = format!("{}({})", a.name, idx.join(", "));
                for (d, e) in a.dims.iter().enumerate() {
                    out.push_str(&format!("{}do {} = 1, {e}\n", indent(d), LOOP_VARS[d]));
                }
                let cx = RenderCx {
                    spec: self,
                    vars: rank,
                    self_ref: Some(lhs.clone()),
                };
                out.push_str(&format!(
                    "{}{lhs} = {}\n",
                    indent(rank),
                    cx.render_expr(rhs)
                ));
                for d in (0..rank).rev() {
                    out.push_str(&format!("{}enddo\n", indent(d)));
                }
            }
            Phase::ScalarAssign { rhs } => {
                let cx = RenderCx {
                    spec: self,
                    vars: 0,
                    self_ref: None,
                };
                out.push_str(&format!("      s = {}\n", cx.render_expr(rhs)));
            }
            Phase::Loop(l) => self.render_loop(out, l),
            Phase::Redistribute { arr, dists } => {
                let items = dists
                    .iter()
                    .map(|d| d.render())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "c$redistribute {}({items})\n",
                    self.arrays[*arr].name
                ));
            }
            Phase::ResizeTeam { nprocs } => {
                out.push_str(&format!("c$resize_team({nprocs})\n"));
            }
            Phase::Call { sub, arr } => {
                out.push_str(&format!(
                    "      call {}({})\n",
                    self.subs[*sub].name, self.arrays[*arr].name
                ));
            }
            Phase::Barrier => out.push_str("c$barrier\n"),
        }
    }

    /// LHS index list of a loop phase: the parallel variable `i` sits
    /// bare in dimension `slot`, inner serial variables fill the rest.
    fn loop_lhs(&self, l: &LoopSpec) -> (String, usize) {
        let a = &self.arrays[l.arr];
        let rank = a.dims.len();
        let mut next_inner = 1; // j, k
        let mut idx = Vec::with_capacity(rank);
        for d in 0..rank {
            if d == l.slot {
                idx.push(LOOP_VARS[0].to_string());
            } else {
                idx.push(LOOP_VARS[next_inner].to_string());
                next_inner += 1;
            }
        }
        (format!("{}({})", a.name, idx.join(", ")), rank)
    }

    fn render_loop(&self, out: &mut String, l: &LoopSpec) {
        let a = &self.arrays[l.arr];
        let rank = a.dims.len();
        let (lhs, _) = self.loop_lhs(l);
        // Inner serial loop dims, in order, with their variables.
        let inner: Vec<(usize, &str)> = (0..rank)
            .filter(|d| *d != l.slot)
            .zip(LOOP_VARS[1..].iter().copied())
            .collect();
        if l.doacross {
            let mut dir = String::from("c$doacross");
            if l.nest2 && !inner.is_empty() {
                dir.push_str(&format!(" nest(i, {})", inner[0].1));
            }
            let mut locals = vec!["i"];
            locals.extend(inner.iter().map(|(_, v)| *v));
            dir.push_str(&format!(" local({})", locals.join(", ")));
            if l.shareds {
                let mut names = vec![a.name.clone()];
                collect_reads(&l.rhs, &mut |arr| {
                    let n = self.arrays[arr].name.clone();
                    if !names.contains(&n) {
                        names.push(n);
                    }
                });
                dir.push_str(&format!(" shared({})", names.join(", ")));
            }
            if let Some(aff) = &l.affinity {
                let t = &self.arrays[aff.arr];
                let idx: Vec<String> = (0..t.dims.len())
                    .map(|d| {
                        if d == aff.slot {
                            "i".into()
                        } else {
                            "1".to_string()
                        }
                    })
                    .collect();
                dir.push_str(&format!(
                    " affinity(i) = data({}({}))",
                    t.name,
                    idx.join(", ")
                ));
            } else if let Some(s) = &l.sched {
                let s = match s {
                    SchedSpec::Simple => "simple".to_string(),
                    SchedSpec::Interleave(k) => format!("interleave({k})"),
                    SchedSpec::Dynamic(k) => format!("dynamic({k})"),
                };
                dir.push_str(&format!(" schedtype({s})"));
            }
            dir.push('\n');
            out.push_str(&dir);
        }
        let e = a.dims[l.slot];
        let bounds = match l.bounds {
            Bounds::Full => format!("1, {e}"),
            Bounds::Shifted => format!("2, {}", e - 1),
            Bounds::Strided => format!("1, {e}, 2"),
            Bounds::Reversed => format!("{e}, 1, -1"),
        };
        out.push_str(&format!("      do i = {bounds}\n"));
        let mut depth = 1;
        if let Some(k) = l.guard {
            out.push_str(&format!("{}if (mod(i, {k}) .eq. 0) then\n", indent(depth)));
            depth += 1;
        }
        for (d, v) in &inner {
            out.push_str(&format!("{}do {v} = 1, {}\n", indent(depth), a.dims[*d]));
            depth += 1;
        }
        let cx = RenderCx {
            spec: self,
            vars: 1 + inner.len(),
            self_ref: Some(lhs.clone()),
        };
        out.push_str(&format!(
            "{}{lhs} = {}\n",
            indent(depth),
            cx.render_expr(&l.rhs)
        ));
        for _ in &inner {
            depth -= 1;
            out.push_str(&format!("{}enddo\n", indent(depth)));
        }
        if l.guard.is_some() {
            depth -= 1;
            out.push_str(&format!("{}endif\n", indent(depth)));
        }
        out.push_str("      enddo\n");
    }

    fn render_sub(&self, out: &mut String, s: &SubSpec) {
        let rank = s.dims.len();
        out.push_str(&format!("      subroutine {}(x)\n", s.name));
        out.push_str(&format!("      integer {}\n", LOOP_VARS[..rank].join(", ")));
        let dims = s
            .dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!("      real*8 x({dims})\n"));
        let idx: Vec<String> = (0..rank).map(|d| LOOP_VARS[d].to_string()).collect();
        let lhs = format!("x({})", idx.join(", "));
        if s.doacross {
            out.push_str(&format!(
                "c$doacross local({})\n",
                LOOP_VARS[..rank].join(", ")
            ));
        }
        for (d, e) in s.dims.iter().enumerate() {
            out.push_str(&format!("{}do {} = 1, {e}\n", indent(d), LOOP_VARS[d]));
        }
        let cx = RenderCx {
            spec: self,
            vars: rank,
            self_ref: Some(lhs.clone()),
        };
        out.push_str(&format!(
            "{}{lhs} = {}\n",
            indent(rank),
            cx.render_expr(&s.rhs)
        ));
        for d in (0..rank).rev() {
            out.push_str(&format!("{}enddo\n", indent(d)));
        }
        out.push_str("      end\n");
    }
}

fn indent(depth: usize) -> String {
    " ".repeat(6 + 2 * depth)
}

/// Visit every [`RExpr::Read`] in an expression.
pub fn collect_reads(e: &RExpr, f: &mut impl FnMut(usize)) {
    match e {
        RExpr::Read(arr, _, _) => f(*arr),
        RExpr::Add(a, b) | RExpr::Sub(a, b) | RExpr::Mul(a, b) | RExpr::MaxR(a, b) => {
            collect_reads(a, f);
            collect_reads(b, f);
        }
        RExpr::Half(a) | RExpr::SqrtAbs(a) | RExpr::Trunc(a) => collect_reads(a, f),
        _ => {}
    }
}

struct RenderCx<'a> {
    spec: &'a Spec,
    /// Number of loop variables in scope (`i`, then `j`, then `k`).
    vars: usize,
    /// Rendered identity reference of the target array, if any.
    self_ref: Option<String>,
}

impl RenderCx<'_> {
    fn render_expr(&self, e: &RExpr) -> String {
        match e {
            RExpr::F(v) => format!("{v:?}"),
            RExpr::SVar => "s".into(),
            RExpr::PvF => {
                if self.vars >= 1 {
                    "dble(i)".into()
                } else {
                    "dble(1)".into()
                }
            }
            RExpr::IvF => {
                if self.vars >= 2 {
                    "dble(j)".into()
                } else {
                    "dble(1)".into()
                }
            }
            RExpr::SelfRead => self.self_ref.clone().unwrap_or_else(|| "0.0".into()),
            RExpr::Read(arr, off, kind) => {
                let a = &self.spec.arrays[*arr];
                let idx: Vec<String> = a
                    .dims
                    .iter()
                    .enumerate()
                    .map(|(d, &e)| self.render_index(d, e, *off, *kind))
                    .collect();
                format!("{}({})", a.name, idx.join(", "))
            }
            RExpr::Add(a, b) => {
                format!("({} + {})", self.render_expr(a), self.render_expr(b))
            }
            RExpr::Sub(a, b) => {
                format!("({} - {})", self.render_expr(a), self.render_expr(b))
            }
            RExpr::Mul(a, b) => {
                format!("({} * {})", self.render_expr(a), self.render_expr(b))
            }
            RExpr::Half(a) => format!("({} / 2.0)", self.render_expr(a)),
            RExpr::SqrtAbs(a) => format!("sqrt(abs({}))", self.render_expr(a)),
            RExpr::Trunc(a) => format!("dble(int({}))", self.render_expr(a)),
            RExpr::MaxR(a, b) => {
                format!("max({}, {})", self.render_expr(a), self.render_expr(b))
            }
        }
    }

    /// A safe 1-based index expression for dimension `d` (extent `e`).
    fn render_index(&self, d: usize, e: i64, off: i64, kind: ReadKind) -> String {
        // Variable driving this dimension: reuse the in-scope loop vars
        // round-robin; constant fallback outside any loop.
        if self.vars == 0 {
            return ((off + d as i64).rem_euclid(e) + 1).to_string();
        }
        let v = LOOP_VARS[d.min(self.vars - 1)];
        match kind {
            ReadKind::Mod => format!("mod({v} + {}, {e}) + 1", off + d as i64),
            ReadKind::Clamp => {
                if d == 0 {
                    format!("min({v} + 1, {e})")
                } else {
                    format!("max({e} - {v}, 1)")
                }
            }
            ReadKind::Rev => format!("{e} + 1 - min({v}, {e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Spec {
        Spec {
            arrays: vec![ArraySpec {
                name: "a".into(),
                dims: vec![8],
                ty: ElemTy::Real,
                dist: DistSpec::Regular(vec![DistItemSpec::Block]),
            }],
            subs: vec![],
            phases: vec![Phase::Loop(LoopSpec {
                arr: 0,
                slot: 0,
                bounds: Bounds::Full,
                doacross: true,
                nest2: false,
                shareds: false,
                affinity: None,
                sched: None,
                guard: None,
                rhs: RExpr::PvF,
            })],
        }
    }

    #[test]
    fn renders_parseable_fortran() {
        let sources = tiny().render();
        assert_eq!(sources.len(), 1, "no subs -> one file");
        let (_, text) = &sources[0];
        assert!(text.contains("c$doacross local(i)"), "{text}");
        assert!(text.contains("a(i) = dble(i)"), "{text}");
        let parsed = dsm_frontend::parse_source(0, "main.f", text);
        assert!(parsed.is_ok(), "{parsed:?}\n{text}");
    }

    #[test]
    fn index_forms_stay_in_bounds() {
        // mod form over any extent: v in 1..=64, extents 3..=16.
        for e in 3..=16i64 {
            for v in 1..=64i64 {
                for off in 0..4 {
                    let m = (v + off).rem_euclid(e) + 1;
                    assert!((1..=e).contains(&m));
                    let c0 = (v + 1).min(e);
                    assert!((1..=e).contains(&c0));
                    let c1 = (e - v).max(1);
                    assert!((1..=e).contains(&c1));
                    let r = e + 1 - v.min(e);
                    assert!((1..=e).contains(&r));
                }
            }
        }
    }
}
