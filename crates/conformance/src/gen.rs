//! Seeded random program generator.
//!
//! [`generate`] maps a `u64` seed to a [`Spec`] deterministically (the
//! vendored SplitMix64 generator), so a failing seed printed by CI can
//! be replayed bit-for-bit with `dsmfuzz --replay <seed>`.
//!
//! The generator enforces the safety rules that make the differential
//! oracle sound (see `spec.rs`): doacross bodies only write their
//! target array at indices carrying the parallel variable bare in a
//! fixed slot, never assign scalars, never call subroutines; reads of
//! other arrays go through always-in-bounds index forms; redistribution
//! only targets regular-distributed arrays; calls pass whole `real*8`
//! arrays to formals of identical declared shape. Everything else —
//! distributions, reshapes, schedules, affinity, bounds shapes, guards,
//! nesting, expression trees — is fuzzed freely.

use crate::spec::{
    AffSpec, ArraySpec, Bounds, DistItemSpec, DistSpec, ElemTy, LoopSpec, Phase, RExpr, ReadKind,
    SchedSpec, Spec, SubSpec,
};
use rand::{Rng, SmallRng};

const ARRAY_NAMES: [&str; 3] = ["a", "b", "c"];

/// Options for [`generate_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct GenOptions {
    /// Emit the program without any placement directives — no
    /// `distribute`/`distribute_reshape`, no `redistribute` phases, no
    /// `doacross` annotations (`c$barrier` stays; it is synchronization,
    /// not placement). The stripped program computes the same values as
    /// the annotated one for the same seed, which is exactly what the
    /// advisor needs as fuzz input: unannotated programs whose oracle
    /// expectations are already known-good.
    pub strip_directives: bool,
}

/// Generate the program for one seed under `opts`.
pub fn generate_with(seed: u64, opts: &GenOptions) -> Spec {
    let mut spec = generate(seed);
    if opts.strip_directives {
        strip_spec(&mut spec);
    }
    spec
}

/// Remove every placement directive from a generated spec. Serial
/// execution is strictly more permissive than the generator's doacross
/// safety rules, so the stripped program is always valid.
fn strip_spec(spec: &mut Spec) {
    for a in &mut spec.arrays {
        a.dist = DistSpec::None;
    }
    for s in &mut spec.subs {
        s.doacross = false;
    }
    spec.phases
        .retain(|p| !matches!(p, Phase::Redistribute { .. } | Phase::ResizeTeam { .. }));
    for p in &mut spec.phases {
        if let Phase::Loop(l) = p {
            l.doacross = false;
            l.nest2 = false;
            l.shareds = false;
            l.affinity = None;
            l.sched = None;
        }
    }
}

/// Generate the program for one seed.
pub fn generate(seed: u64) -> Spec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let r = &mut rng;

    let n_arrays = match r.gen_range(0..10) {
        0..=2 => 1,
        3..=6 => 2,
        _ => 3,
    };
    let arrays: Vec<ArraySpec> = (0..n_arrays)
        .map(|i| gen_array(r, ARRAY_NAMES[i]))
        .collect();

    let mut spec = Spec {
        arrays,
        subs: Vec::new(),
        phases: Vec::new(),
    };

    // Initialise a prefix of the arrays (the rest start zeroed, like the
    // simulated machine's memory).
    for arr in 0..spec.arrays.len() {
        if r.gen_range(0..10) < 7 {
            let rhs = gen_expr(r, &spec, 0, true, false, None);
            spec.phases.push(Phase::Init { arr, rhs });
        }
    }

    let n_extra = 2 + r.gen_range(0..4) as usize;
    let mut have_doacross = false;
    for _ in 0..n_extra {
        match r.gen_range(0..100) {
            0..=54 => {
                let l = gen_loop(r, &spec, true);
                have_doacross |= l.doacross;
                spec.phases.push(Phase::Loop(l));
            }
            55..=69 => {
                if let Some(p) = gen_call(r, &mut spec) {
                    spec.phases.push(p);
                }
            }
            70..=79 => {
                if let Some(p) = gen_redistribute(r, &spec) {
                    spec.phases.push(p);
                }
            }
            95..=97 => {
                if let Some(p) = gen_resize(r, &spec) {
                    spec.phases.push(p);
                }
            }
            80..=89 => {
                let rhs = gen_expr(r, &spec, 0, false, true, None);
                spec.phases.push(Phase::ScalarAssign { rhs });
            }
            90..=94 => {
                let l = gen_loop(r, &spec, false);
                spec.phases.push(Phase::Loop(l));
            }
            _ => spec.phases.push(Phase::Barrier),
        }
    }
    if !have_doacross {
        let mut l = gen_loop(r, &spec, true);
        l.doacross = true;
        spec.phases.push(Phase::Loop(l));
    }
    spec
}

/// Generate the program for one seed with the redistribution axis
/// forced on: every reshaped array is regularized (so `c$redistribute`
/// and `c$resize_team` are always legal), at least one array carries a
/// regular distribution, and the phase list is guaranteed to contain at
/// least one `Redistribute` (fresh per-dimension items — block ↔
/// cyclic(k) ↔ cyclic(k′) conversions included) and one `ResizeTeam`
/// point, inserted between existing phases. Used by the scheduled-vs-
/// naive differential matrix.
pub fn generate_redist(seed: u64) -> Spec {
    let mut spec = generate(seed);
    // Dedicated axis: reshaped arrays would statically reject
    // resize_team and redistribute, so regularize them.
    for a in &mut spec.arrays {
        if let DistSpec::Reshaped(items) = &a.dist {
            a.dist = DistSpec::Regular(items.clone());
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5ca1_ab1e);
    let r = &mut rng;
    if !spec
        .arrays
        .iter()
        .any(|a| matches!(a.dist, DistSpec::Regular(_)))
    {
        let rank = spec.arrays[0].dims.len();
        spec.arrays[0].dist = DistSpec::Regular(gen_dist_items(r, rank));
    }
    let n_redist = 1 + r.gen_range(0..2) as usize;
    for _ in 0..n_redist {
        if let Some(p) = gen_redistribute(r, &spec) {
            let at = r.gen_range(0..(spec.phases.len() + 1) as u64) as usize;
            spec.phases.insert(at, p);
        }
    }
    if let Some(p) = gen_resize(r, &spec) {
        let at = r.gen_range(0..(spec.phases.len() + 1) as u64) as usize;
        spec.phases.insert(at, p);
    }
    spec
}

fn gen_array(r: &mut SmallRng, name: &str) -> ArraySpec {
    let rank = 1 + r.gen_range(0..3) as usize;
    let dims: Vec<i64> = match rank {
        1 => vec![*pick(r, &[6, 8, 9, 12, 16, 24])],
        2 => (0..2).map(|_| *pick(r, &[4, 5, 6, 8, 9])).collect(),
        _ => (0..3).map(|_| *pick(r, &[3, 4, 5])).collect(),
    };
    let ty = if r.gen_range(0..10) == 0 {
        ElemTy::Int
    } else {
        ElemTy::Real
    };
    let dist = match r.gen_range(0..100) {
        0..=34 => DistSpec::Regular(gen_dist_items(r, rank)),
        35..=64 => DistSpec::Reshaped(gen_dist_items(r, rank)),
        _ => DistSpec::None,
    };
    ArraySpec {
        name: name.to_string(),
        dims,
        ty,
        dist,
    }
}

/// Per-dimension items with at least one distributed dimension.
fn gen_dist_items(r: &mut SmallRng, rank: usize) -> Vec<DistItemSpec> {
    loop {
        let items: Vec<DistItemSpec> = (0..rank)
            .map(|_| match r.gen_range(0..100) {
                0..=44 => DistItemSpec::Block,
                45..=64 => DistItemSpec::Cyclic(None),
                65..=84 => DistItemSpec::Cyclic(Some(*pick(r, &[1, 2, 3, 5]))),
                _ => DistItemSpec::Star,
            })
            .collect();
        if items.iter().any(|d| !matches!(d, DistItemSpec::Star)) {
            return items;
        }
    }
}

fn gen_loop(r: &mut SmallRng, spec: &Spec, doacross: bool) -> LoopSpec {
    let arr = r.gen_range(0..spec.arrays.len() as u64) as usize;
    let rank = spec.arrays[arr].dims.len();
    let slot = r.gen_range(0..rank as u64) as usize;
    let bounds = match r.gen_range(0..100) {
        0..=59 => Bounds::Full,
        60..=74 => Bounds::Shifted,
        75..=84 => Bounds::Strided,
        _ => Bounds::Reversed,
    };
    let guard = if r.gen_range(0..100) < 15 {
        Some(*pick(r, &[2, 3]))
    } else {
        None
    };
    // nest(i, j) demands a perfect nest: no guard between the loops.
    let nest2 = doacross && rank >= 2 && guard.is_none() && r.gen_range(0..4) == 0;
    // Affinity candidates: distributed arrays with a dimension whose
    // extent covers the loop range, so `data(t(.., i, ..))` never
    // references past the end of the target (the tile lowering assumes
    // the affinity index stays within the array's declared extent).
    let loop_extent = spec.arrays[arr].dims[slot];
    let aff_pairs: Vec<(usize, usize)> = spec
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| !matches!(a.dist, DistSpec::None))
        .flat_map(|(i, a)| {
            a.dims
                .iter()
                .enumerate()
                .filter(move |(_, &e)| e >= loop_extent)
                .map(move |(d, _)| (i, d))
        })
        .collect();
    let affinity = if doacross && !aff_pairs.is_empty() && r.gen_range(0..10) < 4 {
        let (t, aslot) = *pick(r, &aff_pairs);
        Some(AffSpec {
            arr: t,
            slot: aslot,
        })
    } else {
        None
    };
    let sched = if doacross && affinity.is_none() {
        match r.gen_range(0..10) {
            0..=3 => None,
            4..=5 => Some(SchedSpec::Simple),
            6..=7 => Some(SchedSpec::Interleave(*pick(r, &[1, 2, 3]))),
            _ => Some(SchedSpec::Dynamic(*pick(r, &[1, 2]))),
        }
    } else {
        None
    };
    // Inside a parallel region the written array is off-limits to
    // non-identity reads; serial loops may read anything (the oracle
    // replays the same sequential order).
    let rhs = gen_expr(r, spec, 0, true, false, doacross.then_some(arr));
    LoopSpec {
        arr,
        slot,
        bounds,
        doacross,
        nest2,
        shareds: doacross && r.gen_range(0..2) == 0,
        affinity,
        sched,
        guard,
        rhs,
    }
}

/// Pick a `real*8` array and route it to a subroutine whose formal has
/// the same declared shape, reusing an existing compatible sub half the
/// time (repeat calls through one clone vs. fresh clones both matter).
fn gen_call(r: &mut SmallRng, spec: &mut Spec) -> Option<Phase> {
    let candidates: Vec<usize> = spec
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| a.ty == ElemTy::Real)
        .map(|(i, _)| i)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let arr = *pick(r, &candidates);
    let dims = spec.arrays[arr].dims.clone();
    let existing = spec.subs.iter().position(|s| s.dims == dims);
    let sub = match existing {
        Some(s) if r.gen_range(0..2) == 0 => s,
        _ => {
            let name = format!("sub{}", spec.subs.len() + 1);
            let rank = dims.len();
            let rhs = gen_sub_expr(r, rank);
            spec.subs.push(SubSpec {
                name,
                dims,
                doacross: r.gen_range(0..10) < 3,
                rhs,
            });
            spec.subs.len() - 1
        }
    };
    Some(Phase::Call { sub, arr })
}

/// A `c$resize_team` point. Only legal when no reshaped array is
/// declared (sema rejects the directive otherwise); the team size may
/// exceed the machine's — the runtime clamps it.
fn gen_resize(r: &mut SmallRng, spec: &Spec) -> Option<Phase> {
    if spec
        .arrays
        .iter()
        .any(|a| matches!(a.dist, DistSpec::Reshaped(_)))
    {
        return None;
    }
    Some(Phase::ResizeTeam {
        nprocs: *pick(r, &[1, 2, 3, 4, 6, 8]),
    })
}

fn gen_redistribute(r: &mut SmallRng, spec: &Spec) -> Option<Phase> {
    let regular: Vec<usize> = spec
        .arrays
        .iter()
        .enumerate()
        .filter(|(_, a)| matches!(a.dist, DistSpec::Regular(_)))
        .map(|(i, _)| i)
        .collect();
    if regular.is_empty() {
        return None;
    }
    let arr = *pick(r, &regular);
    let rank = spec.arrays[arr].dims.len();
    Some(Phase::Redistribute {
        arr,
        dists: gen_dist_items(r, rank),
    })
}

/// Random real-valued expression tree.
///
/// `self_ok` gates [`RExpr::SelfRead`] (only meaningful when assigning
/// to an array). `exclude` names an array [`RExpr::Read`] must avoid:
/// inside a `doacross` body the written array may be referenced *only*
/// through the identity `SelfRead` — a read at any other index races
/// with another iteration's write and the result would legitimately
/// depend on scheduling, which is exactly what the oracle cannot (and
/// must not) predict.
fn gen_expr(
    r: &mut SmallRng,
    spec: &Spec,
    depth: u32,
    self_ok: bool,
    scalar_cx: bool,
    exclude: Option<usize>,
) -> RExpr {
    if depth < 3 && r.gen_range(0..10) < 5 {
        let op = r.gen_range(0..8);
        let a = Box::new(gen_expr(r, spec, depth + 1, self_ok, scalar_cx, exclude));
        return match op {
            0 | 1 => RExpr::Add(
                a,
                Box::new(gen_expr(r, spec, depth + 1, self_ok, scalar_cx, exclude)),
            ),
            2 => RExpr::Sub(
                a,
                Box::new(gen_expr(r, spec, depth + 1, self_ok, scalar_cx, exclude)),
            ),
            3 => RExpr::Mul(
                a,
                Box::new(gen_expr(r, spec, depth + 1, self_ok, scalar_cx, exclude)),
            ),
            4 => RExpr::Half(a),
            5 => RExpr::SqrtAbs(a),
            6 => RExpr::Trunc(a),
            _ => RExpr::MaxR(
                a,
                Box::new(gen_expr(r, spec, depth + 1, self_ok, scalar_cx, exclude)),
            ),
        };
    }
    gen_leaf(r, spec, self_ok, scalar_cx, exclude)
}

fn gen_leaf(
    r: &mut SmallRng,
    spec: &Spec,
    self_ok: bool,
    scalar_cx: bool,
    exclude: Option<usize>,
) -> RExpr {
    const LITS: [f64; 6] = [0.5, 1.0, 1.5, 2.0, 0.25, 3.0];
    loop {
        match r.gen_range(0..100) {
            0..=24 => return RExpr::F(*pick(r, &LITS)),
            25..=34 => return RExpr::SVar,
            35..=54 => {
                if !scalar_cx {
                    return RExpr::PvF;
                }
            }
            55..=64 => {
                if !scalar_cx {
                    return RExpr::IvF;
                }
            }
            65..=84 => {
                if self_ok && !scalar_cx {
                    return RExpr::SelfRead;
                }
            }
            _ => {
                let readable: Vec<usize> = (0..spec.arrays.len())
                    .filter(|i| Some(*i) != exclude)
                    .collect();
                if !readable.is_empty() {
                    let arr = *pick(r, &readable);
                    let kind = match r.gen_range(0..10) {
                        0..=5 => ReadKind::Mod,
                        6..=7 => ReadKind::Clamp,
                        _ => ReadKind::Rev,
                    };
                    return RExpr::Read(arr, r.gen_range(0..4) as i64, kind);
                }
            }
        }
    }
}

/// Expressions legal inside a subroutine body: formal, loop vars,
/// scalars and literals only.
fn gen_sub_expr(r: &mut SmallRng, rank: usize) -> RExpr {
    let leaf = |r: &mut SmallRng| match r.gen_range(0..10) {
        0..=2 => RExpr::SelfRead,
        3..=5 => RExpr::PvF,
        6 if rank >= 2 => RExpr::IvF,
        6 | 7 => RExpr::F(0.5),
        _ => RExpr::F(2.0),
    };
    let a = Box::new(leaf(r));
    let b = Box::new(leaf(r));
    match r.gen_range(0..5) {
        0 => RExpr::Add(a, b),
        1 => RExpr::Mul(a, b),
        2 => RExpr::Half(a),
        3 => RExpr::Sub(a, b),
        _ => RExpr::MaxR(a, b),
    }
}

fn pick<'a, T>(r: &mut SmallRng, items: &'a [T]) -> &'a T {
    &items[r.gen_range(0..items.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn stripped_seeds_have_no_placement_directives() {
        let opts = GenOptions {
            strip_directives: true,
        };
        for seed in 0..50u64 {
            let spec = generate_with(seed, &opts);
            for (name, text) in spec.render() {
                for kw in ["c$distribute", "c$redistribute", "c$doacross"] {
                    assert!(
                        !text.contains(kw),
                        "seed {seed} {name} still has {kw}:\n{text}"
                    );
                }
                dsm_frontend::parse_source(0, &name, &text).expect("stripped program parses");
            }
        }
    }

    #[test]
    fn first_hundred_seeds_parse() {
        for seed in 0..100u64 {
            let spec = generate(seed);
            for (name, text) in spec.render() {
                let parsed = dsm_frontend::parse_source(0, &name, &text);
                assert!(parsed.is_ok(), "seed {seed} {name}: {parsed:?}\n{text}");
            }
        }
    }
}
