//! Layout-oblivious reference evaluator.
//!
//! Executes a parsed directive-Fortran program **directly from the AST**
//! with no notion of pages, caches, distributions, teams, or clones:
//! directives are placement hints, so the reference semantics are the
//! sequential semantics. The oracle mirrors the interpreter's value
//! model exactly (it reuses [`dsm_exec::value::Value`], so coercion,
//! truncation and promotion rules can never drift apart):
//!
//! * scalar stores coerce to the declared type; array stores coerce to
//!   the element type (`real*8` keeps the `f64`, `integer` truncates);
//! * serial `do` loops leave the loop variable at the last *executed*
//!   value (untouched after zero iterations);
//! * a `doacross` region runs its members on clones of the scalar
//!   environment — in-region scalar writes are discarded at the join —
//!   and then sets the loop variable to the sequential `lastlocal`
//!   value `lb + niters*step`;
//! * subroutine calls copy scalars in (no copy-back) and alias whole
//!   arrays.
//!
//! One deliberate divergence: when affinity tiling lowers a region to
//! processor-tile scheduling, the interpreter leaves the loop variable
//! untouched at the join instead of applying `lastlocal`. The oracle
//! cannot know which lowering fired (that *is* layout obliviousness),
//! so the generator never reads a parallel loop variable after its
//! region without reassigning it first, making the difference
//! unobservable in captured arrays.

use dsm_exec::value::Value;
use dsm_frontend::ast::{ABinOp, AExpr, AStmt, ATy, AUnOp, SourceUnit, UnitKind};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Why the oracle could not produce a verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// Source did not parse.
    Parse(String),
    /// Construct outside the oracle's (deliberately small) dialect.
    Unsupported(String),
    /// Runtime fault (out of bounds, zero step, step limit…). Generated
    /// programs never fault; hitting this on one is a harness bug.
    Runtime(String),
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::Parse(m) => write!(f, "oracle parse error: {m}"),
            OracleError::Unsupported(m) => write!(f, "oracle unsupported: {m}"),
            OracleError::Runtime(m) => write!(f, "oracle runtime error: {m}"),
        }
    }
}

type OResult<T> = Result<T, OracleError>;

/// An array's reference contents (column-major, like the simulator).
struct OArr {
    ty: ATy,
    dims: Vec<i64>,
    data: Vec<Value>,
}

impl OArr {
    fn new(ty: ATy, dims: Vec<i64>) -> Self {
        let n: i64 = dims.iter().product();
        let zero = match ty {
            ATy::Int => Value::I(0),
            ATy::Real => Value::F(0.0),
        };
        OArr {
            ty,
            dims,
            data: vec![zero; n.max(0) as usize],
        }
    }

    /// 1-based indices → column-major linear offset.
    fn linear(&self, idx: &[i64]) -> OResult<usize> {
        if idx.len() != self.dims.len() {
            return Err(OracleError::Runtime(format!(
                "rank mismatch: {} indices for rank {}",
                idx.len(),
                self.dims.len()
            )));
        }
        let mut lin = 0i64;
        let mut stride = 1i64;
        for (v, e) in idx.iter().zip(&self.dims) {
            if *v < 1 || *v > *e {
                return Err(OracleError::Runtime(format!(
                    "index {v} out of bounds 1..={e}"
                )));
            }
            lin += (v - 1) * stride;
            stride *= e;
        }
        Ok(lin as usize)
    }
}

type ArrRef = Rc<RefCell<OArr>>;

/// One activation: scalar values + declared scalar types + array
/// bindings. Whole-array arguments alias the caller's `ArrRef`.
#[derive(Default)]
struct Act {
    scalars: HashMap<String, Value>,
    stys: HashMap<String, ATy>,
    arrays: HashMap<String, ArrRef>,
}

impl Act {
    fn set_scalar(&mut self, name: &str, v: Value) -> OResult<()> {
        let ty = *self.stys.get(name).ok_or_else(|| {
            OracleError::Unsupported(format!("assignment to undeclared `{name}`"))
        })?;
        let coerced = match ty {
            ATy::Int => Value::I(v.as_i()),
            ATy::Real => Value::F(v.as_f()),
        };
        self.scalars.insert(name.to_string(), coerced);
        Ok(())
    }
}

/// The reference evaluator over a set of parsed units.
pub struct Oracle {
    main: SourceUnit,
    subs: HashMap<String, SourceUnit>,
    steps_left: u64,
}

/// Evaluate `sources` and return the final contents of `captures` as
/// bit-level `f64` vectors, exactly as the simulator's capture path
/// reports them: `real*8` elements verbatim, `integer` elements as the
/// raw `i64` bits reinterpreted, unknown names as empty vectors.
pub fn evaluate(sources: &[(String, String)], captures: &[String]) -> OResult<Vec<Vec<f64>>> {
    let mut oracle = Oracle::new(sources)?;
    let arrays = oracle.run()?;
    Ok(captures
        .iter()
        .map(|name| {
            arrays
                .get(&name.to_lowercase())
                .map(|a| {
                    let a = a.borrow();
                    a.data
                        .iter()
                        .map(|v| match v {
                            Value::F(f) => *f,
                            Value::I(i) => f64::from_bits(*i as u64),
                        })
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect())
}

impl Oracle {
    /// Parse sources and locate the main program.
    pub fn new(sources: &[(String, String)]) -> OResult<Self> {
        let mut main = None;
        let mut subs = HashMap::new();
        for (idx, (name, text)) in sources.iter().enumerate() {
            let units = dsm_frontend::parse_source(idx, name, text)
                .map_err(|errs| OracleError::Parse(format!("{name}: {errs:?}")))?;
            for u in units {
                match u.kind {
                    UnitKind::Program => main = Some(u),
                    UnitKind::Subroutine => {
                        subs.insert(u.name.to_lowercase(), u);
                    }
                }
            }
        }
        let main = main.ok_or_else(|| OracleError::Parse("no program unit found".into()))?;
        Ok(Oracle {
            main,
            subs,
            steps_left: 100_000_000,
        })
    }

    /// Execute the main program; returns its array environment.
    fn run(&mut self) -> OResult<HashMap<String, ArrRef>> {
        let main = self.main.clone();
        let mut act = self.activation(&main, &[])?;
        self.exec_block(&main, &main.body, &mut act, false, 0)?;
        Ok(act.arrays)
    }

    /// Build an activation for `unit`. `bound` carries formal bindings
    /// in parameter order (scalars already coerced by the caller).
    fn activation(&self, unit: &SourceUnit, bound: &[(String, Binding)]) -> OResult<Act> {
        if !unit.commons.is_empty() || !unit.equivalences.is_empty() {
            return Err(OracleError::Unsupported(format!(
                "`{}` uses common/equivalence",
                unit.name
            )));
        }
        let mut act = Act::default();
        for (span_name, b) in bound {
            match b {
                Binding::Scalar(v) => {
                    act.scalars.insert(span_name.clone(), *v);
                }
                Binding::Array(r) => {
                    act.arrays.insert(span_name.clone(), Rc::clone(r));
                }
            }
        }
        // `parameter (n = expr)` constants become immutable-by-convention
        // scalars, available to later dimension expressions.
        for (_, name, e) in &unit.parameters {
            let v = self.eval_in(&act, e)?;
            act.stys.insert(name.to_lowercase(), ATy::Int);
            act.scalars.insert(name.to_lowercase(), Value::I(v.as_i()));
        }
        for d in &unit.decls {
            let name = d.name.to_lowercase();
            if d.dims.is_empty() {
                act.stys.insert(name.clone(), d.ty);
                if let Some(v) = act.scalars.get(&name).copied() {
                    // Bound scalar formal: re-coerce to the declared type.
                    let v = match d.ty {
                        ATy::Int => Value::I(v.as_i()),
                        ATy::Real => Value::F(v.as_f()),
                    };
                    act.scalars.insert(name, v);
                } else {
                    let zero = match d.ty {
                        ATy::Int => Value::I(0),
                        ATy::Real => Value::F(0.0),
                    };
                    act.scalars.insert(name, zero);
                }
            } else if !act.arrays.contains_key(&name) {
                let dims: Vec<i64> = d
                    .dims
                    .iter()
                    .map(|e| self.eval_in(&act, e).map(|v| v.as_i()))
                    .collect::<OResult<_>>()?;
                act.arrays
                    .insert(name, Rc::new(RefCell::new(OArr::new(d.ty, dims))));
            }
            // A bound array formal keeps the caller's instance: declared
            // formal shape is a view the simulator checks separately.
        }
        Ok(act)
    }

    fn tick(&mut self) -> OResult<()> {
        if self.steps_left == 0 {
            return Err(OracleError::Runtime("oracle step limit".into()));
        }
        self.steps_left -= 1;
        Ok(())
    }

    fn exec_block(
        &mut self,
        unit: &SourceUnit,
        body: &[AStmt],
        act: &mut Act,
        in_region: bool,
        depth: u32,
    ) -> OResult<()> {
        for st in body {
            self.exec_stmt(unit, st, act, in_region, depth)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        unit: &SourceUnit,
        st: &AStmt,
        act: &mut Act,
        in_region: bool,
        depth: u32,
    ) -> OResult<()> {
        self.tick()?;
        match st {
            AStmt::Assign {
                lhs,
                lhs_indices,
                rhs,
                ..
            } => {
                let v = self.eval_in(act, rhs)?;
                if lhs_indices.is_empty() {
                    act.set_scalar(&lhs.to_lowercase(), v)
                } else {
                    let idx: Vec<i64> = lhs_indices
                        .iter()
                        .map(|e| self.eval_in(act, e).map(|v| v.as_i()))
                        .collect::<OResult<_>>()?;
                    let arr = act.arrays.get(&lhs.to_lowercase()).ok_or_else(|| {
                        OracleError::Unsupported(format!("unknown array `{lhs}`"))
                    })?;
                    let mut arr = arr.borrow_mut();
                    let lin = arr.linear(&idx)?;
                    arr.data[lin] = match arr.ty {
                        ATy::Int => Value::I(v.as_i()),
                        ATy::Real => Value::F(v.as_f()),
                    };
                    Ok(())
                }
            }
            AStmt::Do {
                var,
                lb,
                ub,
                step,
                body,
                doacross,
                ..
            } => {
                let var = var.to_lowercase();
                let lbv = self.eval_in(act, lb)?.as_i();
                let ubv = self.eval_in(act, ub)?.as_i();
                let stepv = match step {
                    Some(e) => self.eval_in(act, e)?.as_i(),
                    None => 1,
                };
                if stepv == 0 {
                    return Err(OracleError::Runtime("zero loop step".into()));
                }
                if doacross.is_some() && !in_region {
                    // Parallel region: members run on clones of the
                    // scalar environment (arrays are shared), and the
                    // clones are discarded at the join.
                    let saved = act.scalars.clone();
                    self.run_serial(unit, &var, lbv, ubv, stepv, body, act, true, depth)?;
                    act.scalars = saved;
                    let niters = if stepv > 0 {
                        (ubv - lbv + stepv).max(0) / stepv
                    } else {
                        (lbv - ubv - stepv).max(0) / -stepv
                    };
                    act.set_scalar(&var, Value::I(lbv + niters * stepv))
                } else {
                    self.run_serial(unit, &var, lbv, ubv, stepv, body, act, in_region, depth)
                }
            }
            AStmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.eval_in(act, cond)?;
                if c.is_true() {
                    self.exec_block(unit, then_body, act, in_region, depth)
                } else {
                    self.exec_block(unit, else_body, act, in_region, depth)
                }
            }
            AStmt::Call { name, args, .. } => self.exec_call(name, args, act, depth),
            // Placement directives: semantically transparent.
            AStmt::Redistribute { .. } | AStmt::ResizeTeam { .. } | AStmt::Barrier { .. } => Ok(()),
        }
    }

    /// The interpreter's `run_chunk`: the variable is set before each
    /// iteration and therefore holds the last *executed* value on exit.
    #[allow(clippy::too_many_arguments)] // loop header + env, like the interp
    fn run_serial(
        &mut self,
        unit: &SourceUnit,
        var: &str,
        lb: i64,
        ub: i64,
        step: i64,
        body: &[AStmt],
        act: &mut Act,
        in_region: bool,
        depth: u32,
    ) -> OResult<()> {
        let mut i = lb;
        while (step > 0 && i <= ub) || (step < 0 && i >= ub) {
            act.set_scalar(var, Value::I(i))?;
            self.exec_block(unit, body, act, in_region, depth)?;
            i += step;
        }
        Ok(())
    }

    fn exec_call(&mut self, name: &str, args: &[AExpr], act: &mut Act, depth: u32) -> OResult<()> {
        if depth > 64 {
            return Err(OracleError::Runtime("call depth limit".into()));
        }
        let callee = self
            .subs
            .get(&name.to_lowercase())
            .ok_or_else(|| OracleError::Unsupported(format!("unknown subroutine `{name}`")))?
            .clone();
        if callee.params.len() != args.len() {
            return Err(OracleError::Runtime(format!(
                "`{name}` expects {} arguments, got {}",
                callee.params.len(),
                args.len()
            )));
        }
        let mut bound = Vec::new();
        for (param, arg) in callee.params.iter().zip(args) {
            let pname = param.to_lowercase();
            let formal_is_array = callee
                .decls
                .iter()
                .any(|d| d.name.to_lowercase() == pname && !d.dims.is_empty());
            if formal_is_array {
                // Whole-array aliasing; element-pass (a view at an interior
                // address) is outside the oracle's dialect.
                match arg {
                    AExpr::Name(n) if act.arrays.contains_key(&n.to_lowercase()) => {
                        bound.push((
                            pname,
                            Binding::Array(Rc::clone(&act.arrays[&n.to_lowercase()])),
                        ));
                    }
                    _ => {
                        return Err(OracleError::Unsupported(format!(
                            "non-whole-array actual for formal `{pname}` of `{name}`"
                        )))
                    }
                }
            } else {
                // Copy-in only; the interpreter does not copy back.
                let v = self.eval_in(act, arg)?;
                bound.push((pname, Binding::Scalar(v)));
            }
        }
        let mut callee_act = self.activation(&callee, &bound)?;
        self.exec_block(&callee, &callee.body, &mut callee_act, false, depth + 1)
    }

    // -----------------------------------------------------------------
    // Expressions (mirrors `Interp::eval` / `eval_binop` /
    // `eval_intrinsic` minus the cycle accounting).
    // -----------------------------------------------------------------

    fn eval_in(&self, act: &Act, e: &AExpr) -> OResult<Value> {
        match e {
            AExpr::Int(v) => Ok(Value::I(*v)),
            AExpr::Real(v) => Ok(Value::F(*v)),
            AExpr::Name(n) => act
                .scalars
                .get(&n.to_lowercase())
                .copied()
                .ok_or_else(|| OracleError::Unsupported(format!("unknown name `{n}`"))),
            AExpr::Index(n, args) => {
                let key = n.to_lowercase();
                if let Some(arr) = act.arrays.get(&key) {
                    let idx: Vec<i64> = args
                        .iter()
                        .map(|e| self.eval_in(act, e).map(|v| v.as_i()))
                        .collect::<OResult<_>>()?;
                    let arr = arr.borrow();
                    let lin = arr.linear(&idx)?;
                    Ok(arr.data[lin])
                } else {
                    let vals: Vec<Value> = args
                        .iter()
                        .map(|e| self.eval_in(act, e))
                        .collect::<OResult<_>>()?;
                    self.eval_intrinsic(&key, &vals)
                }
            }
            AExpr::Un(op, a) => {
                let v = self.eval_in(act, a)?;
                Ok(match op {
                    AUnOp::Neg => match v {
                        Value::I(i) => Value::I(-i),
                        Value::F(f) => Value::F(-f),
                    },
                    AUnOp::Not => Value::I(i64::from(!v.is_true())),
                })
            }
            AExpr::Bin(op, a, b) => {
                let a = self.eval_in(act, a)?;
                let b = self.eval_in(act, b)?;
                self.eval_binop(*op, a, b)
            }
        }
    }

    fn eval_binop(&self, op: ABinOp, a: Value, b: Value) -> OResult<Value> {
        let promote = a.promotes(b);
        Ok(match op {
            ABinOp::Add => {
                if promote {
                    Value::F(a.as_f() + b.as_f())
                } else {
                    Value::I(a.as_i() + b.as_i())
                }
            }
            ABinOp::Sub => {
                if promote {
                    Value::F(a.as_f() - b.as_f())
                } else {
                    Value::I(a.as_i() - b.as_i())
                }
            }
            ABinOp::Mul => {
                if promote {
                    Value::F(a.as_f() * b.as_f())
                } else {
                    Value::I(a.as_i() * b.as_i())
                }
            }
            ABinOp::Div => {
                if promote {
                    Value::F(a.as_f() / b.as_f())
                } else if b.as_i() == 0 {
                    return Err(OracleError::Runtime("integer division by zero".into()));
                } else {
                    Value::I(a.as_i() / b.as_i())
                }
            }
            ABinOp::Pow => {
                if promote || b.as_i() < 0 {
                    Value::F(a.as_f().powf(b.as_f()))
                } else {
                    Value::I(a.as_i().pow(b.as_i().min(63) as u32))
                }
            }
            ABinOp::Lt => Value::I(i64::from(a.as_f() < b.as_f())),
            ABinOp::Le => Value::I(i64::from(a.as_f() <= b.as_f())),
            ABinOp::Gt => Value::I(i64::from(a.as_f() > b.as_f())),
            ABinOp::Ge => Value::I(i64::from(a.as_f() >= b.as_f())),
            ABinOp::Eq => Value::I(i64::from(a.as_f() == b.as_f())),
            ABinOp::Ne => Value::I(i64::from(a.as_f() != b.as_f())),
            ABinOp::And => Value::I(i64::from(a.is_true() && b.is_true())),
            ABinOp::Or => Value::I(i64::from(a.is_true() || b.is_true())),
        })
    }

    fn eval_intrinsic(&self, name: &str, vals: &[Value]) -> OResult<Value> {
        Ok(match name {
            "max" => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MIN, f64::max))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).max().unwrap_or(0))
                }
            }
            "min" => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MAX, f64::min))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).min().unwrap_or(0))
                }
            }
            "mod" => {
                let b = vals[1].as_i();
                if b == 0 {
                    return Err(OracleError::Runtime("mod by zero".into()));
                }
                Value::I(vals[0].as_i().rem_euclid(b))
            }
            "abs" => match vals[0] {
                Value::I(v) => Value::I(v.abs()),
                Value::F(v) => Value::F(v.abs()),
            },
            "sqrt" => Value::F(vals[0].as_f().sqrt()),
            "dble" => Value::F(vals[0].as_f()),
            "int" => Value::I(vals[0].as_i()),
            // Layout/team queries are exactly what a layout-oblivious
            // oracle must not answer; the generator never emits them.
            "numthreads" | "blocksize" | "distnprocs" => {
                return Err(OracleError::Unsupported(format!(
                    "layout-dependent intrinsic `{name}`"
                )))
            }
            other => {
                return Err(OracleError::Unsupported(format!(
                    "unknown array or intrinsic `{other}`"
                )))
            }
        })
    }
}

enum Binding {
    Scalar(Value),
    Array(ArrRef),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_one(src: &str, capture: &str) -> Vec<f64> {
        let sources = vec![("main.f".to_string(), src.to_string())];
        evaluate(&sources, &[capture.to_string()]).expect("oracle ok")[0].clone()
    }

    #[test]
    fn serial_identity_loop() {
        let got = eval_one(
            "      program main\n      integer i\n      real*8 a(4)\n      do i = 1, 4\n        a(i) = dble(i) * 2.0\n      enddo\n      end\n",
            "a",
        );
        assert_eq!(got, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn doacross_matches_serial_and_int_bits() {
        let got = eval_one(
            "      program main\n      integer i\n      integer a(3)\n\
c$doacross local(i)\n      do i = 1, 3\n        a(i) = i + 10\n      enddo\n      end\n",
            "a",
        );
        let want: Vec<f64> = (11..=13).map(|v: i64| f64::from_bits(v as u64)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn column_major_order() {
        let got = eval_one(
            "      program main\n      integer i, j\n      real*8 a(2, 2)\n      do i = 1, 2\n        do j = 1, 2\n          a(i, j) = dble(i) + 10.0 * dble(j)\n        enddo\n      enddo\n      end\n",
            "a",
        );
        // Linear order: (1,1), (2,1), (1,2), (2,2).
        assert_eq!(got, vec![11.0, 12.0, 21.0, 22.0]);
    }

    #[test]
    fn call_aliases_whole_array() {
        let sources = vec![
            (
                "main.f".to_string(),
                "      program main\n      integer i\n      real*8 a(4)\n      do i = 1, 4\n        a(i) = 1.0\n      enddo\n      call bump(a)\n      end\n"
                    .to_string(),
            ),
            (
                "subs.f".to_string(),
                "      subroutine bump(x)\n      integer i\n      real*8 x(4)\n      do i = 1, 4\n        x(i) = x(i) + 0.5\n      enddo\n      end\n"
                    .to_string(),
            ),
        ];
        let got = evaluate(&sources, &["a".to_string()]).expect("oracle ok");
        assert_eq!(got[0], vec![1.5, 1.5, 1.5, 1.5]);
    }

    #[test]
    fn unknown_capture_is_empty() {
        let got = eval_one(
            "      program main\n      real*8 s\n      s = 1.0\n      end\n",
            "zz",
        );
        assert!(got.is_empty());
    }
}
