//! Differential conformance harness for the data-distribution simulator.
//!
//! The paper's central claim — distribution directives change
//! *placement, not semantics* (§3; runtime argument checking in §5) —
//! is a property every optimization PR can silently break. This crate
//! turns it into an executable oracle:
//!
//! * [`gen`] — a seeded generator that emits valid Fortran-with-
//!   directives programs (1–3D arrays, `c$distribute` BLOCK/CYCLIC,
//!   `c$distribute_reshape`, mid-program `c$redistribute`, `c$doacross`
//!   with `affinity`/`nest`/`local`/`schedtype` clauses, cross-file
//!   calls that exercise shadow/prelink cloning);
//! * [`oracle`] — a layout-oblivious reference evaluator that computes
//!   expected final array contents directly from the AST;
//! * [`diff`] — a runner that compiles each program once per
//!   optimization variant and executes it across P ∈ {1, 2, 4, 8} ×
//!   serial-team × checks × profile, asserting bit-identical captures,
//!   run-to-run determinism, and machine counter balance;
//! * [`shrink`] — a greedy minimizer that turns any diverging seed into
//!   a paste-able few-line reproducer.
//!
//! The `dsmfuzz` binary drives all of this; see `docs/TESTING.md`.

pub mod diff;
pub mod gen;
pub mod oracle;
pub mod shrink;
pub mod spec;

pub use diff::{check_engine_diff, check_redist_diff, check_sources, CheckStats, Divergence, Matrix};
pub use gen::{generate, generate_redist, generate_with, GenOptions};
pub use shrink::shrink;
pub use spec::Spec;

/// Run one seed through a matrix: generate, render, check.
pub fn check_seed(seed: u64, matrix: &Matrix) -> Result<CheckStats, Box<Divergence>> {
    let spec = generate(seed);
    let sources = spec.render();
    check_sources(&sources, &spec.capture_names(), matrix)
}

/// Run one redistribution-heavy seed through the scheduled-vs-naive
/// mover differential: generate a program with mid-phase
/// `c$redistribute` / `c$resize_team` directives, render it, and demand
/// both movers produce bit-identical data and placement on every cell.
pub fn check_redist_seed(seed: u64, matrix: &Matrix) -> Result<CheckStats, Box<Divergence>> {
    let spec = generate_redist(seed);
    let sources = spec.render();
    check_redist_diff(&sources, &spec.capture_names(), matrix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_few_seeds_conform_on_the_quick_matrix() {
        let matrix = Matrix::quick();
        for seed in 0..6u64 {
            if let Err(d) = check_seed(seed, &matrix) {
                let spec = generate(seed);
                let src = spec
                    .render()
                    .into_iter()
                    .map(|(n, t)| format!("! {n}\n{t}"))
                    .collect::<String>();
                panic!("seed {seed} diverged: {d}\n{src}");
            }
        }
    }
}
