//! End-to-end tests for the `dsmfuzz` binary: a clean smoke run over the
//! quick matrix (which since the reactive-migration work also samples the
//! migration-policy axis: every generated program runs under `off` and
//! `threshold:4`), and a fault-injection run proving the harness actually
//! detects, shrinks, and reports a planted interpreter bug.

use std::process::Command;

fn dsmfuzz() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dsmfuzz"))
}

#[test]
fn clean_smoke_run_exits_zero() {
    let out = dsmfuzz()
        .args(["--seed", "1", "--count", "25", "--quick"])
        .env_remove("DSM_INJECT_CHUNK_BUG")
        .output()
        .expect("spawn dsmfuzz");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "clean run diverged:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        stdout.contains("zero divergences"),
        "missing summary line: {stdout}"
    );
}

/// With `DSM_INJECT_CHUNK_BUG=1` the runtime scheduler drops the last
/// iteration of every non-final chunk (an off-by-one in the static
/// partitioner). The fuzzer must notice the divergence against the
/// oracle, exit non-zero, shrink the failing program to a tiny
/// reproducer, and write replay artifacts.
#[test]
fn injected_chunk_bug_is_caught_and_shrunk() {
    let outdir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("fuzz-inject");
    let _ = std::fs::remove_dir_all(&outdir);
    let out = dsmfuzz()
        .args(["--seed", "1", "--count", "30", "--quick"])
        .arg("--out")
        .arg(&outdir)
        .env("DSM_INJECT_CHUNK_BUG", "1")
        .output()
        .expect("spawn dsmfuzz");
    // The divergence report and shrink trace go to stderr.
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(1),
        "expected divergence exit code 1:\n{stderr}"
    );
    assert!(stderr.contains("capture-mismatch"), "wrong kind:\n{stderr}");

    // The shrinker must reach a reproducer of at most 15 source lines.
    let lines: usize = stderr
        .lines()
        .find_map(|l| {
            let rest = l.strip_prefix("--- minimal reproducer (")?;
            rest.split_whitespace().next()?.parse().ok()
        })
        .expect("minimal reproducer header in output");
    assert!(
        lines <= 15,
        "reproducer too large ({lines} lines):\n{stderr}"
    );

    // Replay artifacts land in --out: full program, shrunk program,
    // divergence report (seed number may vary with the generator).
    let names: Vec<String> = std::fs::read_dir(&outdir)
        .expect("out dir created")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for pat in ["failing-", "-min.f", "divergence-"] {
        assert!(
            names.iter().any(|n| n.contains(pat)),
            "missing artifact matching {pat:?}: {names:?}"
        );
    }
}
