//! The redistribution axis of the conformance matrix: ≥200 generated
//! programs with mid-phase `c$redistribute` (including cyclic(k) ↔
//! cyclic(k′) conversions) and `c$resize_team` points, every cell run
//! under BOTH page movers. The scheduled mover must be data-identical
//! to the naive walker — bit-identical captures against the oracle,
//! identical final page placement, identical memory counters (cycle
//! clocks aside) — and must never move more pages than the naive
//! full-remap does.

use dsm_conformance::{check_redist_seed, generate_redist, spec::Phase, Matrix};

/// Every one of 200 redistribution-heavy programs conforms on the full
/// matrix under both movers (scheduled vs naive differential per cell).
#[test]
fn two_hundred_redist_programs_conform_under_both_movers() {
    let matrix = Matrix::full();
    let mut runs = 0;
    for seed in 1..=200u64 {
        match check_redist_seed(seed, &matrix) {
            Ok(stats) => runs += stats.runs,
            Err(d) => {
                let spec = generate_redist(seed);
                let src = spec
                    .render()
                    .into_iter()
                    .map(|(n, t)| format!("! {n}\n{t}"))
                    .collect::<String>();
                panic!("redist seed {seed} diverged: {d}\n{src}");
            }
        }
    }
    // 200 programs × (opt variants × procs × engines × 2 movers).
    assert!(runs >= 200 * 2, "suspiciously few runs: {runs}");
}

/// The redistribution generator holds its contract: every program has at
/// least one `c$redistribute` phase, a `c$resize_team` point, and no
/// reshaped arrays (which would make both directives illegal).
#[test]
fn redist_generator_always_emits_redistribution_phases() {
    for seed in 0..100u64 {
        let spec = generate_redist(seed);
        let n_redist = spec
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::Redistribute { .. }))
            .count();
        let n_resize = spec
            .phases
            .iter()
            .filter(|p| matches!(p, Phase::ResizeTeam { .. }))
            .count();
        assert!(n_redist >= 1, "seed {seed}: no redistribute phase");
        assert!(n_resize >= 1, "seed {seed}: no resize point");
        assert!(
            spec.arrays
                .iter()
                .all(|a| !matches!(a.dist, dsm_conformance::spec::DistSpec::Reshaped(_))),
            "seed {seed}: reshaped array in a redistribution program"
        );
    }
}

/// Regression: a proc-tiled affinity loop compiled against the declared
/// distribution must re-resolve its grid axis at run time. Redistributing
/// `a(*, block)` to `a(cyclic, block)` moves the tiled dimension from
/// grid axis 0 to axis 1; before the fix both team members read their
/// coordinate off axis 0, duplicated the first tile and dropped the last
/// (b = [1, 1, 0, 0] at P = 2).
#[test]
fn proctile_grid_axis_follows_redistribution() {
    let src = "      program main
      integer i
      real*8 a(4, 4)
      real*8 b(4)
c$distribute a(*, block)
c$redistribute a(cyclic, block)
c$doacross local(i) affinity(i) = data(a(1, i))
      do i = 1, 4
        b(i) = 1.0
      enddo
      end
";
    let sources = vec![("main.f".to_string(), src.to_string())];
    let captures = vec!["b".to_string()];
    let mut matrix = Matrix::quick();
    matrix.procs = vec![1, 2, 4, 8];
    dsm_conformance::check_sources(&sources, &captures, &matrix)
        .unwrap_or_else(|d| panic!("proc-tile axis regression: {d}"));
    dsm_conformance::check_redist_diff(&sources, &captures, &matrix)
        .unwrap_or_else(|d| panic!("proc-tile axis regression (movers): {d}"));
}

/// Same regression with a `c$resize_team` in front: the resize re-chunks
/// for the new team and the subsequent redistribute must still tile on
/// the right axis.
#[test]
fn proctile_grid_axis_survives_resize_then_redistribute() {
    let src = "      program main
      integer i
      real*8 a(4, 4)
      real*8 b(4)
c$distribute a(*, block)
c$resize_team(6)
c$redistribute a(cyclic, block)
c$doacross local(i) affinity(i) = data(a(1, i))
      do i = 1, 4
        b(i) = 1.0
      enddo
      end
";
    let sources = vec![("main.f".to_string(), src.to_string())];
    let captures = vec!["b".to_string()];
    let mut matrix = Matrix::quick();
    matrix.procs = vec![1, 2, 4];
    dsm_conformance::check_redist_diff(&sources, &captures, &matrix)
        .unwrap_or_else(|d| panic!("resize + redistribute regression: {d}"));
}
