//! Lowering of the checked AST to `dsm-ir`.
//!
//! Name resolution uses the frontend's per-unit tables; reshaped array
//! references are marked [`AddrMode::ReshapedRaw`] so the optimizer can
//! account for (and later remove) the Table-1 addressing overhead.
//! `doacross` loops with an `affinity` clause lower to
//! [`SchedType::RuntimeAffinity`] — the Figure-2 compile-time schedule is
//! produced later by the [`crate::tile`] pass.

use dsm_frontend::ast::*;
use dsm_frontend::error::{CompileError, ErrorKind, Span};
use dsm_frontend::sema::{Analysis, REExtent, UnitInfo, INTRINSICS};
use dsm_ir::{
    ActualArg, AddrMode, AffIdx, Affinity, ArrayDecl, ArrayId, BinOp, CommonBlockDecl, DistKind,
    Distribution, Doacross, Expr, Extent, Intrinsic, LoopStmt, Param, Program, ScalarDecl,
    ScalarTy, SchedType, Stmt, Storage, Subroutine, UnOp, VarId,
};

/// Lower a whole analysis to an IR program.
///
/// # Errors
///
/// Returns diagnostics for constructs that passed parsing but cannot be
/// lowered (malformed affinity expressions, whole-array actuals in
/// expression position, …).
pub fn lower_program(analysis: &Analysis) -> Result<Program, Vec<CompileError>> {
    let mut errors = Vec::new();
    let mut subs = Vec::new();
    for info in &analysis.units {
        let file_name = analysis
            .files
            .get(info.unit.file)
            .cloned()
            .unwrap_or_default();
        subs.push(lower_unit(info, &file_name, &mut errors));
    }
    // Canonical common blocks: first declaration wins (the pre-linker
    // verifies consistency separately).
    let mut commons: Vec<CommonBlockDecl> = Vec::new();
    for info in &analysis.units {
        for (block, members) in &info.unit.commons {
            if commons.iter().any(|c| c.name == *block) {
                continue;
            }
            let mut decls = Vec::new();
            for (mi, m) in members.iter().enumerate() {
                if let Some(ai) = info.array_index(m) {
                    let mut d = lower_array_decl(&info.arrays[ai], info);
                    d.storage = Storage::Common {
                        block: block.clone(),
                        member: mi,
                    };
                    decls.push(d);
                }
            }
            commons.push(CommonBlockDecl {
                name: block.clone(),
                members: decls,
            });
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }
    let program = Program {
        subs,
        main: analysis.main,
        commons,
        files: analysis.files.clone(),
    };
    if let Err(e) = dsm_ir::validate_program(&program) {
        return Err(vec![CompileError::new(
            Span::default(),
            ErrorKind::Sema,
            "<lowering>",
            format!("internal: lowered IR invalid: {e}"),
        )]);
    }
    Ok(program)
}

fn lower_array_decl(a: &dsm_frontend::sema::RArray, info: &UnitInfo) -> ArrayDecl {
    let dims = a
        .dims
        .iter()
        .map(|d| match d {
            REExtent::Const(v) => Extent::Const(*v),
            REExtent::Scalar(n) => Extent::Var(VarId(
                info.scalar_index(n).expect("sema checked extent scalar"),
            )),
        })
        .collect();
    let storage = if let Some((block, member)) = &a.common {
        Storage::Common {
            block: block.clone(),
            member: *member,
        }
    } else if let Some(pos) = a.formal_pos {
        Storage::Formal { position: pos }
    } else {
        Storage::Local
    };
    ArrayDecl {
        name: a.name.clone(),
        ty: match a.ty {
            ATy::Int => ScalarTy::Int,
            ATy::Real => ScalarTy::Real,
        },
        dims,
        storage,
        dist_kind: a.dist_kind,
        dist: a.dist.clone(),
        equivalenced_with: a
            .equiv
            .iter()
            .filter_map(|n| info.array_index(n).map(ArrayId))
            .collect(),
    }
}

struct LowerCtx<'a> {
    info: &'a UnitInfo,
    file: &'a str,
    errors: &'a mut Vec<CompileError>,
}

impl LowerCtx<'_> {
    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.errors
            .push(CompileError::new(span, ErrorKind::Sema, self.file, msg));
    }

    fn scalar(&self, name: &str) -> Option<VarId> {
        self.info.scalar_index(name).map(VarId)
    }

    fn array(&self, name: &str) -> Option<ArrayId> {
        self.info.array_index(name).map(ArrayId)
    }

    /// Address mode of a fresh reference to `array`.
    fn mode_of(&self, array: ArrayId) -> AddrMode {
        if self.info.arrays[array.0].dist_kind == DistKind::Reshaped {
            AddrMode::ReshapedRaw
        } else {
            AddrMode::Direct
        }
    }

    fn expr(&mut self, span: Span, e: &AExpr) -> Expr {
        match e {
            AExpr::Int(v) => Expr::IConst(*v),
            AExpr::Real(v) => Expr::FConst(*v),
            AExpr::Name(n) => {
                if let Some(c) = self.info.params_const.get(n) {
                    Expr::IConst(*c)
                } else if let Some(v) = self.scalar(n) {
                    Expr::Var(v)
                } else {
                    self.err(span, format!("cannot use array `{n}` as a scalar value"));
                    Expr::IConst(0)
                }
            }
            AExpr::Index(n, args) => {
                if n == "blocksize" || n == "distnprocs" {
                    // Handled before argument lowering: the first argument
                    // is an array *name*, not a value.
                    return self.dist_intrinsic(span, n, args);
                }
                let largs: Vec<Expr> = args.iter().map(|a| self.expr(span, a)).collect();
                if n == "numthreads" {
                    // SGI runtime intrinsic: the executing team size.
                    Expr::Rt(dsm_ir::RtExpr::NumThreads)
                } else if INTRINSICS.contains(&n.as_str()) {
                    let i = Intrinsic::from_name(n).expect("known intrinsic");
                    Expr::Call(i, largs)
                } else if let Some(a) = self.array(n) {
                    Expr::Load {
                        array: a,
                        indices: largs,
                        mode: self.mode_of(a),
                    }
                } else {
                    self.err(span, format!("unknown array or intrinsic `{n}`"));
                    Expr::IConst(0)
                }
            }
            AExpr::Un(AUnOp::Neg, x) => Expr::Unary(UnOp::Neg, Box::new(self.expr(span, x))),
            AExpr::Un(AUnOp::Not, x) => Expr::Unary(UnOp::Not, Box::new(self.expr(span, x))),
            AExpr::Bin(op, a, b) => {
                let op = match op {
                    ABinOp::Add => BinOp::Add,
                    ABinOp::Sub => BinOp::Sub,
                    ABinOp::Mul => BinOp::Mul,
                    ABinOp::Div => BinOp::Div,
                    ABinOp::Pow => BinOp::Pow,
                    ABinOp::Lt => BinOp::Lt,
                    ABinOp::Le => BinOp::Le,
                    ABinOp::Gt => BinOp::Gt,
                    ABinOp::Ge => BinOp::Ge,
                    ABinOp::Eq => BinOp::Eq,
                    ABinOp::Ne => BinOp::Ne,
                    ABinOp::And => BinOp::And,
                    ABinOp::Or => BinOp::Or,
                };
                Expr::Binary(
                    op,
                    Box::new(self.expr(span, a)),
                    Box::new(self.expr(span, b)),
                )
            }
        }
    }

    /// Lower `blocksize(a, d)` / `distnprocs(a, d)` — the first argument
    /// is an array name, the second a literal 1-based dimension.
    fn dist_intrinsic(&mut self, span: Span, n: &str, args: &[AExpr]) -> Expr {
        let AExpr::Name(aname) = &args[0] else {
            self.err(span, format!("`{n}` needs an array name"));
            return Expr::IConst(0);
        };
        let Some(array) = self.array(aname) else {
            self.err(span, format!("`{n}`: `{aname}` is not an array"));
            return Expr::IConst(0);
        };
        let dim = (dsm_frontend::sema::fold_const(&args[1], &self.info.params_const).unwrap_or(1)
            - 1)
        .max(0) as usize;
        if n == "blocksize" {
            Expr::Rt(dsm_ir::RtExpr::BlockSize { array, dim })
        } else {
            Expr::Rt(dsm_ir::RtExpr::NProcs { array, dim })
        }
    }

    fn stmts(&mut self, body: &[AStmt]) -> Vec<Stmt> {
        body.iter().filter_map(|s| self.stmt(s)).collect()
    }

    fn stmt(&mut self, st: &AStmt) -> Option<Stmt> {
        match st {
            AStmt::Assign {
                span,
                lhs,
                lhs_indices,
                rhs,
            } => {
                let value = self.expr(*span, rhs);
                if lhs_indices.is_empty() {
                    let var = self.scalar(lhs)?;
                    Some(Stmt::SAssign { var, value })
                } else {
                    let array = self.array(lhs)?;
                    let indices = lhs_indices.iter().map(|e| self.expr(*span, e)).collect();
                    Some(Stmt::Assign {
                        array,
                        indices,
                        value,
                        mode: self.mode_of(array),
                    })
                }
            }
            AStmt::Do {
                span,
                var,
                lb,
                ub,
                step,
                body,
                doacross,
            } => {
                let var = self.scalar(var)?;
                let lb = self.expr(*span, lb);
                let ub = self.expr(*span, ub);
                let step = step
                    .as_ref()
                    .map_or(Expr::IConst(1), |s| self.expr(*span, s));
                let body = self.stmts(body);
                let par = doacross.as_ref().map(|d| self.doacross(*span, var, d));
                Some(Stmt::Loop(Box::new(LoopStmt {
                    var,
                    lb,
                    ub,
                    step,
                    body,
                    par,
                })))
            }
            AStmt::If {
                span,
                cond,
                then_body,
                else_body,
            } => Some(Stmt::If {
                cond: self.expr(*span, cond),
                then_body: self.stmts(then_body),
                else_body: self.stmts(else_body),
            }),
            AStmt::Call { span, name, args } => {
                let args = args
                    .iter()
                    .map(|a| match a {
                        AExpr::Name(n) if self.array(n).is_some() => {
                            ActualArg::Array(self.array(n).expect("checked"))
                        }
                        AExpr::Index(n, idx)
                            if self.array(n).is_some() && !INTRINSICS.contains(&n.as_str()) =>
                        {
                            let a = self.array(n).expect("checked");
                            let idx = idx.iter().map(|e| self.expr(*span, e)).collect();
                            ActualArg::ArrayElem(a, idx)
                        }
                        e => ActualArg::Scalar(self.expr(*span, e)),
                    })
                    .collect();
                Some(Stmt::Call {
                    name: name.clone(),
                    args,
                })
            }
            AStmt::Barrier { .. } => Some(Stmt::Barrier),
            AStmt::Redistribute { span, array, dists } => {
                let a = self.array(array)?;
                let mut dims = Vec::new();
                for item in dists {
                    dims.push(match item {
                        DistItem::Star => dsm_ir::Dist::Star,
                        DistItem::Block => dsm_ir::Dist::Block,
                        DistItem::Cyclic(None) => dsm_ir::Dist::Cyclic(1),
                        DistItem::Cyclic(Some(e)) => {
                            match dsm_frontend::sema::fold_const(e, &self.info.params_const) {
                                Some(k) if k > 0 => dsm_ir::Dist::Cyclic(k as u64),
                                _ => {
                                    self.err(*span, "cyclic chunk must be a positive constant");
                                    dsm_ir::Dist::Cyclic(1)
                                }
                            }
                        }
                    });
                }
                Some(Stmt::Redistribute {
                    array: a,
                    dist: Distribution::new(dims),
                })
            }
            AStmt::ResizeTeam { nprocs, .. } => Some(Stmt::ResizeTeam {
                nprocs: *nprocs as u64,
            }),
        }
    }

    fn doacross(&mut self, span: Span, loop_var: VarId, d: &DoacrossDir) -> Doacross {
        let mut nest_vars: Vec<VarId> = d.nest.iter().filter_map(|n| self.scalar(n)).collect();
        if nest_vars.is_empty() {
            nest_vars.push(loop_var);
        } else if nest_vars[0] != loop_var {
            self.err(
                span,
                "first nest(...) variable must be the annotated loop's variable",
            );
        }
        let locals = d.locals.iter().filter_map(|n| self.scalar(n)).collect();
        let shared = d.shareds.iter().filter_map(|n| self.scalar(n)).collect();
        let affinity = d.affinity.as_ref().and_then(|aff| {
            let array = self.array(&aff.array)?;
            let decl = &self.info.arrays[array.0];
            // A formal may legitimately have no distribution yet — the
            // pre-linker propagates reshaped distributions into clones
            // (Section 5); the clause only errs on non-formal arrays.
            if decl.dist_kind == DistKind::None && decl.formal_pos.is_none() {
                self.err(
                    span,
                    format!("affinity names `{}` which has no distribution", aff.array),
                );
                return None;
            }
            let loop_var_ids: Vec<VarId> = aff
                .loop_vars
                .iter()
                .filter_map(|n| self.scalar(n))
                .collect();
            let indices = aff
                .indices
                .iter()
                .map(|e| {
                    let le = self.expr(span, e);
                    match le.as_affine() {
                        Some((Some(v), s, c)) if loop_var_ids.contains(&v) => {
                            if s < 0 {
                                // The paper requires a non-negative literal p
                                // in affinity(i) = data(A(p*i + q)).
                                self.err(span, "affinity index multiplier must be non-negative");
                                AffIdx::Other(le)
                            } else {
                                AffIdx::Loop {
                                    var: v,
                                    scale: s,
                                    offset: c,
                                }
                            }
                        }
                        _ => AffIdx::Other(le),
                    }
                })
                .collect();
            Some(Affinity { array, indices })
        });
        let sched = match (&affinity, &d.sched) {
            (Some(_), _) => SchedType::RuntimeAffinity,
            (None, Some(SchedSpec::Simple)) | (None, None) => SchedType::Simple,
            (None, Some(SchedSpec::Interleave(k))) => SchedType::Interleave((*k).max(1) as u64),
            (None, Some(SchedSpec::Dynamic(k))) => SchedType::Dynamic((*k).max(1) as u64),
        };
        Doacross {
            nest_vars,
            locals,
            shared,
            sched,
            affinity,
        }
    }
}

fn lower_unit(info: &UnitInfo, file: &str, errors: &mut Vec<CompileError>) -> Subroutine {
    let scalars = info
        .scalars
        .iter()
        .map(|(n, t)| ScalarDecl {
            name: n.clone(),
            ty: match t {
                ATy::Int => ScalarTy::Int,
                ATy::Real => ScalarTy::Real,
            },
        })
        .collect();
    let arrays: Vec<ArrayDecl> = info
        .arrays
        .iter()
        .map(|a| lower_array_decl(a, info))
        .collect();
    let params = info
        .unit
        .params
        .iter()
        .map(|p| {
            if let Some(ai) = info.array_index(p) {
                Param::Array(ArrayId(ai))
            } else {
                Param::Scalar(VarId(info.scalar_index(p).expect("sema checked formals")))
            }
        })
        .collect();
    let mut sub = Subroutine {
        name: info.unit.name.clone(),
        params,
        scalars,
        arrays,
        body: Vec::new(),
        source_file: info.unit.file,
    };
    let mut ctx = LowerCtx { info, file, errors };
    sub.body = ctx.stmts(&info.unit.body);
    sub
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_frontend::compile_sources;

    fn lower(src: &str) -> Program {
        let a = compile_sources(&[("t.f", src)]).expect("frontend ok");
        lower_program(&a).expect("lowering ok")
    }

    #[test]
    fn simple_loop_lowers() {
        let p = lower(
            "      program main\n      integer i\n      real*8 a(10)\n      do i = 1, 10\n        a(i) = 2*i\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        let Stmt::Loop(l) = &main.body[0] else {
            panic!()
        };
        assert_eq!(l.step, Expr::IConst(1));
        let Stmt::Assign { mode, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(*mode, AddrMode::Direct);
    }

    #[test]
    fn reshaped_refs_marked_raw() {
        let p = lower(
            "      program main\n      integer i\n      real*8 a(10)\nc$distribute_reshape a(block)\n      do i = 1, 10\n        a(i) = a(i) + 1\n      enddo\n      end\n",
        );
        let Stmt::Loop(l) = &p.main_sub().body[0] else {
            panic!()
        };
        let Stmt::Assign { mode, value, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(*mode, AddrMode::ReshapedRaw);
        let mut saw = false;
        value.for_each_load(&mut |_, _, m| {
            assert_eq!(m, AddrMode::ReshapedRaw);
            saw = true;
        });
        assert!(saw);
    }

    #[test]
    fn parameter_constants_inline() {
        let p = lower(
            "      program main\n      integer n, i\n      parameter (n = 8)\n      real*8 a(n)\n      do i = 1, n\n        a(i) = 0.0\n      enddo\n      end\n",
        );
        let Stmt::Loop(l) = &p.main_sub().body[0] else {
            panic!()
        };
        assert_eq!(l.ub, Expr::IConst(8));
    }

    #[test]
    fn affinity_lowered_to_runtime_affinity() {
        let p = lower(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        let Stmt::Loop(l) = &p.main_sub().body[0] else {
            panic!()
        };
        let d = l.par.as_ref().unwrap();
        assert_eq!(d.sched, SchedType::RuntimeAffinity);
        let aff = d.affinity.as_ref().unwrap();
        assert_eq!(
            aff.indices[0],
            AffIdx::Loop {
                var: VarId(0),
                scale: 1,
                offset: 0
            }
        );
    }

    #[test]
    fn affinity_scaled_offset() {
        let p = lower(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute a(block)\nc$doacross local(i) affinity(i) = data(a(5*i+2))\n      do i = 1, 19\n        a(5*i+2) = 1.0\n      enddo\n      end\n",
        );
        let Stmt::Loop(l) = &p.main_sub().body[0] else {
            panic!()
        };
        let aff = l.par.as_ref().unwrap().affinity.as_ref().unwrap();
        assert_eq!(
            aff.indices[0],
            AffIdx::Loop {
                var: VarId(0),
                scale: 5,
                offset: 2
            }
        );
    }

    #[test]
    fn negative_affinity_scale_rejected() {
        let a = compile_sources(&[(
            "t.f",
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute a(block)\nc$doacross local(i) affinity(i) = data(a(10-i))\n      do i = 1, 9\n        a(10-i) = 1.0\n      enddo\n      end\n",
        )])
        .unwrap();
        let e = lower_program(&a).unwrap_err();
        assert!(e.iter().any(|d| d.msg.contains("non-negative")));
    }

    #[test]
    fn call_args_classified() {
        let p = lower(
            "      program main\n      real*8 a(10)\n      integer i\n      i = 2\n      call s(a, a(i), i+1)\n      end\n      subroutine s(x, y, n)\n      integer n\n      real*8 x(10), y(5)\n      end\n",
        );
        let Stmt::Call { args, .. } = &p.main_sub().body[1] else {
            panic!()
        };
        assert!(matches!(args[0], ActualArg::Array(_)));
        assert!(matches!(args[1], ActualArg::ArrayElem(_, _)));
        assert!(matches!(args[2], ActualArg::Scalar(_)));
    }

    #[test]
    fn nest_clause_resolves_vars() {
        let p = lower(
            "      program main\n      integer i, j\n      real*8 b(8, 8)\nc$distribute b(block, block)\nc$doacross nest(i, j) local(i, j)\n      do i = 1, 8\n        do j = 1, 8\n          b(j, i) = i + j\n        enddo\n      enddo\n      end\n",
        );
        let Stmt::Loop(l) = &p.main_sub().body[0] else {
            panic!()
        };
        let d = l.par.as_ref().unwrap();
        assert_eq!(d.nest_vars.len(), 2);
    }

    #[test]
    fn commons_collected() {
        let p = lower(
            "      program main\n      real*8 a(10)\n      common /blk/ a\nc$distribute_reshape a(block)\n      end\n",
        );
        assert_eq!(p.commons.len(), 1);
        assert_eq!(p.commons[0].members[0].dist_kind, DistKind::Reshaped);
    }

    #[test]
    fn redistribute_lowered() {
        let p = lower(
            "      program main\n      real*8 a(64)\nc$distribute a(block)\nc$redistribute a(cyclic(4))\n      end\n",
        );
        let Stmt::Redistribute { dist, .. } = &p.main_sub().body[0] else {
            panic!()
        };
        assert_eq!(dist.dims, vec![dsm_ir::Dist::Cyclic(4)]);
    }
}
