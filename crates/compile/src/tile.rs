//! Affinity scheduling, tiling and peeling (Figure 2 / Section 7.1).
//!
//! The pass rewrites three kinds of loops:
//!
//! 1. **doacross with `affinity`** — lowered into processor-tile loops
//!    ([`SchedType::ProcTile`]) whose data loops iterate over exactly one
//!    processor's portion, using the paper's Figure-2 bounds for `block`,
//!    `cyclic` and `cyclic(k)` distributions;
//! 2. **doacross without affinity** over reshaped arrays — tiled the same
//!    way using a reference array chosen by the paper's "fewest div/mod"
//!    heuristic;
//! 3. **serial loops** over reshaped arrays — tiled with a *serial*
//!    processor loop; legal for `block` distributions (iteration order is
//!    preserved), as the paper notes.
//!
//! For parallel nests (`nest(i,j)`), the processor-tile loops are placed
//! outermost (the Section 7.1.1 interchange, always legal for
//! doacross-nest).
//!
//! After restructuring, references whose distributed dimensions are
//! confined to a single portion are upgraded from
//! [`AddrMode::ReshapedRaw`] to [`AddrMode::ReshapedTiled`]; stencil
//! offsets are handled by **peeling** boundary iterations into separate
//! loops whose references keep the raw mode (the paper's
//! `A(i-1)+A(i)+A(i+1)` example).

use dsm_ir::{
    AddrMode, AffIdx, Affinity, ArrayId, Dist, DistKind, Doacross, Expr, Extent, LoopStmt,
    SchedType, Stmt, Subroutine, VarId,
};

/// Maximum boundary iterations peeled per side; stencils reaching further
/// keep raw addressing (heuristic).
const MAX_PEEL: i64 = 4;

/// Ceiling division of non-negative `a` by positive `b`.
fn ceil_div_i64(a: i64, b: i64) -> i64 {
    (a + b - 1) / b
}

/// Which portion boundary a peeled copy sits on: in the `Lo` copy the
/// loop variable is at the portion's low edge, so negative index offsets
/// escape the portion (and vice versa for `Hi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Lo,
    Hi,
}

/// Tiling-pass configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileConfig {
    /// Hoist processor-tile loops outermost in parallel nests
    /// (Section 7.1.1). Disable only for ablation.
    pub interchange: bool,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig { interchange: true }
    }
}

/// Processor-grid signature: two arrays whose distributed dimensions have
/// the same ordered formats and the same `onto` ratios factor the
/// processor count into the *same* grid, so their per-axis coordinates
/// are interchangeable at runtime.  This is the compile-time form of the
/// paper's "matches the first array in size and distribution" rule
/// (Section 7.1, third extension) — per dimension, not per whole array,
/// so `A(*, block)` and `B(block, *)` match on their single axis.
#[derive(Debug, Clone, PartialEq, Eq)]
struct GridSig {
    dists: Vec<Dist>,
    onto: Vec<u64>,
}

fn grid_sig(sub: &Subroutine, a: ArrayId) -> Option<GridSig> {
    let d = &sub.arrays[a.0];
    let dist = d.dist.as_ref()?;
    Some(GridSig {
        dists: dist
            .dims
            .iter()
            .copied()
            .filter(|x| x.is_distributed())
            .collect(),
        onto: dist
            .onto
            .as_ref()
            .map(|o| o.ratios.clone())
            .unwrap_or_default(),
    })
}

/// Grid-axis index of dimension `dim` of array `a` (its rank among the
/// distributed dimensions), if that dimension is distributed.
fn axis_of(sub: &Subroutine, a: ArrayId, dim: usize) -> Option<usize> {
    let dist = sub.arrays[a.0].dist.as_ref()?;
    if !dist.dims.get(dim)?.is_distributed() {
        return None;
    }
    Some(
        dist.dims
            .iter()
            .take(dim)
            .filter(|x| x.is_distributed())
            .count(),
    )
}

/// Whether a planned proc-tile nest names every axis of its processor
/// grid (the grid has one axis per distributed dimension in the
/// signature). Required for *parallel* emission: each team member owns
/// one coordinate per axis, so uncovered axes replicate work.
fn covers_grid(levels: &[TileLevel]) -> bool {
    let Some(first) = levels.first() else {
        return false;
    };
    let n_axes = first.sig.dists.len();
    (0..n_axes).all(|ax| levels.iter().any(|lv| lv.axis == ax))
}

/// One tiled loop level: data loop `var` walks grid axis `axis` (of any
/// array with grid signature `sig`, extent `extent` and format `kind` on
/// that dimension) via the affine index `scale*var + offset`. `array` and
/// `dim` name the scheduling array for the runtime-query expressions.
#[derive(Debug, Clone)]
struct TileLevel {
    sig: GridSig,
    axis: usize,
    extent: Extent,
    array: ArrayId,
    dim: usize,
    var: VarId,
    scale: i64,
    offset: i64,
    kind: Dist,
    peel_lo: i64,
    peel_hi: i64,
}

/// Run the pass over a subroutine.
pub fn run(sub: &mut Subroutine, cfg: &TileConfig) {
    let mut body = std::mem::take(&mut sub.body);
    body = tile_stmts(sub, body, cfg);
    sub.body = body;
}

fn tile_stmts(sub: &mut Subroutine, body: Vec<Stmt>, cfg: &TileConfig) -> Vec<Stmt> {
    let mut out = Vec::new();
    for st in body {
        match st {
            Stmt::Loop(l) => out.extend(tile_loop(sub, *l, cfg)),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => out.push(Stmt::If {
                cond,
                then_body: tile_stmts(sub, then_body, cfg),
                else_body: tile_stmts(sub, else_body, cfg),
            }),
            other => out.push(other),
        }
    }
    out
}

fn tile_loop(sub: &mut Subroutine, l: LoopStmt, cfg: &TileConfig) -> Vec<Stmt> {
    // Only unit-step loops are tiled.
    if l.step != Expr::IConst(1) {
        return vec![recurse(sub, l, cfg)];
    }
    match &l.par {
        Some(d) if matches!(d.sched, SchedType::ProcTile { .. }) => {
            vec![recurse(sub, l, cfg)]
        }
        Some(d) if d.affinity.is_some() => match plan_affinity_nest(sub, &l) {
            // A parallel proc-tile nest is only sound when its levels
            // cover every axis of the processor grid: the runtime gives
            // each team member its own coordinate per named axis, so
            // members that differ only on an uncovered axis would all
            // execute the same tile. Fall back to runtime affinity
            // scheduling otherwise.
            Some(plan) if covers_grid(&plan) => emit_nest(sub, l, plan, cfg, true),
            _ => vec![recurse(sub, l, cfg)],
        },
        _ => {
            // Serial loop or doacross without affinity: tile if the body
            // references a reshaped array through this loop variable.
            match plan_ref_based(sub, &l) {
                Some(level) => {
                    let parallel = l.par.is_some();
                    if parallel && !covers_grid(std::slice::from_ref(&level)) {
                        // Same soundness rule as the affinity case; a
                        // serial proc loop walks every tile itself, so
                        // only the parallel form needs full coverage.
                        return vec![recurse(sub, l, cfg)];
                    }
                    emit_nest(sub, l, vec![level], cfg, parallel)
                }
                None => {
                    // Loop interchange (Section 7.1.1): when only the
                    // *inner* loop of a serial nest walks a distributed
                    // dimension, tiling it in place would rebuild the
                    // processor tile once per outer iteration. When legal,
                    // hoist the processor-tile loop (and its bounds)
                    // outside the outer loop — the *data* loops keep their
                    // original order, exactly as the paper describes.
                    if cfg.interchange && l.par.is_none() {
                        if let Some(stmts) = hoist_inner_tile(sub, &l, cfg) {
                            return stmts;
                        }
                    }
                    vec![recurse(sub, l, cfg)]
                }
            }
        }
    }
}

fn recurse(sub: &mut Subroutine, mut l: LoopStmt, cfg: &TileConfig) -> Stmt {
    l.body = tile_stmts(sub, std::mem::take(&mut l.body), cfg);
    Stmt::Loop(Box::new(l))
}

/// Hoist the processor tile of a tileable *inner* loop outside an
/// untileable serial outer loop (Section 7.1.1: "so that the processor
/// tile loops are outermost and the actual data loops are innermost").
///
/// Legality is evident when: the nest is perfect, the bounds of each loop
/// are independent of the other's variable, the body consists of
/// assignments (and nested loops) only, and no array is both loaded and
/// stored in the nest — then no cross-iteration data flow exists and the
/// portion-major iteration order is valid.
fn hoist_inner_tile(sub: &mut Subroutine, outer: &LoopStmt, cfg: &TileConfig) -> Option<Vec<Stmt>> {
    let [Stmt::Loop(inner)] = outer.body.as_slice() else {
        return None;
    };
    if inner.par.is_some() || inner.step != Expr::IConst(1) {
        return None;
    }
    let level = plan_ref_based(sub, inner)?;
    // Bounds independence.
    for e in [&inner.lb, &inner.ub] {
        if e.uses_var(outer.var) {
            return None;
        }
    }
    for e in [&outer.lb, &outer.ub, &outer.step] {
        if e.uses_var(inner.var) {
            return None;
        }
    }
    // Body shape: assignments and nested loops only, with the read set
    // and write set of arrays disjoint.
    let mut ok_shape = true;
    let mut stored = std::collections::BTreeSet::new();
    let mut loaded = std::collections::BTreeSet::new();
    for st in &inner.body {
        st.walk(&mut |s| match s {
            Stmt::Assign { .. } | Stmt::Loop(_) => {}
            _ => ok_shape = false,
        });
        st.for_each_ref(&mut |a, _, _, is_store| {
            if is_store {
                stored.insert(a);
            } else {
                loaded.insert(a);
            }
        });
    }
    if !ok_shape || stored.intersection(&loaded).next().is_some() {
        return None;
    }
    // Tile the inner loop on its own; the emitted structure is
    //   ploop p { bounds…; data loops }
    // then re-insert the outer loop between the bounds and the data loops.
    let emitted = emit_nest(sub, (**inner).clone(), vec![level], cfg, false);
    let mut out = Vec::with_capacity(emitted.len());
    for st in emitted {
        match st {
            Stmt::Loop(mut ploop) => {
                let split = ploop
                    .body
                    .iter()
                    .position(|s| matches!(s, Stmt::Loop(_)))
                    .unwrap_or(ploop.body.len());
                let data = ploop.body.split_off(split);
                ploop.body.push(Stmt::Loop(Box::new(LoopStmt {
                    var: outer.var,
                    lb: outer.lb.clone(),
                    ub: outer.ub.clone(),
                    step: outer.step.clone(),
                    body: data,
                    par: None,
                })));
                out.push(Stmt::Loop(ploop));
            }
            other => out.push(other),
        }
    }
    Some(out)
}

/// Plan tile levels for a doacross with an affinity clause (possibly a
/// nest). Returns one [`TileLevel`] per transformable nest level,
/// outermost first. `None` when even the first level cannot be tiled
/// (falls back to runtime affinity scheduling).
fn plan_affinity_nest(sub: &Subroutine, l: &LoopStmt) -> Option<Vec<TileLevel>> {
    let d = l.par.as_ref()?;
    let aff = d.affinity.as_ref()?;
    let sig = grid_sig(sub, aff.array)?;
    let dist = sub.arrays[aff.array.0].dist.clone()?;
    let mut levels = Vec::new();
    // Walk the perfect nest collecting candidate levels.
    let mut nest_loops: Vec<&LoopStmt> = vec![l];
    let mut cur = l;
    for _ in 1..d.nest_vars.len() {
        match cur.body.as_slice() {
            [Stmt::Loop(inner)] => {
                nest_loops.push(inner);
                cur = inner;
            }
            _ => break,
        }
    }
    for (li, lp) in nest_loops.iter().enumerate() {
        let var = d.nest_vars.get(li).copied().unwrap_or(lp.var);
        if lp.var != var || lp.step != Expr::IConst(1) {
            break;
        }
        // Find the affinity index position driven by this variable.
        let hit = aff
            .indices
            .iter()
            .enumerate()
            .find_map(|(dim, idx)| match idx {
                AffIdx::Loop {
                    var: v,
                    scale,
                    offset,
                } if *v == var => Some((dim, *scale, *offset)),
                _ => None,
            });
        let Some((dim, scale, offset)) = hit else {
            break;
        };
        let kind = dist.dims[dim];
        if !kind.is_distributed() || scale < 1 {
            break;
        }
        if matches!(kind, Dist::Cyclic(_)) && (scale != 1) {
            break; // the paper omits s>1 cyclic too
        }
        levels.push(TileLevel {
            sig: sig.clone(),
            axis: axis_of(sub, aff.array, dim).expect("distributed dim has an axis"),
            extent: sub.arrays[aff.array.0].dims[dim],
            array: aff.array,
            dim,
            var,
            scale,
            offset,
            kind,
            peel_lo: 0,
            peel_hi: 0,
        });
    }
    if levels.is_empty() {
        None
    } else {
        Some(levels)
    }
}

/// Plan a tile level for a loop without affinity, from its reshaped
/// references (the "fewest div/mod" heuristic: the array/dim indexed by
/// this loop variable in the most references wins).
fn plan_ref_based(sub: &Subroutine, l: &LoopStmt) -> Option<TileLevel> {
    let mut candidates: Vec<(ArrayId, usize, i64, i64, u32)> = Vec::new();
    let probe = Stmt::Loop(Box::new(l.clone()));
    probe.for_each_ref(&mut |a, indices, _mode, _| {
        if sub.arrays[a.0].dist_kind != DistKind::Reshaped {
            return;
        }
        let Some(dist) = sub.arrays[a.0].dist.clone() else {
            return;
        };
        for (dim, idx) in indices.iter().enumerate() {
            if !dist.dims[dim].is_distributed() {
                continue;
            }
            if let Some((Some(v), s, c)) = idx.as_affine() {
                if v == l.var && s == 1 {
                    if let Some(e) = candidates
                        .iter_mut()
                        .find(|(ca, cd, cs, cc, _)| *ca == a && *cd == dim && *cs == s && *cc == c)
                    {
                        e.4 += 1;
                    } else {
                        candidates.push((a, dim, s, c, 1));
                    }
                }
            }
        }
    });
    let (array, dim, scale, offset, _) = candidates.into_iter().max_by_key(|c| c.4)?;
    let sig = grid_sig(sub, array)?;
    let kind = sub.arrays[array.0].dist.as_ref()?.dims[dim];
    // Serial legality: tiling reorders iterations across processors for
    // cyclic distributions; only block keeps the original order.
    if l.par.is_none() && !matches!(kind, Dist::Block) {
        return None;
    }
    if matches!(kind, Dist::Cyclic(_)) && scale != 1 {
        return None;
    }
    Some(TileLevel {
        sig,
        axis: axis_of(sub, array, dim)?,
        extent: sub.arrays[array.0].dims[dim],
        array,
        dim,
        var: l.var,
        scale,
        offset,
        kind,
        peel_lo: 0,
        peel_hi: 0,
    })
}

/// Compute the peel amounts of each level from the references in `body`
/// (block levels only). A reference contributes when it matches a level's
/// geometry/dim/variable with the same scale; offsets that differ by more
/// than [`MAX_PEEL`] leave the reference raw instead of widening the peel.
fn compute_peels(sub: &Subroutine, body: &[Stmt], levels: &mut [TileLevel]) {
    for st in body {
        st.for_each_ref(&mut |a, indices, _mode, _| {
            if sub.arrays[a.0].dist_kind != DistKind::Reshaped {
                return;
            }
            let Some(sig) = grid_sig(sub, a) else { return };
            for lv in levels.iter_mut() {
                if lv.kind != Dist::Block || sig != lv.sig {
                    continue;
                }
                // Any dimension of `a` riding this level's grid axis.
                for (dim, idx) in indices.iter().enumerate() {
                    if axis_of(sub, a, dim) != Some(lv.axis)
                        || sub.arrays[a.0].dims[dim] != lv.extent
                        || sub.arrays[a.0].dist.as_ref().map(|d| d.dims[dim]) != Some(lv.kind)
                    {
                        continue;
                    }
                    if let Some((Some(v), s, c)) = idx.as_affine() {
                        if v == lv.var && s == lv.scale {
                            let delta = c - lv.offset;
                            let iters = ceil_div_i64(delta.abs(), lv.scale);
                            if iters <= MAX_PEEL {
                                if delta > 0 {
                                    lv.peel_hi = lv.peel_hi.max(iters);
                                } else if delta < 0 {
                                    lv.peel_lo = lv.peel_lo.max(iters);
                                }
                            }
                        }
                    }
                }
            }
        });
    }
}

/// Emit the transformed nest. `levels` are outermost-first; `parallel`
/// chooses processor-tile loops vs serial processor loops.
fn emit_nest(
    sub: &mut Subroutine,
    l: LoopStmt,
    mut levels: Vec<TileLevel>,
    cfg: &TileConfig,
    parallel: bool,
) -> Vec<Stmt> {
    // Collect the data loops of the nest and the innermost body.
    let nlevels = levels.len();
    let mut data_loops: Vec<LoopStmt> = Vec::new();
    let mut cur = l;
    for _ in 0..nlevels {
        let mut template = cur.clone();
        let inner_body = std::mem::take(&mut template.body);
        data_loops.push(template);
        if data_loops.len() == nlevels {
            // innermost: recursively tile the remaining body (inner
            // untiled loops may still be tiled on their own).
            let inner = tile_stmts(sub, inner_body, cfg);
            data_loops.last_mut().expect("just pushed").body = inner;
            break;
        }
        match inner_body.into_iter().next() {
            Some(Stmt::Loop(next)) => cur = *next,
            _ => unreachable!("plan guaranteed a perfect nest"),
        }
    }
    let innermost_body = data_loops.last().expect("nonempty").body.clone();
    compute_peels(sub, &innermost_body, &mut levels);

    // Fresh processor/round variables and bound temporaries per level.
    let mut pvars = Vec::new();
    for _ in 0..nlevels {
        pvars.push(sub.fresh_scalar("p"));
    }
    let tlbs: Vec<VarId> = (0..nlevels).map(|_| sub.fresh_scalar("tlb")).collect();
    let tubs: Vec<VarId> = (0..nlevels).map(|_| sub.fresh_scalar("tub")).collect();
    let rounds: Vec<VarId> = (0..nlevels).map(|_| sub.fresh_scalar("t")).collect();

    // Build from the inside out: the innermost content is the (possibly
    // peeled) data-loop pyramid.
    let body = build_data_loops(sub, &levels, &data_loops, &tlbs, &tubs, 0, &[]);

    // Wrap with bound computations + round loops, innermost level first.
    let mut content = body;
    for li in (0..nlevels).rev() {
        let lv = &levels[li];
        let dl = &data_loops[li];
        let mut stmts = Vec::new();
        match lv.kind {
            Dist::Block => {
                stmts.extend(block_bounds(lv, dl, pvars[li], tlbs[li], tubs[li]));
                stmts.extend(content);
                content = stmts;
            }
            Dist::Cyclic(k) => {
                // Round loop around the bound computation + data loop.
                let mut inner = cyclic_bounds(lv, dl, pvars[li], rounds[li], tlbs[li], tubs[li], k);
                inner.extend(content);
                let n = extent_expr(sub, lv.array, lv.dim);
                let kp = Expr::mul(
                    Expr::int(k as i64),
                    Expr::Rt(dsm_ir::RtExpr::NProcs {
                        array: lv.array,
                        dim: lv.dim,
                    }),
                );
                let nrounds = Expr::ceil_div(n, kp);
                content = vec![Stmt::Loop(Box::new(LoopStmt {
                    var: rounds[li],
                    lb: Expr::int(0),
                    ub: Expr::sub(nrounds, Expr::int(1)),
                    step: Expr::int(1),
                    body: inner,
                    par: None,
                }))];
            }
            Dist::Star => unreachable!("plan only produces distributed levels"),
        }
    }

    // Processor loops. With interchange (default) they all go outermost,
    // outermost level first; otherwise each wraps its own level — for a
    // single level the two are identical.
    let make_ploop = |li: usize, inner: Vec<Stmt>| -> Stmt {
        let lv = &levels[li];
        let grid_dim = lv.axis;
        let rank = sub.arrays[lv.array.0].dims.len();
        let par = parallel.then(|| Doacross {
            nest_vars: vec![pvars[li]],
            locals: vec![],
            shared: vec![],
            sched: SchedType::ProcTile { grid_dim },
            affinity: Some(Affinity {
                array: lv.array,
                indices: (0..rank).map(|_| AffIdx::Other(Expr::int(1))).collect(),
            }),
        });
        Stmt::Loop(Box::new(LoopStmt {
            var: pvars[li],
            lb: Expr::int(0),
            ub: Expr::sub(
                Expr::Rt(dsm_ir::RtExpr::NProcs {
                    array: lv.array,
                    dim: lv.dim,
                }),
                Expr::int(1),
            ),
            step: Expr::int(1),
            body: inner,
            par,
        }))
    };
    // The bounds computations were already separated from the data loops
    // above, so the processor loops always wrap the whole pyramid,
    // outermost level last (the interchanged Section 7.1.1 form; for a
    // single level the non-interchanged form is identical).
    for li in (0..nlevels).rev() {
        content = vec![make_ploop(li, content)];
    }
    content
}

/// `tlb/tub = Figure-2 block bounds`, with edge processors clamped to the
/// original loop bounds so out-of-range affinity elements stay covered.
fn block_bounds(lv: &TileLevel, dl: &LoopStmt, pvar: VarId, tlb: VarId, tub: VarId) -> Vec<Stmt> {
    let b = Expr::Rt(dsm_ir::RtExpr::BlockSize {
        array: lv.array,
        dim: lv.dim,
    });
    let p = Expr::Rt(dsm_ir::RtExpr::NProcs {
        array: lv.array,
        dim: lv.dim,
    });
    let lo_elem = Expr::add(Expr::mul(Expr::var(pvar), b.clone()), Expr::int(1));
    let hi_elem = Expr::mul(Expr::add(Expr::var(pvar), Expr::int(1)), b);
    // tlb = max(LB, ceildiv(lo - c, s)); tub = min(UB, (hi - c) / s)
    let s = Expr::int(lv.scale);
    let c = Expr::int(lv.offset);
    let mut out = vec![
        Stmt::SAssign {
            var: tlb,
            value: Expr::max(
                dl.lb.clone(),
                Expr::ceil_div(Expr::sub(lo_elem, c.clone()), s.clone()),
            ),
        },
        Stmt::SAssign {
            var: tub,
            value: Expr::min(dl.ub.clone(), Expr::div(Expr::sub(hi_elem, c), s)),
        },
        // Edge clamps: processor 0 and P-1 absorb out-of-range elements.
        Stmt::If {
            cond: Expr::Binary(
                dsm_ir::BinOp::Eq,
                Box::new(Expr::var(pvar)),
                Box::new(Expr::int(0)),
            ),
            then_body: vec![Stmt::SAssign {
                var: tlb,
                value: dl.lb.clone(),
            }],
            else_body: vec![],
        },
        Stmt::If {
            cond: Expr::Binary(
                dsm_ir::BinOp::Eq,
                Box::new(Expr::var(pvar)),
                Box::new(Expr::sub(p, Expr::int(1))),
            ),
            then_body: vec![Stmt::SAssign {
                var: tub,
                value: dl.ub.clone(),
            }],
            else_body: vec![],
        },
    ];
    // Tiling leaves one mod per processor tile (the running local index
    // seed, `local_index = lb % b` in the paper's example).
    out.push(Stmt::Overhead {
        int_divs: 1,
        indirect_loads: 0,
        int_alu: 2,
    });
    out
}

/// Bounds of one cyclic(k) round (Figure 2's triply-nested form):
/// elements `[(t*P + p)*k + 1, … + k]` intersected with the loop range.
fn cyclic_bounds(
    lv: &TileLevel,
    dl: &LoopStmt,
    pvar: VarId,
    round: VarId,
    tlb: VarId,
    tub: VarId,
    k: u64,
) -> Vec<Stmt> {
    let p = Expr::Rt(dsm_ir::RtExpr::NProcs {
        array: lv.array,
        dim: lv.dim,
    });
    let base = Expr::add(
        Expr::mul(
            Expr::add(Expr::mul(Expr::var(round), p), Expr::var(pvar)),
            Expr::int(k as i64),
        ),
        Expr::int(1),
    );
    let c = Expr::int(lv.offset);
    vec![
        Stmt::SAssign {
            var: tlb,
            value: Expr::max(dl.lb.clone(), Expr::sub(base.clone(), c.clone())),
        },
        Stmt::SAssign {
            var: tub,
            value: Expr::min(
                dl.ub.clone(),
                Expr::sub(Expr::add(base, Expr::int(k as i64 - 1)), c),
            ),
        },
        Stmt::Overhead {
            int_divs: 0,
            indirect_loads: 0,
            int_alu: 4,
        },
    ]
}

/// Build the (peeled) data-loop pyramid for levels `li..`.
///
/// `violations` records which levels' boundary copies we are inside:
/// `(level, Side::Lo)` means the loop variable of that level sits at the
/// portion's low edge, so references with negative offsets at that level
/// escape the portion and must keep raw addressing — but everything else
/// in the boundary copy is still confined and is upgraded (the paper's
/// peeled code likewise uses portion addressing for the in-portion
/// operands of a boundary iteration).
fn build_data_loops(
    sub: &Subroutine,
    levels: &[TileLevel],
    data_loops: &[LoopStmt],
    tlbs: &[VarId],
    tubs: &[VarId],
    li: usize,
    violations: &[(usize, Side)],
) -> Vec<Stmt> {
    let lv = &levels[li];
    let dl = &data_loops[li];
    let innermost = li + 1 == levels.len();
    let body_for = |sub: &Subroutine, viols: &[(usize, Side)]| -> Vec<Stmt> {
        if innermost {
            let mut b = dl.body.clone();
            for st in &mut b {
                upgrade_modes(sub, st, levels, viols);
            }
            b
        } else {
            build_data_loops(sub, levels, data_loops, tlbs, tubs, li + 1, viols)
        }
    };
    let interior_body = body_for(sub, violations);
    let mk = |lb: Expr, ub: Expr, body: Vec<Stmt>| {
        Stmt::Loop(Box::new(LoopStmt {
            var: dl.var,
            lb,
            ub,
            step: Expr::int(1),
            body,
            par: None,
        }))
    };
    let lb = Expr::var(tlbs[li]);
    let ub = Expr::var(tubs[li]);
    if lv.peel_lo == 0 && lv.peel_hi == 0 {
        return vec![mk(lb, ub, interior_body)];
    }
    let mut out = Vec::new();
    if lv.peel_lo > 0 {
        let mut viols = violations.to_vec();
        viols.push((li, Side::Lo));
        out.push(mk(
            lb.clone(),
            Expr::min(ub.clone(), Expr::add(lb.clone(), Expr::int(lv.peel_lo - 1))),
            body_for(sub, &viols),
        ));
    }
    out.push(mk(
        Expr::add(lb.clone(), Expr::int(lv.peel_lo)),
        Expr::sub(ub.clone(), Expr::int(lv.peel_hi)),
        interior_body,
    ));
    if lv.peel_hi > 0 {
        let mut viols = violations.to_vec();
        viols.push((li, Side::Hi));
        // The epilogue must not re-run iterations the prologue already
        // covered when the portion is narrower than the combined peels.
        out.push(mk(
            Expr::max(
                Expr::add(lb, Expr::int(lv.peel_lo)),
                Expr::sub(ub.clone(), Expr::int(lv.peel_hi - 1)),
            ),
            ub,
            body_for(sub, &viols),
        ));
    }
    out
}

/// Upgrade reshaped references that are confined to one portion in every
/// distributed dimension (only raw references change; statement-CSE'd
/// modes already cost no more than the tiled form).
fn upgrade_modes(
    sub: &Subroutine,
    st: &mut Stmt,
    levels: &[TileLevel],
    violations: &[(usize, Side)],
) {
    match st {
        Stmt::Assign {
            array,
            indices,
            value,
            mode,
        } => {
            if matches!(mode, AddrMode::ReshapedRaw | AddrMode::ReshapedRawFp)
                && ref_confined(sub, *array, indices, levels, violations)
            {
                *mode = AddrMode::ReshapedTiled;
            }
            for e in indices.iter_mut() {
                upgrade_expr(sub, e, levels, violations);
            }
            upgrade_expr(sub, value, levels, violations);
        }
        Stmt::SAssign { value, .. } => upgrade_expr(sub, value, levels, violations),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            upgrade_expr(sub, cond, levels, violations);
            for s in then_body.iter_mut().chain(else_body) {
                upgrade_modes(sub, s, levels, violations);
            }
        }
        Stmt::Loop(l) => {
            for s in &mut l.body {
                upgrade_modes(sub, s, levels, violations);
            }
        }
        _ => {}
    }
}

fn upgrade_expr(
    sub: &Subroutine,
    e: &mut Expr,
    levels: &[TileLevel],
    violations: &[(usize, Side)],
) {
    match e {
        Expr::Load {
            array,
            indices,
            mode,
        } => {
            if matches!(mode, AddrMode::ReshapedRaw | AddrMode::ReshapedRawFp)
                && ref_confined(sub, *array, indices, levels, violations)
            {
                *mode = AddrMode::ReshapedTiled;
            }
            for i in indices {
                upgrade_expr(sub, i, levels, violations);
            }
        }
        Expr::Unary(_, x) => upgrade_expr(sub, x, levels, violations),
        Expr::Binary(_, a, b) => {
            upgrade_expr(sub, a, levels, violations);
            upgrade_expr(sub, b, levels, violations);
        }
        Expr::Call(_, args) => {
            for a in args {
                upgrade_expr(sub, a, levels, violations);
            }
        }
        _ => {}
    }
}

/// A reference is confined when every distributed dimension is covered by
/// a tile level of matching geometry, same scale, and an offset within the
/// level's peel — and, in a boundary (peeled) copy, the offset does not
/// point past the violated edge.
fn ref_confined(
    sub: &Subroutine,
    a: ArrayId,
    indices: &[Expr],
    levels: &[TileLevel],
    violations: &[(usize, Side)],
) -> bool {
    if sub.arrays[a.0].dist_kind != DistKind::Reshaped {
        return false;
    }
    let Some(sig) = grid_sig(sub, a) else {
        return false;
    };
    let Some(dist) = sub.arrays[a.0].dist.clone() else {
        return false;
    };
    for (dim, d) in dist.dims.iter().enumerate() {
        if !d.is_distributed() {
            continue;
        }
        let Some(idx) = indices.get(dim) else {
            return false;
        };
        let Some((Some(v), s, c)) = idx.as_affine() else {
            return false;
        };
        let axis = axis_of(sub, a, dim);
        let extent = sub.arrays[a.0].dims[dim];
        let ok = levels.iter().enumerate().any(|(lidx, lv)| {
            if lv.sig != sig
                || Some(lv.axis) != axis
                || lv.extent != extent
                || lv.kind != *d
                || lv.var != v
                || lv.scale != s
            {
                return false;
            }
            let delta = c - lv.offset;
            for &(vl, side) in violations {
                if vl == lidx {
                    match side {
                        Side::Lo if delta < 0 => return false,
                        Side::Hi if delta > 0 => return false,
                        _ => {}
                    }
                }
            }
            match lv.kind {
                Dist::Block => {
                    let iters = ceil_div_i64(delta.abs(), lv.scale);
                    (delta >= 0 && iters <= lv.peel_hi) || (delta <= 0 && iters <= lv.peel_lo)
                }
                _ => delta == 0,
            }
        });
        if !ok {
            return false;
        }
    }
    true
}

/// Expression for the extent of `array` dimension `dim`.
fn extent_expr(sub: &Subroutine, array: ArrayId, dim: usize) -> Expr {
    match sub.arrays[array.0].dims[dim] {
        Extent::Const(v) => Expr::int(v),
        Extent::Var(v) => Expr::var(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;
    use dsm_ir::validate_program;

    fn tiled(src: &str) -> dsm_ir::Program {
        let a = compile_sources(&[("t.f", src)]).expect("frontend");
        let mut p = lower_program(&a).expect("lower");
        for s in &mut p.subs {
            run(s, &TileConfig::default());
        }
        validate_program(&p).expect("tiled IR valid");
        p
    }

    /// Count loops by predicate in a whole subroutine.
    fn count_loops(sub: &Subroutine, f: &impl Fn(&LoopStmt) -> bool) -> usize {
        let mut n = 0;
        for st in &sub.body {
            st.walk(&mut |s| {
                if let Stmt::Loop(l) = s {
                    if f(l) {
                        n += 1;
                    }
                }
            });
        }
        n
    }

    fn modes(sub: &Subroutine) -> Vec<AddrMode> {
        let mut v = Vec::new();
        for st in &sub.body {
            st.for_each_ref(&mut |_, _, m, _| v.push(m));
        }
        v
    }

    #[test]
    fn affinity_block_becomes_proctile() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        assert_eq!(
            count_loops(main, &|l| matches!(
                l.par.as_ref().map(|d| d.sched),
                Some(SchedType::ProcTile { .. })
            )),
            1,
            "one processor-tile loop"
        );
        // The store is upgraded.
        assert!(modes(main).contains(&AddrMode::ReshapedTiled));
        assert!(!modes(main).contains(&AddrMode::ReshapedRaw));
    }

    #[test]
    fn stencil_gets_peeled_boundary_loops() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100), b(100)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 2, 99\n        a(i) = (b(i-1) + b(i) + b(i+1)) / 3\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        // Interior + 2 boundary data loops.
        let data_loops = count_loops(main, &|l| l.par.is_none());
        assert_eq!(data_loops, 3, "prologue, interior, epilogue");
        let ms = modes(main);
        assert!(ms.contains(&AddrMode::ReshapedTiled), "interior upgraded");
        assert!(
            ms.contains(&AddrMode::ReshapedRaw),
            "boundary copies stay raw"
        );
    }

    #[test]
    fn matching_second_array_upgraded_too() {
        // b matches a's geometry => its refs upgrade even though the
        // affinity names a (Section 7.1 third extension).
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(64), b(64)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 64\n        a(i) = b(i)\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedTiled).count(),
            2
        );
    }

    #[test]
    fn mismatched_geometry_stays_raw() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(64), b(32)\nc$distribute_reshape a(block)\nc$distribute_reshape b(cyclic)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 32\n        a(i) = b(i)\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert!(ms.contains(&AddrMode::ReshapedTiled), "a upgraded");
        assert!(ms.contains(&AddrMode::ReshapedRaw), "b stays raw");
    }

    #[test]
    fn serial_block_loop_tiled() {
        // The paper's Section 7.1 example: serial loop over a reshaped
        // block array is tiled (P mods instead of n).
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\n      do i = 1, 100\n        a(i) = i\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        // Serial proc loop (no par) + data loop; refs upgraded.
        assert!(modes(main).contains(&AddrMode::ReshapedTiled));
        assert_eq!(
            count_loops(main, &|_| true),
            2,
            "processor loop + data loop"
        );
    }

    #[test]
    fn cross_geometry_axis_match_upgrades_both() {
        // The transpose pattern: a(*,block) and b(block,*) share one grid
        // axis; refs to both through the same tiled variable upgrade.
        let p = tiled(
            "      program main\n      integer i, j\n      real*8 a(32, 32), b(32, 32)\nc$distribute_reshape a(*, block)\nc$distribute_reshape b(block, *)\nc$doacross local(i, j) affinity(i) = data(a(1, i))\n      do i = 1, 32\n        do j = 1, 32\n          a(j, i) = b(i, j)\n        enddo\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedTiled).count() >= 2,
            "both sides of the transpose must be portion-confined: {ms:?}"
        );
        assert!(!ms.contains(&AddrMode::ReshapedRaw));
    }

    #[test]
    fn serial_nest_hoists_tile_loop_preserving_data_order() {
        // Outer j (star dim), inner i (block dim): the tile loop must be
        // hoisted outside j while j stays outside the i data loop.
        let p = tiled(
            "      program main\n      integer i, j\n      real*8 b(64, 8)\nc$distribute_reshape b(block, *)\n      do j = 1, 8\n        do i = 1, 64\n          b(i, j) = i + j\n        enddo\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        // Structure: ploop { bounds…, do j { do i } }.
        let Stmt::Loop(ploop) = &main.body[0] else {
            panic!()
        };
        assert!(
            main.scalars[ploop.var.0].name.starts_with("p$"),
            "tile loop outermost"
        );
        let inner_loops: Vec<&LoopStmt> = ploop
            .body
            .iter()
            .filter_map(|s| match s {
                Stmt::Loop(l) => Some(l.as_ref()),
                _ => None,
            })
            .collect();
        assert_eq!(inner_loops.len(), 1, "one j loop inside the tile loop");
        assert_eq!(main.scalars[inner_loops[0].var.0].name, "j");
        assert!(modes(main).contains(&AddrMode::ReshapedTiled));
    }

    #[test]
    fn serial_cyclic_loop_not_tiled() {
        // Changing iteration order is illegal for serial cyclic loops.
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(cyclic)\n      do i = 1, 100\n        a(i) = i\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert!(ms.contains(&AddrMode::ReshapedRaw));
        assert!(!ms.contains(&AddrMode::ReshapedTiled));
    }

    #[test]
    fn parallel_cyclic_loop_tiled_with_rounds() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(1000)\nc$distribute_reshape a(cyclic(5))\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 1000\n        a(i) = i\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        // proc tile + round loop + data loop = 3 loops.
        assert_eq!(count_loops(main, &|_| true), 3);
        assert!(modes(main).contains(&AddrMode::ReshapedTiled));
    }

    #[test]
    fn nest_affinity_puts_proctiles_outermost() {
        let p = tiled(
            "      program main\n      integer i, j\n      real*8 a(64, 64)\nc$distribute_reshape a(block, block)\nc$doacross nest(j, i) local(i, j) affinity(j, i) = data(a(i, j))\n      do j = 1, 64\n        do i = 1, 64\n          a(i, j) = i + j\n        enddo\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        // Outermost statement is a ProcTile loop whose single nested loop
        // chain contains another ProcTile before any data loop.
        let Stmt::Loop(outer) = &main.body[0] else {
            panic!()
        };
        assert!(matches!(
            outer.par.as_ref().map(|d| d.sched),
            Some(SchedType::ProcTile { .. })
        ));
        let mut saw_inner_proctile = false;
        for st in &outer.body {
            if let Stmt::Loop(l) = st {
                if matches!(
                    l.par.as_ref().map(|d| d.sched),
                    Some(SchedType::ProcTile { .. })
                ) {
                    saw_inner_proctile = true;
                }
            }
        }
        assert!(
            saw_inner_proctile,
            "second proc-tile loop immediately inside the first"
        );
        assert!(modes(main).contains(&AddrMode::ReshapedTiled));
    }

    #[test]
    fn regular_affinity_also_proctiled_without_upgrades() {
        // Affinity scheduling applies to regular distributions too; no
        // reshaped refs exist so no mode changes.
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        assert_eq!(
            count_loops(main, &|l| matches!(
                l.par.as_ref().map(|d| d.sched),
                Some(SchedType::ProcTile { .. })
            )),
            1
        );
        assert!(modes(main).iter().all(|m| *m == AddrMode::Direct));
    }

    #[test]
    fn non_unit_step_left_alone() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\n      do i = 1, 100, 2\n        a(i) = i\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert!(ms.contains(&AddrMode::ReshapedRaw));
    }

    #[test]
    fn overhead_statements_emitted_per_tile() {
        let p = tiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        let mut overheads = 0;
        for st in &p.main_sub().body {
            st.walk(&mut |s| {
                if matches!(s, Stmt::Overhead { .. }) {
                    overheads += 1;
                }
            });
        }
        assert_eq!(overheads, 1, "one per-tile mod charge");
    }
}
