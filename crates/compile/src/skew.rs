//! Loop skewing (Section 7.1, second extension) and the symbolic
//! simplifier it relies on.
//!
//! For loops like
//!
//! ```fortran
//!       do i = 1, n
//!         a(i + c*k) = ...
//! ```
//!
//! (`c` a literal, `k` loop-invariant) the paper skews the loop by `c*k`,
//! converting references `A(i + c*k)` into `A(i)`, which enables
//! subsequent tiling and peeling.  We implement the general form: if every
//! reshaped reference indexed by the loop variable shares a common
//! loop-invariant offset term `g`, the loop becomes
//! `do i = lb+g, ub+g` with `i := i - g` substituted in the body, and the
//! simplifier cancels `(i - g) + g` back to `i`.

use dsm_ir::{BinOp, DistKind, Expr, Intrinsic, LoopStmt, Stmt, Subroutine, UnOp, VarId};

/// Simplify an expression: constant folding plus cancellation of
/// syntactically identical additive terms (`(x + g) - g` → `x`).
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Binary(op @ (BinOp::Add | BinOp::Sub), _, _) => {
            let mut terms: Vec<(Expr, i64)> = Vec::new();
            let mut konst = 0i64;
            collect_terms(e, 1, &mut terms, &mut konst);
            let _ = op;
            rebuild_terms(terms, konst)
        }
        Expr::Binary(op, a, b) => {
            let (a, b) = (simplify(a), simplify(b));
            if let (Expr::IConst(x), Expr::IConst(y)) = (&a, &b) {
                if let Some(v) = fold_int(*op, *x, *y) {
                    return Expr::IConst(v);
                }
            }
            Expr::Binary(*op, Box::new(a), Box::new(b))
        }
        Expr::Unary(UnOp::Neg, x) => {
            let x = simplify(x);
            if let Expr::IConst(v) = x {
                Expr::IConst(-v)
            } else {
                Expr::Unary(UnOp::Neg, Box::new(x))
            }
        }
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(simplify(x))),
        Expr::Load {
            array,
            indices,
            mode,
        } => Expr::Load {
            array: *array,
            indices: indices.iter().map(simplify).collect(),
            mode: *mode,
        },
        Expr::Call(i, args) => {
            let args: Vec<Expr> = args.iter().map(simplify).collect();
            if let (Intrinsic::Max | Intrinsic::Min, [Expr::IConst(a), Expr::IConst(b)]) =
                (i, args.as_slice())
            {
                return Expr::IConst(if *i == Intrinsic::Max {
                    *a.max(b)
                } else {
                    *a.min(b)
                });
            }
            Expr::Call(*i, args)
        }
        other => other.clone(),
    }
}

fn fold_int(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a / b
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            a % b
        }
        _ => return None,
    })
}

/// Flatten an Add/Sub tree into signed terms plus a constant.
fn collect_terms(e: &Expr, sign: i64, terms: &mut Vec<(Expr, i64)>, konst: &mut i64) {
    match e {
        Expr::Binary(BinOp::Add, a, b) => {
            collect_terms(a, sign, terms, konst);
            collect_terms(b, sign, terms, konst);
        }
        Expr::Binary(BinOp::Sub, a, b) => {
            collect_terms(a, sign, terms, konst);
            collect_terms(b, -sign, terms, konst);
        }
        Expr::Unary(UnOp::Neg, x) => collect_terms(x, -sign, terms, konst),
        Expr::IConst(v) => *konst += sign * v,
        other => {
            let s = simplify(other);
            match s {
                Expr::IConst(v) => *konst += sign * v,
                s => {
                    // Cancel against an identical opposite-signed term.
                    if let Some(pos) = terms.iter().position(|(t, sg)| *t == s && *sg == -sign) {
                        terms.remove(pos);
                    } else {
                        terms.push((s, sign));
                    }
                }
            }
        }
    }
}

fn rebuild_terms(terms: Vec<(Expr, i64)>, konst: i64) -> Expr {
    let mut acc: Option<Expr> = None;
    for (t, sign) in terms {
        acc = Some(match (acc, sign) {
            (None, 1) => t,
            (None, _) => Expr::Unary(UnOp::Neg, Box::new(t)),
            (Some(a), 1) => Expr::add(a, t),
            (Some(a), _) => Expr::sub(a, t),
        });
    }
    match acc {
        None => Expr::IConst(konst),
        Some(a) if konst == 0 => a,
        Some(a) if konst > 0 => Expr::add(a, Expr::IConst(konst)),
        Some(a) => Expr::sub(a, Expr::IConst(-konst)),
    }
}

/// Decompose an index expression as `var + g` where `g` is loop-invariant
/// w.r.t. `var` (and not a plain literal — literals are peeling's job).
/// Returns `g`.
fn invariant_offset(e: &Expr, var: VarId) -> Option<Expr> {
    let mut terms = Vec::new();
    let mut konst = 0;
    collect_terms(e, 1, &mut terms, &mut konst);
    // Exactly one `+var` term; the rest must not use var and at least one
    // non-constant invariant term must exist.
    let var_terms: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter(|(_, (t, _))| matches!(t, Expr::Var(v) if *v == var))
        .map(|(i, _)| i)
        .collect();
    if var_terms.len() != 1 || terms[var_terms[0]].1 != 1 {
        return None;
    }
    let rest: Vec<(Expr, i64)> = terms
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != var_terms[0])
        .map(|(_, t)| t.clone())
        .collect();
    if rest.is_empty() || rest.iter().any(|(t, _)| t.uses_var(var)) {
        return None;
    }
    Some(rebuild_terms(rest, konst))
}

/// Try to skew every skewable loop in the subroutine, in place. Returns
/// the number of loops skewed.
pub fn run(sub: &mut Subroutine) -> usize {
    let mut body = std::mem::take(&mut sub.body);
    let n = skew_block(sub, &mut body);
    sub.body = body;
    n
}

fn skew_block(sub: &Subroutine, body: &mut [Stmt]) -> usize {
    let mut n = 0;
    for st in body {
        if let Stmt::Loop(l) = st {
            n += skew_block(sub, &mut l.body);
            if let Some(g) = skew_candidate(sub, l) {
                skew_loop(l, &g);
                n += 1;
            }
        } else if let Stmt::If {
            then_body,
            else_body,
            ..
        } = st
        {
            n += skew_block(sub, then_body);
            n += skew_block(sub, else_body);
        }
    }
    n
}

/// A loop is skewable when some reshaped reference indexes a distributed
/// dimension with `var + g` (g invariant, non-literal) and *every*
/// reshaped reference through `var` in that dimension shares the same `g`
/// up to a literal delta (so peeling can finish the job after skewing).
fn skew_candidate(sub: &Subroutine, l: &LoopStmt) -> Option<Expr> {
    if l.step != Expr::IConst(1) || l.par.is_some() {
        // Parallel loops carry affinity clauses whose meaning would shift;
        // the paper applies skewing to the loop bounds before scheduling —
        // we restrict to serial loops for safety.
        return None;
    }
    let mut offset: Option<Expr> = None;
    let mut consistent = true;
    let probe = Stmt::Loop(Box::new(l.clone()));
    probe.for_each_ref(&mut |a, indices, _, _| {
        if sub.arrays[a.0].dist_kind != DistKind::Reshaped || !consistent {
            return;
        }
        let Some(dist) = &sub.arrays[a.0].dist else {
            return;
        };
        for (dim, idx) in indices.iter().enumerate() {
            if !dist.dims[dim].is_distributed() || !idx.uses_var(l.var) {
                continue;
            }
            if idx.as_affine().is_some() {
                continue; // already simple; skewing must not break it
            }
            match invariant_offset(idx, l.var) {
                Some(g) => {
                    // Strip literal component for comparison.
                    let canon = simplify(&Expr::sub(g.clone(), g_const(&g)));
                    match &offset {
                        None => offset = Some(canon),
                        Some(o) if *o == canon => {}
                        _ => consistent = false,
                    }
                }
                None => consistent = false,
            }
        }
    });
    if consistent {
        offset
    } else {
        None
    }
}

fn g_const(g: &Expr) -> Expr {
    let mut terms = Vec::new();
    let mut konst = 0;
    collect_terms(g, 1, &mut terms, &mut konst);
    Expr::IConst(konst)
}

/// Skew `l` by `g`: bounds shift up by `g`, body occurrences of the loop
/// variable become `var - g`, then everything is re-simplified.
fn skew_loop(l: &mut LoopStmt, g: &Expr) {
    l.lb = simplify(&Expr::add(l.lb.clone(), g.clone()));
    l.ub = simplify(&Expr::add(l.ub.clone(), g.clone()));
    let replacement = Expr::sub(Expr::var(l.var), g.clone());
    for st in &mut l.body {
        subst_stmt(st, l.var, &replacement);
    }
}

fn subst_stmt(st: &mut Stmt, var: VarId, with: &Expr) {
    match st {
        Stmt::Assign { indices, value, .. } => {
            for e in indices.iter_mut() {
                *e = simplify(&e.subst_var(var, with));
            }
            *value = simplify(&value.subst_var(var, with));
        }
        Stmt::SAssign { value, .. } => *value = simplify(&value.subst_var(var, with)),
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            *cond = simplify(&cond.subst_var(var, with));
            for s in then_body.iter_mut().chain(else_body) {
                subst_stmt(s, var, with);
            }
        }
        Stmt::Loop(l) => {
            l.lb = simplify(&l.lb.subst_var(var, with));
            l.ub = simplify(&l.ub.subst_var(var, with));
            l.step = simplify(&l.step.subst_var(var, with));
            for s in &mut l.body {
                subst_stmt(s, var, with);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                match a {
                    dsm_ir::ActualArg::Scalar(e) => *e = simplify(&e.subst_var(var, with)),
                    dsm_ir::ActualArg::ArrayElem(_, idx) => {
                        for e in idx {
                            *e = simplify(&e.subst_var(var, with));
                        }
                    }
                    dsm_ir::ActualArg::Array(_) => {}
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;
    use dsm_ir::AddrMode;

    #[test]
    fn simplify_cancels_identical_terms() {
        let i = VarId(0);
        let k = VarId(1);
        // (i - 2*k) + 2*k  =>  i
        let g = Expr::mul(Expr::int(2), Expr::var(k));
        let e = Expr::add(Expr::sub(Expr::var(i), g.clone()), g);
        assert_eq!(simplify(&e), Expr::var(i));
    }

    #[test]
    fn simplify_folds_constants() {
        let e = Expr::add(Expr::int(3), Expr::mul(Expr::int(4), Expr::int(5)));
        assert_eq!(simplify(&e), Expr::IConst(23));
        let e = Expr::max(Expr::int(3), Expr::int(9));
        assert_eq!(simplify(&e), Expr::IConst(9));
    }

    #[test]
    fn invariant_offset_detection() {
        let i = VarId(0);
        let k = VarId(1);
        let g = Expr::mul(Expr::int(3), Expr::var(k));
        let e = Expr::add(Expr::var(i), g.clone());
        let got = invariant_offset(&e, i).unwrap();
        assert_eq!(simplify(&got), simplify(&g));
        // i*2 + k: var coefficient != 1 => not this transformation's job.
        let e2 = Expr::add(Expr::mul(Expr::int(2), Expr::var(i)), Expr::var(k));
        assert!(invariant_offset(&e2, i).is_none());
    }

    #[test]
    fn skew_enables_affine_reference() {
        // do i = 1, n: a(i + 2*k) = i  — after skewing the ref is a(i).
        let src = "      program main\n      integer i, k, n\n      real*8 a(200)\nc$distribute_reshape a(block)\n      n = 50\n      k = 10\n      do i = 1, n\n        a(i + 2*k) = i\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        let n = run(&mut p.subs[0]);
        assert_eq!(n, 1);
        let Stmt::Loop(l) = &p.subs[0].body[2] else {
            panic!()
        };
        let Stmt::Assign { indices, value, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(indices[0], Expr::var(l.var), "index skewed to plain i");
        // The RHS value compensates: i - 2*k.
        assert!(value.uses_var(VarId(1)), "rhs now mentions k");
        dsm_ir::validate_program(&p).unwrap();
    }

    #[test]
    fn skewed_loop_tiles_afterwards() {
        let src = "      program main\n      integer i, k, n\n      real*8 a(200)\nc$distribute_reshape a(block)\n      n = 50\n      k = 10\n      do i = 1, n\n        a(i + 2*k) = i\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        run(&mut p.subs[0]);
        crate::tile::run(&mut p.subs[0], &crate::tile::TileConfig::default());
        let mut upgraded = false;
        for st in &p.subs[0].body {
            st.for_each_ref(&mut |_, _, m, _| {
                if m == AddrMode::ReshapedTiled {
                    upgraded = true;
                }
            });
        }
        assert!(upgraded, "skew + tile should remove raw addressing");
    }

    #[test]
    fn affine_loops_not_skewed() {
        let src = "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\n      do i = 1, 99\n        a(i + 1) = i\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        assert_eq!(run(&mut p.subs[0]), 0, "literal offsets are peeling's job");
    }

    #[test]
    fn inconsistent_offsets_not_skewed() {
        let src = "      program main\n      integer i, k, m\n      real*8 a(300), b(300)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\n      k = 1\n      m = 2\n      do i = 1, 50\n        a(i + 2*k) = b(i + 3*m)\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        assert_eq!(run(&mut p.subs[0]), 0);
    }
}
