//! Subroutine specialization (cloning).
//!
//! The pre-linker clones one copy of a subroutine per distinct combination
//! of `distribute_reshape` directives on its parameters (Section 5):
//! "although this results in code expansion, the generated code is more
//! efficient, since each cloned copy can be optimized at compile time for
//! the particular combination of incoming distributions."

use std::collections::HashSet;

use dsm_ir::{AddrMode, ArrayId, DistKind, Expr, Param, Stmt, Storage, Subroutine};

use crate::shadow::CloneSig;

/// Specialize `sub` for the incoming distribution combination `sig`,
/// renaming it to `name`.
///
/// # Errors
///
/// Returns a description when the signature cannot apply: argument-count
/// mismatch, a distribution aimed at a scalar formal, or a rank mismatch
/// between the propagated distribution and the formal's declared rank.
pub fn specialize(sub: &Subroutine, sig: &CloneSig, name: String) -> Result<Subroutine, String> {
    if sig.len() != sub.params.len() {
        return Err(format!(
            "`{}` takes {} arguments but the call passes {}",
            sub.name,
            sub.params.len(),
            sig.len()
        ));
    }
    let mut out = sub.clone();
    out.name = name;
    let mut reshaped: HashSet<ArrayId> = HashSet::new();
    for (pos, d) in sig.iter().enumerate() {
        let Some(dist) = d else { continue };
        match sub.params[pos] {
            Param::Scalar(_) => {
                return Err(format!(
                    "argument {} of `{}` is a scalar formal but receives a reshaped array",
                    pos + 1,
                    sub.name
                ));
            }
            Param::Array(aid) => {
                let decl = &mut out.arrays[aid.0];
                if dist.dims.len() != decl.dims.len() {
                    return Err(format!(
                        "reshaped actual for `{}` argument {} has rank {}, formal `{}` has rank {}",
                        sub.name,
                        pos + 1,
                        dist.dims.len(),
                        decl.name,
                        decl.dims.len()
                    ));
                }
                debug_assert!(matches!(decl.storage, Storage::Formal { .. }));
                decl.dist_kind = DistKind::Reshaped;
                decl.dist = Some(dist.clone());
                reshaped.insert(aid);
            }
        }
    }
    if !reshaped.is_empty() {
        for st in &mut out.body {
            set_reshaped_modes(st, &reshaped);
        }
    }
    Ok(out)
}

/// Clone-instance name for a base subroutine and instance counter; the
/// all-`None` signature keeps the original name.
pub fn clone_name(base: &str, sig: &CloneSig, counter: usize) -> String {
    if sig.iter().all(Option::is_none) {
        base.to_string()
    } else {
        format!("{base}__r{counter}")
    }
}

/// Rewrite every reference to the given arrays to
/// [`AddrMode::ReshapedRaw`] (they are reshaped in this clone).
fn set_reshaped_modes(st: &mut Stmt, arrays: &HashSet<ArrayId>) {
    match st {
        Stmt::Assign {
            array,
            indices,
            value,
            mode,
        } => {
            if arrays.contains(array) {
                *mode = AddrMode::ReshapedRaw;
            }
            for e in indices.iter_mut() {
                set_modes_expr(e, arrays);
            }
            set_modes_expr(value, arrays);
        }
        Stmt::SAssign { value, .. } => set_modes_expr(value, arrays),
        Stmt::Loop(l) => {
            set_modes_expr(&mut l.lb, arrays);
            set_modes_expr(&mut l.ub, arrays);
            set_modes_expr(&mut l.step, arrays);
            for s in &mut l.body {
                set_reshaped_modes(s, arrays);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            set_modes_expr(cond, arrays);
            for s in then_body.iter_mut().chain(else_body) {
                set_reshaped_modes(s, arrays);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                match a {
                    dsm_ir::ActualArg::Scalar(e) => set_modes_expr(e, arrays),
                    dsm_ir::ActualArg::ArrayElem(_, idx) => {
                        for e in idx {
                            set_modes_expr(e, arrays);
                        }
                    }
                    dsm_ir::ActualArg::Array(_) => {}
                }
            }
        }
        Stmt::Redistribute { .. } | Stmt::ResizeTeam { .. } | Stmt::Barrier | Stmt::Overhead { .. } => {}
    }
}

fn set_modes_expr(e: &mut Expr, arrays: &HashSet<ArrayId>) {
    match e {
        Expr::Load {
            array,
            indices,
            mode,
        } => {
            if arrays.contains(array) {
                *mode = AddrMode::ReshapedRaw;
            }
            for i in indices {
                set_modes_expr(i, arrays);
            }
        }
        Expr::Unary(_, x) => set_modes_expr(x, arrays),
        Expr::Binary(_, a, b) => {
            set_modes_expr(a, arrays);
            set_modes_expr(b, arrays);
        }
        Expr::Call(_, args) => {
            for a in args {
                set_modes_expr(a, arrays);
            }
        }
        Expr::Var(_) | Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;
    use dsm_ir::{Dist, Distribution};

    fn sub_named(src: &str, name: &str) -> Subroutine {
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let p = lower_program(&a).unwrap();
        p.subs.iter().find(|s| s.name == name).unwrap().clone()
    }

    const SRC: &str = "      program main\n      end\n      subroutine s(x, n)\n      integer n, i\n      real*8 x(100)\n      do i = 1, n\n        x(i) = i\n      enddo\n      end\n";

    #[test]
    fn specialize_marks_formal_reshaped() {
        let s = sub_named(SRC, "s");
        let sig = vec![Some(Distribution::new(vec![Dist::Block])), None];
        let c = specialize(&s, &sig, "s__r1".into()).unwrap();
        assert_eq!(c.name, "s__r1");
        assert_eq!(c.arrays[0].dist_kind, DistKind::Reshaped);
        // Refs to x now carry the raw reshaped mode.
        let Stmt::Loop(l) = &c.body[0] else { panic!() };
        let Stmt::Assign { mode, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(*mode, AddrMode::ReshapedRaw);
        // Original untouched.
        let Stmt::Loop(l0) = &s.body[0] else { panic!() };
        let Stmt::Assign { mode: m0, .. } = &l0.body[0] else {
            panic!()
        };
        assert_eq!(*m0, AddrMode::Direct);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let s = sub_named(SRC, "s");
        let err = specialize(&s, &vec![None], "s__r1".into()).unwrap_err();
        assert!(err.contains("arguments"));
    }

    #[test]
    fn scalar_formal_receiving_array_rejected() {
        let s = sub_named(SRC, "s");
        let sig = vec![None, Some(Distribution::new(vec![Dist::Block]))];
        let err = specialize(&s, &sig, "x".into()).unwrap_err();
        assert!(err.contains("scalar formal"));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let s = sub_named(SRC, "s");
        let sig = vec![Some(Distribution::new(vec![Dist::Block, Dist::Star])), None];
        let err = specialize(&s, &sig, "s__r1".into()).unwrap_err();
        assert!(err.contains("rank"));
    }

    #[test]
    fn clone_names() {
        let sig_none: CloneSig = vec![None];
        assert_eq!(clone_name("s", &sig_none, 3), "s");
        let sig = vec![Some(Distribution::new(vec![Dist::Block]))];
        assert_eq!(clone_name("s", &sig, 3), "s__r3");
    }
}
