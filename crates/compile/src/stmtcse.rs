//! Statement-level CSE of reshaped address computations.
//!
//! The paper's Section 7.2 problem is that div/mod and indirect loads are
//! *unsafe* operations the scalar optimizer will not move **across control
//! flow** (out of loops or `if`s).  Within a single statement, however,
//! any `-O3` compiler eliminates syntactically identical subexpressions —
//! a 7-point stencil recomputes the owner of `(i, j)` once, not three
//! times, even in the unoptimized reshaped build.
//!
//! This pass models that baseline: within each assignment, references
//! whose distributed-dimension index expressions duplicate an earlier
//! reference are downgraded:
//!
//! * same index class via an array of the *same geometry* → the divide is
//!   shared but the portion pointer differs:
//!   [`AddrMode::ReshapedSharedDiv`];
//! * same index class *and* same array → everything is shared:
//!   [`AddrMode::ReshapedSharedAll`].
//!
//! It runs before tiling in every configuration, including
//! `OptConfig::none()` — the paper's "no optimizations" row still had the
//! regular `-O3` optimizer.

use dsm_ir::{AddrMode, ArrayId, Dist, DistKind, Expr, Extent, Stmt, Subroutine};

/// Run the pass; returns the number of references downgraded.
pub fn run(sub: &mut Subroutine) -> usize {
    let arrays: Vec<ArrayInfo> = sub
        .arrays
        .iter()
        .map(|a| {
            let reshaped = a.dist_kind == DistKind::Reshaped;
            let dist = a.dist.as_ref().map(|d| d.dims.clone()).unwrap_or_default();
            let dist_dims: Vec<usize> = dist
                .iter()
                .enumerate()
                .filter(|(_, d)| d.is_distributed())
                .map(|(i, _)| i)
                .collect();
            (reshaped, a.dims.clone(), dist, dist_dims)
        })
        .collect();
    let mut n = 0;
    for st in &mut sub.body {
        cse_stmt(st, &arrays, &mut n);
    }
    n
}

type ArrayInfo = (bool, Vec<Extent>, Vec<Dist>, Vec<usize>);

fn cse_stmt(st: &mut Stmt, arrays: &[ArrayInfo], n: &mut usize) {
    match st {
        Stmt::Assign {
            array,
            indices,
            value,
            mode,
        } => {
            // Seen classes within this statement, in evaluation order:
            // the RHS value is evaluated before the store address.
            let mut seen: Vec<(Option<ArrayId>, GeoKey, Vec<Expr>)> = Vec::new();
            cse_expr(value, arrays, &mut seen, n);
            cse_ref(*array, indices, mode, arrays, &mut seen, n);
            for e in indices.iter_mut() {
                cse_expr(e, arrays, &mut seen, n);
            }
        }
        Stmt::SAssign { value, .. } => {
            let mut seen = Vec::new();
            cse_expr(value, arrays, &mut seen, n);
        }
        Stmt::Loop(l) => {
            for s in &mut l.body {
                cse_stmt(s, arrays, n);
            }
        }
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            for s in then_body.iter_mut().chain(else_body) {
                cse_stmt(s, arrays, n);
            }
        }
        _ => {}
    }
}

/// Geometry key: extents + distribution formats (arrays matching in both
/// share divide results, Section 7.1's matching rule).
type GeoKey = (Vec<Extent>, Vec<Dist>);

fn cse_ref(
    array: ArrayId,
    indices: &[Expr],
    mode: &mut AddrMode,
    arrays: &[ArrayInfo],
    seen: &mut Vec<(Option<ArrayId>, GeoKey, Vec<Expr>)>,
    n: &mut usize,
) {
    let (reshaped, dims, dist, dist_dims) = &arrays[array.0];
    if !*reshaped || !matches!(mode, AddrMode::ReshapedRaw | AddrMode::ReshapedRawFp) {
        return;
    }
    let key_exprs: Vec<Expr> = dist_dims.iter().map(|&d| indices[d].clone()).collect();
    let geo: GeoKey = (dims.clone(), dist.clone());
    let div_shared = seen.iter().any(|(_, g, k)| *g == geo && *k == key_exprs);
    let ptr_shared = seen
        .iter()
        .any(|(a, g, k)| *a == Some(array) && *g == geo && *k == key_exprs);
    if ptr_shared {
        *mode = AddrMode::ReshapedSharedAll;
        *n += 1;
    } else if div_shared {
        *mode = AddrMode::ReshapedSharedDiv;
        *n += 1;
    }
    seen.push((Some(array), geo, key_exprs));
}

fn cse_expr(
    e: &mut Expr,
    arrays: &[ArrayInfo],
    seen: &mut Vec<(Option<ArrayId>, GeoKey, Vec<Expr>)>,
    n: &mut usize,
) {
    match e {
        Expr::Load {
            array,
            indices,
            mode,
        } => {
            // Index subexpressions are evaluated before the load itself.
            for i in indices.iter_mut() {
                cse_expr(i, arrays, seen, n);
            }
            cse_ref(*array, indices, mode, arrays, seen, n);
        }
        Expr::Unary(_, x) => cse_expr(x, arrays, seen, n),
        Expr::Binary(_, a, b) => {
            cse_expr(a, arrays, seen, n);
            cse_expr(b, arrays, seen, n);
        }
        Expr::Call(_, args) => {
            for a in args {
                cse_expr(a, arrays, seen, n);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;

    fn modes_of(src: &str) -> Vec<AddrMode> {
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        run(&mut p.subs[0]);
        let mut v = Vec::new();
        for st in &p.subs[0].body {
            st.for_each_ref(&mut |_, _, m, _| v.push(m));
        }
        v
    }

    #[test]
    fn same_array_same_index_shares_everything() {
        // a(i) appears three times: first is raw, later ones fully shared.
        let ms = modes_of(
            "      program main\n      integer i\n      real*8 a(64)\nc$distribute_reshape a(block)\n      do i = 1, 64\n        a(i) = a(i) * a(i) + 1.0\n      enddo\n      end\n",
        );
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            1
        );
        assert_eq!(
            ms.iter()
                .filter(|m| **m == AddrMode::ReshapedSharedAll)
                .count(),
            2
        );
    }

    #[test]
    fn matching_geometry_shares_divide_only() {
        let ms = modes_of(
            "      program main\n      integer i\n      real*8 a(64), b(64)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\n      do i = 1, 64\n        a(i) = b(i)\n      enddo\n      end\n",
        );
        // b(i) evaluated first (raw), store a(i) shares the divide class
        // but needs its own pointer.
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            1
        );
        assert_eq!(
            ms.iter()
                .filter(|m| **m == AddrMode::ReshapedSharedDiv)
                .count(),
            1
        );
    }

    #[test]
    fn distinct_indices_stay_raw() {
        let ms = modes_of(
            "      program main\n      integer i\n      real*8 a(64)\nc$distribute_reshape a(block)\n      do i = 2, 63\n        a(i) = a(i-1) + a(i+1)\n      enddo\n      end\n",
        );
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            3
        );
    }

    #[test]
    fn sharing_does_not_cross_statements() {
        let ms = modes_of(
            "      program main\n      integer i\n      real*8 a(64), c(64)\nc$distribute_reshape a(block)\n      do i = 1, 64\n        c(i) = a(i)\n        a(i) = a(i) + 1.0\n      enddo\n      end\n",
        );
        // Each statement's first a(i) is raw (no hoisting across
        // statements would be wrong to model here? It would actually be
        // legal — but the paper's scalar optimizer refuses because the
        // ops are unsafe; we keep them statement-local).
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            2
        );
    }

    #[test]
    fn star_dims_do_not_affect_the_class() {
        // u(m,i,j,k) with m varying participates in the same (i, j) class.
        let ms = modes_of(
            "      program main\n      integer i, j, m\n      real*8 u(5, 16, 16), r(5, 16, 16)\nc$distribute_reshape u(*, block, block)\nc$distribute_reshape r(*, block, block)\n      do j = 1, 16\n        do i = 1, 16\n          do m = 1, 5\n            r(m, i, j) = u(m, i, j) * 2.0\n          enddo\n        enddo\n      enddo\n      end\n",
        );
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            1
        );
        assert_eq!(
            ms.iter()
                .filter(|m| **m == AddrMode::ReshapedSharedDiv)
                .count(),
            1
        );
    }
}
