//! Hoisting and CSE of reshaped index expressions (Section 7.2).
//!
//! After tiling, a reshaped reference still re-loads the portion pointer
//! (an indirect load from the Figure-3 processor array) on every access:
//! indirect loads and div/mod are unsafe operations the scalar optimizer
//! cannot speculate, so it will not move them out of loops or
//! conditionals.  The paper fixes this by hoisting them explicitly during
//! the transformation of reshaped references, and by marking
//! runtime-constant quantities (like the block size) as constant so CSE
//! survives subroutine calls.
//!
//! This pass upgrades [`AddrMode::ReshapedTiled`] references to
//! [`AddrMode::ReshapedHoisted`] and charges the hoisted work — one
//! pointer load plus a couple of address-setup ALU ops per distinct array
//! — once per loop entry via a [`Stmt::Overhead`] preheader, instead of
//! per iteration.
//!
//! Processor-tile loops (whose variable selects the portion) are hoisting
//! *barriers*: the pointer varies with the tile variable, so nothing is
//! moved across them.  Tile loops are recognized by the `p$`-prefixed
//! variables the tiler introduces.

use std::collections::BTreeSet;

use dsm_ir::{AddrMode, ArrayId, Expr, Stmt, Subroutine};

/// Run the pass over a subroutine. Returns the number of loops that
/// received a hoist preheader.
pub fn run(sub: &mut Subroutine) -> usize {
    let mut body = std::mem::take(&mut sub.body);
    let n = process_block(sub, &mut body);
    sub.body = body;
    n
}

fn is_tile_var(sub: &Subroutine, var: dsm_ir::VarId) -> bool {
    sub.scalars
        .get(var.0)
        .is_some_and(|s| s.name.starts_with("p$"))
}

fn process_block(sub: &Subroutine, body: &mut Vec<Stmt>) -> usize {
    let mut hoisted = 0;
    let mut i = 0;
    while i < body.len() {
        match &mut body[i] {
            Stmt::Loop(l) => {
                if is_tile_var(sub, l.var) {
                    // Barrier: recurse inside only.
                    hoisted += process_block(sub, &mut l.body);
                } else {
                    // Hoist everything tiled in this subtree (stopping at
                    // nested tile loops) out to this loop's preheader.
                    let mut arrays = BTreeSet::new();
                    collect_and_upgrade(sub, &mut l.body, &mut arrays);
                    if !arrays.is_empty() {
                        hoisted += 1;
                        let n = arrays.len() as u32;
                        body.insert(
                            i,
                            Stmt::Overhead {
                                int_divs: 0,
                                indirect_loads: n,
                                int_alu: 2 * n,
                            },
                        );
                        i += 1;
                    }
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                hoisted += process_block(sub, then_body);
                hoisted += process_block(sub, else_body);
            }
            _ => {}
        }
        i += 1;
    }
    hoisted
}

/// Upgrade Tiled → Hoisted in a subtree, collecting the distinct arrays;
/// nested tile loops are barriers handled recursively with their own
/// preheaders.
#[allow(clippy::ptr_arg)] // insertion of preheaders needs the Vec itself
fn collect_and_upgrade(sub: &Subroutine, body: &mut Vec<Stmt>, arrays: &mut BTreeSet<ArrayId>) {
    let mut i = 0;
    while i < body.len() {
        match &mut body[i] {
            Stmt::Loop(l) if is_tile_var(sub, l.var) => {
                let mut inner = BTreeSet::new();
                collect_and_upgrade(sub, &mut l.body, &mut inner);
                if !inner.is_empty() {
                    let n = inner.len() as u32;
                    l.body.insert(
                        0,
                        Stmt::Overhead {
                            int_divs: 0,
                            indirect_loads: n,
                            int_alu: 2 * n,
                        },
                    );
                }
            }
            Stmt::Loop(l) => collect_and_upgrade(sub, &mut l.body, arrays),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                upgrade_expr(cond, arrays);
                collect_and_upgrade(sub, then_body, arrays);
                collect_and_upgrade(sub, else_body, arrays);
            }
            Stmt::Assign {
                array,
                indices,
                value,
                mode,
            } => {
                if *mode == AddrMode::ReshapedTiled {
                    *mode = AddrMode::ReshapedHoisted;
                    arrays.insert(*array);
                }
                for e in indices.iter_mut() {
                    upgrade_expr(e, arrays);
                }
                upgrade_expr(value, arrays);
            }
            Stmt::SAssign { value, .. } => upgrade_expr(value, arrays),
            Stmt::Call { args, .. } => {
                for a in args {
                    match a {
                        dsm_ir::ActualArg::Scalar(e) => upgrade_expr(e, arrays),
                        dsm_ir::ActualArg::ArrayElem(_, idx) => {
                            for e in idx {
                                upgrade_expr(e, arrays);
                            }
                        }
                        dsm_ir::ActualArg::Array(_) => {}
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

fn upgrade_expr(e: &mut Expr, arrays: &mut BTreeSet<ArrayId>) {
    match e {
        Expr::Load {
            array,
            indices,
            mode,
        } => {
            if *mode == AddrMode::ReshapedTiled {
                *mode = AddrMode::ReshapedHoisted;
                arrays.insert(*array);
            }
            for i in indices {
                upgrade_expr(i, arrays);
            }
        }
        Expr::Unary(_, x) => upgrade_expr(x, arrays),
        Expr::Binary(_, a, b) => {
            upgrade_expr(a, arrays);
            upgrade_expr(b, arrays);
        }
        Expr::Call(_, args) => {
            for a in args {
                upgrade_expr(a, arrays);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use crate::tile::{self, TileConfig};
    use dsm_frontend::compile_sources;

    fn compiled(src: &str) -> dsm_ir::Program {
        let a = compile_sources(&[("t.f", src)]).expect("frontend");
        let mut p = lower_program(&a).expect("lower");
        for s in &mut p.subs {
            tile::run(s, &TileConfig::default());
            run(s);
        }
        dsm_ir::validate_program(&p).expect("valid");
        p
    }

    fn modes(sub: &Subroutine) -> Vec<AddrMode> {
        let mut v = Vec::new();
        for st in &sub.body {
            st.for_each_ref(&mut |_, _, m, _| v.push(m));
        }
        v
    }

    fn overhead_loads(sub: &Subroutine) -> u32 {
        let mut n = 0;
        for st in &sub.body {
            st.walk(&mut |s| {
                if let Stmt::Overhead { indirect_loads, .. } = s {
                    n += indirect_loads;
                }
            });
        }
        n
    }

    #[test]
    fn tiled_refs_become_hoisted_with_preheader() {
        let p = compiled(
            "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        let main = p.main_sub();
        let ms = modes(main);
        assert!(ms.contains(&AddrMode::ReshapedHoisted));
        assert!(
            !ms.contains(&AddrMode::ReshapedTiled),
            "all tiled refs upgraded"
        );
        assert_eq!(overhead_loads(main), 1, "one hoisted pointer load");
    }

    #[test]
    fn boundary_raw_refs_untouched() {
        let p = compiled(
            "      program main\n      integer i\n      real*8 a(100), b(100)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 2, 99\n        a(i) = (b(i-1) + b(i) + b(i+1)) / 3\n      enddo\n      end\n",
        );
        let ms = modes(p.main_sub());
        assert!(ms.contains(&AddrMode::ReshapedHoisted));
        assert!(
            ms.contains(&AddrMode::ReshapedRaw),
            "peeled copies keep raw mode"
        );
    }

    #[test]
    fn two_arrays_charge_two_pointer_loads() {
        let p = compiled(
            "      program main\n      integer i\n      real*8 a(64), b(64)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 64\n        a(i) = b(i)\n      enddo\n      end\n",
        );
        assert_eq!(overhead_loads(p.main_sub()), 2);
    }

    #[test]
    fn untouched_without_tiled_refs() {
        let p = compiled(
            "      program main\n      integer i\n      real*8 a(100)\n      do i = 1, 100\n        a(i) = 1.0\n      enddo\n      end\n",
        );
        assert_eq!(overhead_loads(p.main_sub()), 0);
        assert!(modes(p.main_sub()).iter().all(|m| *m == AddrMode::Direct));
    }
}
