//! The pass pipeline (Section 7.4).
//!
//! MIPSpro orders the work as: (1) skewing/tiling/interchange/peeling for
//! reshaped arrays, (2) the regular loop-nest optimizer, (3) transformation
//! of reshaped references with hoisting, (4) CSE across index expressions.
//! Our pipeline mirrors that order — lower, pre-link (propagation +
//! cloning + link checks), skew, tile+peel (with interchange), hoist/CSE,
//! FP div/mod — with [`OptConfig`] toggles for the Table-2 ablation.

use dsm_frontend::error::CompileError;
use dsm_frontend::sema::Analysis;
use dsm_ir::Program;

use crate::prelink::{prelink, PrelinkReport};
use crate::tile::TileConfig;
use crate::{divmod, hoist, lower, skew, stmtcse, tile};

/// Optimization toggles.
///
/// `OptConfig::default()` enables everything (the shipping compiler);
/// [`OptConfig::none`] disables all reshaped-array optimizations — the
/// "Reshape, no optimizations" row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptConfig {
    /// Loop skewing of invariant-offset references (Section 7.1).
    pub skew: bool,
    /// Tiling + peeling (and affinity scheduling lowering, Figure 2).
    pub tile_peel: bool,
    /// Hoisting + CSE of index expressions (Section 7.2).
    pub hoist_cse: bool,
    /// Integer div/mod through the FP unit (Section 7.3).
    pub fp_divmod: bool,
    /// Processor-tile loops outermost in parallel nests (Section 7.1.1).
    pub interchange: bool,
}

impl Default for OptConfig {
    fn default() -> Self {
        OptConfig {
            skew: true,
            tile_peel: true,
            hoist_cse: true,
            fp_divmod: true,
            interchange: true,
        }
    }
}

impl OptConfig {
    /// All reshaped-array optimizations off (Table 2, first row).
    pub fn none() -> Self {
        OptConfig {
            skew: false,
            tile_peel: false,
            hoist_cse: false,
            fp_divmod: false,
            interchange: false,
        }
    }

    /// Tiling and peeling only (Table 2, second row).
    pub fn tile_peel_only() -> Self {
        OptConfig {
            skew: true,
            tile_peel: true,
            ..Self::none()
        }
    }

    /// Tiling, peeling and hoisting/CSE (Table 2, third row).
    pub fn tile_peel_hoist() -> Self {
        OptConfig {
            hoist_cse: true,
            ..Self::tile_peel_only()
        }
    }
}

/// Outcome of a full compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiled {
    /// The optimized program.
    pub program: Program,
    /// Pre-linker statistics (clones, recompilations).
    pub prelink: PrelinkReport,
}

/// Compile a checked analysis into an optimized IR program.
///
/// # Errors
///
/// Returns lowering and link-time diagnostics.
pub fn compile_analysis(
    analysis: &Analysis,
    opt: &OptConfig,
) -> Result<Compiled, Vec<CompileError>> {
    let mut program = lower::lower_program(analysis)?;
    let report = prelink(&mut program)?;
    for sub in &mut program.subs {
        // Statement-level CSE models the baseline -O3 scalar optimizer and
        // is always on (the paper's "no optimizations" build had it too).
        stmtcse::run(sub);
        if opt.skew {
            skew::run(sub);
        }
        if opt.tile_peel {
            tile::run(
                sub,
                &TileConfig {
                    interchange: opt.interchange,
                },
            );
        }
        if opt.hoist_cse {
            hoist::run(sub);
        }
        if opt.fp_divmod {
            divmod::run(sub);
        }
    }
    if let Err(e) = dsm_ir::validate_program(&program) {
        return Err(vec![CompileError::new(
            dsm_frontend::error::Span::default(),
            dsm_frontend::error::ErrorKind::Sema,
            "<pipeline>",
            format!("internal: optimized IR invalid: {e}"),
        )]);
    }
    Ok(Compiled {
        program,
        prelink: report,
    })
}

/// Convenience: frontend + pipeline over in-memory sources.
///
/// # Errors
///
/// Returns every frontend, lowering and link diagnostic.
pub fn compile_strings(
    sources: &[(&str, &str)],
    opt: &OptConfig,
) -> Result<Compiled, Vec<CompileError>> {
    let analysis = dsm_frontend::compile_sources(sources)?;
    compile_analysis(&analysis, opt)
}

/// [`compile_strings`] over owned `(name, text)` pairs — the form every
/// driver (`dsmfc`, `dsmtune`, `dsmfuzz`, the advisor's candidate waves,
/// the daemon) holds its sources in, so none of them needs its own
/// borrow dance.
///
/// # Errors
///
/// Returns every frontend, lowering and link diagnostic.
pub fn compile_sources(
    sources: &[(String, String)],
    opt: &OptConfig,
) -> Result<Compiled, Vec<CompileError>> {
    let borrowed: Vec<(&str, &str)> = sources
        .iter()
        .map(|(n, t)| (n.as_str(), t.as_str()))
        .collect();
    compile_strings(&borrowed, opt)
}

/// Read source files into the `(name, text)` pairs [`compile_sources`]
/// takes — the one loading loop every CLI shares.
///
/// # Errors
///
/// Returns a ready-to-print message naming the first unreadable file
/// (``cannot read `path`: reason``); callers prefix their tool name.
pub fn load_sources(paths: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut sources = Vec::with_capacity(paths.len());
    for p in paths {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"))?;
        sources.push((p.clone(), text));
    }
    Ok(sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_ir::{AddrMode, Stmt};

    const STENCIL: &str = "      program main\n      integer i\n      real*8 a(100), b(100)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 2, 99\n        a(i) = (b(i-1) + b(i) + b(i+1)) / 3\n      enddo\n      end\n";

    fn modes_of(src: &str, opt: &OptConfig) -> Vec<AddrMode> {
        let c = compile_strings(&[("t.f", src)], opt).expect("compiles");
        let mut v = Vec::new();
        for st in &c.program.main_sub().body {
            st.for_each_ref(&mut |_, _, m, _| v.push(m));
        }
        v
    }

    #[test]
    fn opt_none_keeps_raw_but_fp_off() {
        let ms = modes_of(STENCIL, &OptConfig::none());
        // Loads b(i-1), b(i), b(i+1) are distinct classes (raw); the store
        // a(i) shares b(i)'s divide through matching geometry (baseline
        // statement-level CSE is always on).
        assert_eq!(
            ms.iter().filter(|m| **m == AddrMode::ReshapedRaw).count(),
            3,
            "{ms:?}"
        );
        assert_eq!(
            ms.iter()
                .filter(|m| **m == AddrMode::ReshapedSharedDiv)
                .count(),
            1
        );
        assert!(!ms.contains(&AddrMode::ReshapedRawFp));
    }

    #[test]
    fn tile_peel_only_leaves_tiled_modes() {
        let ms = modes_of(STENCIL, &OptConfig::tile_peel_only());
        assert!(ms.contains(&AddrMode::ReshapedTiled));
        assert!(!ms.contains(&AddrMode::ReshapedHoisted));
    }

    #[test]
    fn full_pipeline_reaches_hoisted() {
        let ms = modes_of(STENCIL, &OptConfig::default());
        assert!(ms.contains(&AddrMode::ReshapedHoisted));
        // Boundary peels remain, now FP-emulated.
        assert!(ms.contains(&AddrMode::ReshapedRawFp));
        assert!(!ms.contains(&AddrMode::ReshapedRaw));
    }

    #[test]
    fn ablation_configs_are_ordered() {
        // Each step strictly extends the previous one's flags.
        let n = OptConfig::none();
        let t = OptConfig::tile_peel_only();
        let h = OptConfig::tile_peel_hoist();
        let f = OptConfig::default();
        assert!(!n.tile_peel && t.tile_peel);
        assert!(!t.hoist_cse && h.hoist_cse);
        assert!(!h.fp_divmod && f.fp_divmod);
    }

    #[test]
    fn propagation_and_optimization_compose() {
        // A reshaped array passed to a subroutine: the clone's loop must
        // end up tiled and hoisted.
        let src = "      program main\n      real*8 a(100)\nc$distribute_reshape a(block)\n      call init(a)\n      end\n      subroutine init(x)\n      integer i\n      real*8 x(100)\n      do i = 1, 100\n        x(i) = i\n      enddo\n      end\n";
        let c = compile_strings(&[("t.f", src)], &OptConfig::default()).unwrap();
        assert_eq!(c.prelink.clones_created, 1);
        let clone = c
            .program
            .subs
            .iter()
            .find(|s| s.name.starts_with("init__r"))
            .unwrap();
        let mut ms = Vec::new();
        for st in &clone.body {
            st.for_each_ref(&mut |_, _, m, _| ms.push(m));
        }
        assert!(ms.contains(&AddrMode::ReshapedHoisted), "{ms:?}");
    }

    #[test]
    fn serial_tiling_changes_loop_count() {
        let src = "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(block)\n      do i = 1, 100\n        a(i) = i\n      enddo\n      end\n";
        let none = compile_strings(&[("t.f", src)], &OptConfig::none()).unwrap();
        let full = compile_strings(&[("t.f", src)], &OptConfig::default()).unwrap();
        let count = |p: &dsm_ir::Program| {
            let mut n = 0;
            for st in &p.main_sub().body {
                st.walk(&mut |s| {
                    if matches!(s, Stmt::Loop(_)) {
                        n += 1;
                    }
                });
            }
            n
        };
        assert_eq!(count(&none.program), 1);
        assert!(count(&full.program) >= 2, "tiling adds the processor loop");
    }
}
