//! Shadow files.
//!
//! For each user source file the compiler maintains a *shadow file*
//! (Section 5 of the paper) recording:
//!
//! * every subroutine defined in the file (with any reshaped-distribution
//!   directives propagated into it),
//! * every call in the file that passes a reshaped array as an actual
//!   argument (with the distribution combination),
//! * every declaration of a common block, with shape/size/distribution of
//!   each member (Section 6's link-time checks read these).
//!
//! The pre-linker ([`crate::prelink::prelink`]) examines all shadow files with a
//! global view of the program, verifies common-block consistency, and
//! matches call entries against definition entries to request clones.

use dsm_ir::{ActualArg, ArrayId, DistKind, Distribution, Extent, Program, Stmt, Subroutine};

/// The distribution combination of a call's actual arguments: one entry
/// per argument, `Some(dist)` when the argument is a *whole* reshaped
/// array (the only case the paper propagates — an element of a reshaped
/// array is received as an ordinary Fortran array).
pub type CloneSig = Vec<Option<Distribution>>;

/// A subroutine definition record.
#[derive(Debug, Clone, PartialEq)]
pub struct DefEntry {
    /// Subroutine name.
    pub name: String,
    /// Number of formal parameters.
    pub nparams: usize,
}

/// A call-site record.
#[derive(Debug, Clone, PartialEq)]
pub struct CallEntry {
    /// Calling subroutine.
    pub caller: String,
    /// Callee name as written.
    pub callee: String,
    /// Argument distribution combination.
    pub sig: CloneSig,
}

/// Shape/distribution info of one common-block member.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberInfo {
    /// Member array name.
    pub name: String,
    /// Declared extents.
    pub dims: Vec<Extent>,
    /// Directive kind.
    pub dist_kind: DistKind,
    /// Distribution if any.
    pub dist: Option<Distribution>,
}

/// One declaration of a common block (each declaring unit contributes one).
#[derive(Debug, Clone, PartialEq)]
pub struct CommonEntry {
    /// Declaring unit.
    pub unit: String,
    /// Block name.
    pub block: String,
    /// Members in declaration order.
    pub members: Vec<MemberInfo>,
}

/// The shadow file of one source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShadowFile {
    /// Source-file index.
    pub file: usize,
    /// Definitions in the file.
    pub defs: Vec<DefEntry>,
    /// Calls passing reshaped arrays.
    pub calls: Vec<CallEntry>,
    /// Common-block declarations.
    pub commons: Vec<CommonEntry>,
}

/// Compute the clone signature of a call's argument list as seen from
/// `caller` (whose formals may already carry propagated distributions).
pub fn call_signature(caller: &Subroutine, args: &[ActualArg]) -> CloneSig {
    args.iter()
        .map(|a| match a {
            ActualArg::Array(id) => {
                let decl = &caller.arrays[id.0];
                if decl.dist_kind == DistKind::Reshaped {
                    decl.dist.clone()
                } else {
                    None
                }
            }
            // An element of a reshaped array passes a portion, received as
            // a standard Fortran array (Section 3.2.1).
            ActualArg::ArrayElem(..) | ActualArg::Scalar(_) => None,
        })
        .collect()
}

/// Build the shadow files of a lowered program (one per source file).
pub fn build_shadow_files(p: &Program) -> Vec<ShadowFile> {
    let mut files: Vec<ShadowFile> = (0..p.files.len().max(1))
        .map(|file| ShadowFile {
            file,
            ..Default::default()
        })
        .collect();
    for sub in &p.subs {
        let f = &mut files[sub.source_file.min(p.files.len().saturating_sub(1))];
        f.defs.push(DefEntry {
            name: sub.name.clone(),
            nparams: sub.params.len(),
        });
        // Common declarations made by this unit.
        let mut blocks: Vec<String> = Vec::new();
        for a in &sub.arrays {
            if let dsm_ir::Storage::Common { block, .. } = &a.storage {
                if !blocks.contains(block) {
                    blocks.push(block.clone());
                }
            }
        }
        for block in blocks {
            let mut members: Vec<(usize, MemberInfo)> = sub
                .arrays
                .iter()
                .filter_map(|a| match &a.storage {
                    dsm_ir::Storage::Common { block: b, member } if *b == block => Some((
                        *member,
                        MemberInfo {
                            name: a.name.clone(),
                            dims: a.dims.clone(),
                            dist_kind: a.dist_kind,
                            dist: a.dist.clone(),
                        },
                    )),
                    _ => None,
                })
                .collect();
            members.sort_by_key(|(m, _)| *m);
            f.commons.push(CommonEntry {
                unit: sub.name.clone(),
                block,
                members: members.into_iter().map(|(_, m)| m).collect(),
            });
        }
        // Calls passing reshaped arrays.
        for st in &sub.body {
            st.walk(&mut |s| {
                if let Stmt::Call { name, args } = s {
                    let sig = call_signature(sub, args);
                    if sig.iter().any(Option::is_some) {
                        f.calls.push(CallEntry {
                            caller: sub.name.clone(),
                            callee: name.clone(),
                            sig,
                        });
                    }
                }
            });
        }
    }
    files
}

/// Arrays of `sub` that are whole reshaped actuals anywhere in `args`.
pub fn reshaped_actuals(sub: &Subroutine, args: &[ActualArg]) -> Vec<ArrayId> {
    args.iter()
        .filter_map(|a| match a {
            ActualArg::Array(id) if sub.arrays[id.0].dist_kind == DistKind::Reshaped => Some(*id),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;

    fn program(files: &[(&str, &str)]) -> Program {
        let a = compile_sources(files).expect("frontend ok");
        lower_program(&a).expect("lowering ok")
    }

    #[test]
    fn shadow_records_defs_calls_and_commons() {
        let p = program(&[
            (
                "main.f",
                "      program main\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(block)\n      call s(a)\n      end\n",
            ),
            ("sub.f", "      subroutine s(x)\n      real*8 x(100)\n      end\n"),
        ]);
        let sf = build_shadow_files(&p);
        assert_eq!(sf.len(), 2);
        assert_eq!(sf[0].defs[0].name, "main");
        assert_eq!(sf[1].defs[0].name, "s");
        assert_eq!(sf[0].calls.len(), 1);
        assert_eq!(sf[0].calls[0].callee, "s");
        assert!(sf[0].calls[0].sig[0].is_some());
        assert_eq!(sf[0].commons.len(), 1);
        assert_eq!(sf[0].commons[0].members[0].dist_kind, DistKind::Reshaped);
    }

    #[test]
    fn non_reshaped_calls_not_recorded() {
        let p = program(&[(
            "t.f",
            "      program main\n      real*8 a(10)\nc$distribute a(block)\n      call s(a)\n      end\n      subroutine s(x)\n      real*8 x(10)\n      end\n",
        )]);
        let sf = build_shadow_files(&p);
        assert!(
            sf[0].calls.is_empty(),
            "regular arrays do not generate shadow entries"
        );
    }

    #[test]
    fn element_of_reshaped_is_not_whole_array_sig() {
        let p = program(&[(
            "t.f",
            "      program main\n      integer i\n      real*8 a(1000)\nc$distribute_reshape a(cyclic(5))\n      i = 1\n      call mysub(a(i))\n      end\n      subroutine mysub(x)\n      real*8 x(5)\n      end\n",
        )]);
        let sf = build_shadow_files(&p);
        // Element actual ⇒ signature all-None ⇒ no propagation entry.
        assert!(sf[0].calls.is_empty());
    }
}
