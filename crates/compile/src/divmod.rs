//! Integer div/mod through the floating-point unit (Section 7.3).
//!
//! A 32-bit integer divide takes ~35 cycles on the R10000 and is not
//! pipelined; the corresponding FP operation takes 11 cycles.  MIPSpro
//! therefore emulates the integer divide in software on the FP unit for
//! reshaped-array addressing; besides being cheaper, the emulation lets
//! the reciprocal of invariant operands be hoisted.
//!
//! In this model the pass rewrites the remaining raw reshaped references
//! ([`AddrMode::ReshapedRaw`] — anything tiling could not reach) to
//! [`AddrMode::ReshapedRawFp`], switching their per-access addressing
//! charge from `int_div` to `fp_emulated_div` cycles.

use dsm_ir::{AddrMode, Expr, Stmt, Subroutine};

/// Rewrite raw reshaped references to use FP-emulated div/mod. Returns the
/// number of references rewritten.
pub fn run(sub: &mut Subroutine) -> usize {
    let mut n = 0;
    for st in &mut sub.body {
        rewrite_stmt(st, &mut n);
    }
    n
}

fn upgrade(mode: &mut AddrMode, n: &mut usize) {
    if *mode == AddrMode::ReshapedRaw {
        *mode = AddrMode::ReshapedRawFp;
        *n += 1;
    }
}

fn rewrite_stmt(st: &mut Stmt, n: &mut usize) {
    match st {
        Stmt::Assign {
            indices,
            value,
            mode,
            ..
        } => {
            upgrade(mode, n);
            for e in indices.iter_mut() {
                rewrite_expr(e, n);
            }
            rewrite_expr(value, n);
        }
        Stmt::SAssign { value, .. } => rewrite_expr(value, n),
        Stmt::Loop(l) => {
            rewrite_expr(&mut l.lb, n);
            rewrite_expr(&mut l.ub, n);
            rewrite_expr(&mut l.step, n);
            for s in &mut l.body {
                rewrite_stmt(s, n);
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            rewrite_expr(cond, n);
            for s in then_body.iter_mut().chain(else_body) {
                rewrite_stmt(s, n);
            }
        }
        Stmt::Call { args, .. } => {
            for a in args {
                match a {
                    dsm_ir::ActualArg::Scalar(e) => rewrite_expr(e, n),
                    dsm_ir::ActualArg::ArrayElem(_, idx) => {
                        for e in idx {
                            rewrite_expr(e, n);
                        }
                    }
                    dsm_ir::ActualArg::Array(_) => {}
                }
            }
        }
        _ => {}
    }
}

fn rewrite_expr(e: &mut Expr, n: &mut usize) {
    match e {
        Expr::Load { indices, mode, .. } => {
            upgrade(mode, n);
            for i in indices {
                rewrite_expr(i, n);
            }
        }
        Expr::Unary(_, x) => rewrite_expr(x, n),
        Expr::Binary(_, a, b) => {
            rewrite_expr(a, n);
            rewrite_expr(b, n);
        }
        Expr::Call(_, args) => {
            for a in args {
                rewrite_expr(a, n);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;

    #[test]
    fn raw_refs_become_fp_emulated() {
        let src = "      program main\n      integer i\n      real*8 a(100)\nc$distribute_reshape a(cyclic)\n      do i = 1, 100\n        a(i) = a(i) + 1\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        let n = run(&mut p.subs[0]);
        assert_eq!(n, 2, "store and load rewritten");
        let mut ms = Vec::new();
        for st in &p.subs[0].body {
            st.for_each_ref(&mut |_, _, m, _| ms.push(m));
        }
        assert!(ms.iter().all(|m| *m == AddrMode::ReshapedRawFp));
    }

    #[test]
    fn direct_refs_untouched() {
        let src = "      program main\n      integer i\n      real*8 a(100)\n      do i = 1, 100\n        a(i) = 0.0\n      enddo\n      end\n";
        let a = compile_sources(&[("t.f", src)]).unwrap();
        let mut p = lower_program(&a).unwrap();
        assert_eq!(run(&mut p.subs[0]), 0);
    }
}
