//! # dsm-compile
//!
//! The directive compiler of this PLDI'97 reproduction: everything the
//! paper's Sections 4–7 describe happening inside MIPSpro.
//!
//! * [`lower`] — checked AST → `dsm-ir`, with reshaped references marked
//!   [`dsm_ir::AddrMode::ReshapedRaw`] (the untransformed Table-1 form);
//! * [`shadow`] / [`mod@prelink`] / [`clone`] — the shadow-file mechanism:
//!   propagation of `distribute_reshape` directives down the call graph
//!   across separately compiled files, cloning one subroutine instance per
//!   distinct incoming distribution combination, and the link-time
//!   common-block consistency checks (Sections 5 and 6);
//! * [`tile`] — affinity scheduling (Figure 2) and tiling + peeling of
//!   loops over reshaped arrays, with processor-tile loops hoisted
//!   outermost for parallel nests (Section 7.1);
//! * [`skew`] — loop skewing of `A(i + c*k)` references (Section 7.1);
//! * [`hoist`] — hoisting of indirect portion-pointer loads and div/mod
//!   out of inner loops plus CSE accounting (Section 7.2);
//! * [`divmod`] — div/mod through the FP unit (Section 7.3);
//! * [`pipeline`] — the ordered pass manager with [`OptConfig`] toggles
//!   used by the Table-2 ablation.

pub mod clone;
pub mod divmod;
pub mod hoist;
pub mod lower;
pub mod pipeline;
pub mod prelink;
pub mod shadow;
pub mod skew;
pub mod stmtcse;
pub mod tile;

pub use lower::lower_program;
pub use pipeline::{compile_analysis, compile_sources, compile_strings, load_sources, OptConfig};
pub use prelink::{prelink, PrelinkReport};
