//! The pre-linker.
//!
//! Invoked "at link time" with a global view of every compilation unit's
//! shadow file (Section 5), the pre-linker:
//!
//! 1. verifies that common blocks containing reshaped arrays are declared
//!    consistently across all files — same member offsets, shapes and
//!    distributions (the Section 6 link-time check);
//! 2. propagates `distribute_reshape` directives down the call graph,
//!    requesting a clone of each callee per distinct incoming distribution
//!    combination and transparently "re-invoking the compiler" (here:
//!    [`crate::clone::specialize`]) to create it;
//! 3. rewrites call sites to name the clones, and reports how many clones
//!    and recompilations were needed.
//!
//! Requests whose definitions never materialize (callee unknown) or whose
//! argument lists cannot match are link errors.

use std::collections::HashMap;

use dsm_frontend::error::{CompileError, ErrorKind, Span};
use dsm_ir::{Program, Stmt, Subroutine};

use crate::clone::{clone_name, specialize};
use crate::shadow::{build_shadow_files, call_signature, CloneSig, CommonEntry};

/// Summary of the pre-link phase.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PrelinkReport {
    /// Clones created (beyond originals).
    pub clones_created: usize,
    /// Subroutine instances processed ("recompilations").
    pub recompilations: usize,
    /// Common blocks verified.
    pub commons_checked: usize,
}

/// Run the pre-linker over a lowered program, in place.
///
/// # Errors
///
/// Returns link-time diagnostics: inconsistent common blocks with reshaped
/// members, calls to unknown subroutines, and signature mismatches.
pub fn prelink(program: &mut Program) -> Result<PrelinkReport, Vec<CompileError>> {
    let mut errors = Vec::new();
    let mut report = PrelinkReport::default();

    check_commons(program, &mut errors, &mut report);

    // Instance map: (base name, signature) -> clone name.
    let mut instances: HashMap<(String, CloneSig), String> = HashMap::new();
    let mut counter = 0usize;
    // Names of processed instances (bodies already rewritten).
    let mut processed: Vec<String> = Vec::new();
    let main_name = program.subs[program.main].name.clone();
    let main_params = program.subs[program.main].params.len();
    let mut worklist: Vec<String> = vec![main_name.clone()];
    instances.insert(
        (main_name, vec![None; main_params]),
        program.subs[program.main].name.clone(),
    );

    while let Some(name) = worklist.pop() {
        if processed.contains(&name) {
            continue;
        }
        processed.push(name.clone());
        report.recompilations += 1;
        let Some(idx) = program.sub_named(&name).map(|s| s.0) else {
            continue;
        };
        // Collect call rewrites first (immutable pass), then apply.
        let mut new_clones: Vec<Subroutine> = Vec::new();
        {
            let caller = program.subs[idx].clone();
            let mut rewrites: Vec<(String, CloneSig, String)> = Vec::new();
            for st in &caller.body {
                st.walk(&mut |s| {
                    if let Stmt::Call { name: callee, args } = s {
                        let sig = call_signature(&caller, args);
                        let key = (callee.clone(), sig.clone());
                        if let Some(existing) = instances.get(&key) {
                            if existing != callee {
                                rewrites.push((callee.clone(), sig.clone(), existing.clone()));
                            } else {
                                // default instance; still needs processing
                                rewrites.push((callee.clone(), sig.clone(), existing.clone()));
                            }
                            return;
                        }
                        // Need a (possibly trivial) new instance.
                        let Some(base_idx) = program.sub_named(callee).map(|s| s.0) else {
                            errors.push(link_err(format!(
                                "call to `{callee}` from `{}` has no definition",
                                caller.name
                            )));
                            return;
                        };
                        let base = &program.subs[base_idx];
                        counter += 1;
                        let cname = clone_name(callee, &sig, counter);
                        if cname == *callee {
                            // Default signature: reuse the original body.
                            if sig.len() != base.params.len() {
                                errors.push(link_err(format!(
                                    "`{}` takes {} arguments but `{}` passes {}",
                                    callee,
                                    base.params.len(),
                                    caller.name,
                                    sig.len()
                                )));
                                return;
                            }
                            instances.insert(key, cname.clone());
                            rewrites.push((callee.clone(), sig.clone(), cname));
                        } else {
                            match specialize(base, &sig, cname.clone()) {
                                Ok(cl) => {
                                    instances.insert(key, cname.clone());
                                    new_clones.push(cl);
                                    rewrites.push((callee.clone(), sig.clone(), cname));
                                }
                                Err(m) => errors.push(link_err(m)),
                            }
                        }
                    }
                });
            }
            // Apply rewrites to the real body.
            let caller_arrays = program.subs[idx].arrays.clone();
            for st in &mut program.subs[idx].body {
                rewrite_calls(st, &|callee, args| {
                    // Recompute signature against the caller's decls.
                    let fake = Subroutine {
                        arrays: caller_arrays.clone(),
                        ..caller.clone()
                    };
                    let sig = call_signature(&fake, args);
                    instances.get(&(callee.to_string(), sig)).cloned()
                });
            }
            for (_, _, target) in rewrites {
                if !worklist.contains(&target) && !processed.contains(&target) {
                    worklist.push(target);
                }
            }
        }
        report.clones_created += new_clones.len();
        program.subs.extend(new_clones);
    }

    if errors.is_empty() {
        Ok(report)
    } else {
        Err(errors)
    }
}

fn link_err(msg: String) -> CompileError {
    CompileError::new(Span::default(), ErrorKind::Link, "<prelink>", msg)
}

fn rewrite_calls(st: &mut Stmt, resolve: &impl Fn(&str, &[dsm_ir::ActualArg]) -> Option<String>) {
    match st {
        Stmt::Call { name, args } => {
            if let Some(n) = resolve(name, args) {
                *name = n;
            }
        }
        Stmt::Loop(l) => {
            for s in &mut l.body {
                rewrite_calls(s, resolve);
            }
        }
        Stmt::If {
            then_body,
            else_body,
            ..
        } => {
            for s in then_body.iter_mut().chain(else_body) {
                rewrite_calls(s, resolve);
            }
        }
        _ => {}
    }
}

/// Section 6 link-time check: all declarations of a common block that has
/// reshaped members must agree on member count, shapes, and distributions.
fn check_commons(program: &Program, errors: &mut Vec<CompileError>, report: &mut PrelinkReport) {
    let shadow = build_shadow_files(program);
    let mut by_block: HashMap<String, Vec<&CommonEntry>> = HashMap::new();
    for sf in &shadow {
        for c in &sf.commons {
            by_block.entry(c.block.clone()).or_default().push(c);
        }
    }
    for (block, decls) in by_block {
        report.commons_checked += 1;
        let any_reshaped = decls.iter().any(|d| {
            d.members
                .iter()
                .any(|m| m.dist_kind == dsm_ir::DistKind::Reshaped)
        });
        if !any_reshaped {
            // "Common blocks without reshaped arrays are not affected."
            continue;
        }
        let canon = decls[0];
        for d in &decls[1..] {
            if d.members.len() != canon.members.len() {
                errors.push(link_err(format!(
                    "common /{block}/ declared with {} members in `{}` but {} in `{}`",
                    canon.members.len(),
                    canon.unit,
                    d.members.len(),
                    d.unit
                )));
                continue;
            }
            for (i, (a, b)) in canon.members.iter().zip(&d.members).enumerate() {
                if a.dims != b.dims {
                    errors.push(link_err(format!(
                        "common /{block}/ member {} has shape {:?} in `{}` but {:?} in `{}`",
                        i + 1,
                        a.dims,
                        canon.unit,
                        b.dims,
                        d.unit
                    )));
                }
                if a.dist_kind != b.dist_kind || a.dist != b.dist {
                    errors.push(link_err(format!(
                        "common /{block}/ member `{}` distributed {} {} in `{}` but {} {} in `{}`",
                        a.name,
                        a.dist_kind,
                        a.dist.as_ref().map_or(String::from("-"), |d| d.to_string()),
                        canon.unit,
                        b.dist_kind,
                        b.dist.as_ref().map_or(String::from("-"), |d| d.to_string()),
                        d.unit
                    )));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_program;
    use dsm_frontend::compile_sources;
    use dsm_ir::{AddrMode, DistKind};

    fn prelinked(files: &[(&str, &str)]) -> (Program, PrelinkReport) {
        let a = compile_sources(files).expect("frontend ok");
        let mut p = lower_program(&a).expect("lowering ok");
        let r = prelink(&mut p).expect("prelink ok");
        (p, r)
    }

    fn prelink_errs(files: &[(&str, &str)]) -> Vec<CompileError> {
        let a = compile_sources(files).expect("frontend ok");
        let mut p = lower_program(&a).expect("lowering ok");
        prelink(&mut p).expect_err("expected link errors")
    }

    #[test]
    fn reshape_propagates_across_files_with_clone() {
        let (p, r) = prelinked(&[
            (
                "main.f",
                "      program main\n      real*8 a(100)\nc$distribute_reshape a(block)\n      call s(a)\n      end\n",
            ),
            (
                "sub.f",
                "      subroutine s(x)\n      integer i\n      real*8 x(100)\n      do i = 1, 100\n        x(i) = i\n      enddo\n      end\n",
            ),
        ]);
        assert_eq!(r.clones_created, 1);
        let clone = p
            .subs
            .iter()
            .find(|s| s.name.starts_with("s__r"))
            .expect("clone exists");
        assert_eq!(clone.arrays[0].dist_kind, DistKind::Reshaped);
        // Call site rewritten.
        let Stmt::Call { name, .. } = &p.main_sub().body[0] else {
            panic!()
        };
        assert_eq!(name, &clone.name);
        // Clone's refs are reshaped-raw.
        let Stmt::Loop(l) = &clone.body[0] else {
            panic!()
        };
        let Stmt::Assign { mode, .. } = &l.body[0] else {
            panic!()
        };
        assert_eq!(*mode, AddrMode::ReshapedRaw);
    }

    #[test]
    fn propagation_goes_down_call_chains() {
        let (p, r) = prelinked(&[(
            "t.f",
            "      program main\n      real*8 a(64)\nc$distribute_reshape a(block)\n      call s1(a)\n      end\n      subroutine s1(x)\n      real*8 x(64)\n      call s2(x)\n      end\n      subroutine s2(y)\n      real*8 y(64)\n      y(1) = 0.0\n      end\n",
        )]);
        assert_eq!(r.clones_created, 2, "both levels cloned");
        assert!(p.subs.iter().any(|s| s.name.starts_with("s2__r")));
        // The s1 clone calls the s2 clone.
        let s1c = p.subs.iter().find(|s| s.name.starts_with("s1__r")).unwrap();
        let Stmt::Call { name, .. } = &s1c.body[0] else {
            panic!()
        };
        assert!(name.starts_with("s2__r"));
    }

    #[test]
    fn same_signature_shares_one_clone() {
        let (p, r) = prelinked(&[(
            "t.f",
            "      program main\n      real*8 a(64), b(64)\nc$distribute_reshape a(block)\nc$distribute_reshape b(block)\n      call s(a)\n      call s(b)\n      end\n      subroutine s(x)\n      real*8 x(64)\n      x(1) = 1.0\n      end\n",
        )]);
        assert_eq!(
            r.clones_created, 1,
            "same distribution combination reuses the clone"
        );
        assert_eq!(
            p.subs.iter().filter(|s| s.name.starts_with("s__r")).count(),
            1
        );
    }

    #[test]
    fn different_signatures_get_distinct_clones() {
        let (p, r) = prelinked(&[(
            "t.f",
            "      program main\n      real*8 a(64), b(64)\nc$distribute_reshape a(block)\nc$distribute_reshape b(cyclic(4))\n      call s(a)\n      call s(b)\n      end\n      subroutine s(x)\n      real*8 x(64)\n      x(1) = 1.0\n      end\n",
        )]);
        assert_eq!(r.clones_created, 2);
        let _ = p;
    }

    #[test]
    fn mixed_call_keeps_original_for_plain_args() {
        let (p, _r) = prelinked(&[(
            "t.f",
            "      program main\n      real*8 a(64), c(64)\nc$distribute_reshape a(block)\n      call s(a)\n      call s(c)\n      end\n      subroutine s(x)\n      real*8 x(64)\n      x(1) = 1.0\n      end\n",
        )]);
        // Second call keeps the original name `s`.
        let Stmt::Call { name, .. } = &p.main_sub().body[1] else {
            panic!()
        };
        assert_eq!(name, "s");
        // Original body unchanged (Direct refs).
        let orig = p.subs.iter().find(|s| s.name == "s").unwrap();
        let Stmt::Assign { mode, .. } = &orig.body[0] else {
            panic!()
        };
        assert_eq!(*mode, AddrMode::Direct);
    }

    #[test]
    fn unknown_callee_is_link_error() {
        let e = prelink_errs(&[(
            "t.f",
            "      program main\n      real*8 a(64)\nc$distribute_reshape a(block)\n      call ghost(a)\n      end\n",
        )]);
        assert!(e
            .iter()
            .any(|d| d.kind == ErrorKind::Link && d.msg.contains("ghost")));
    }

    #[test]
    fn inconsistent_common_with_reshape_is_link_error() {
        let e = prelink_errs(&[
            (
                "a.f",
                "      program main\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(block)\n      call s\n      end\n",
            ),
            (
                "b.f",
                "      subroutine s\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(cyclic)\n      a(1) = 0.0\n      end\n",
            ),
        ]);
        assert!(
            e.iter()
                .any(|d| d.kind == ErrorKind::Link && d.msg.contains("/blk/")),
            "{e:?}"
        );
    }

    #[test]
    fn consistent_common_with_reshape_links() {
        let (_, r) = prelinked(&[
            (
                "a.f",
                "      program main\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(block)\n      call s\n      end\n",
            ),
            (
                "b.f",
                "      subroutine s\n      real*8 a(100)\n      common /blk/ a\nc$distribute_reshape a(block)\n      a(1) = 0.0\n      end\n",
            ),
        ]);
        assert_eq!(r.commons_checked, 1);
    }

    #[test]
    fn inconsistent_common_without_reshape_tolerated() {
        // The paper: "common blocks without reshaped arrays are not
        // affected" by the link-time rule.
        let (_, r) = prelinked(&[
            (
                "a.f",
                "      program main\n      real*8 a(100)\n      common /blk/ a\n      call s\n      end\n",
            ),
            (
                "b.f",
                "      subroutine s\n      real*8 a(50)\n      common /blk/ a\n      a(1) = 0.0\n      end\n",
            ),
        ]);
        assert_eq!(r.commons_checked, 1);
    }

    #[test]
    fn no_clones_for_unreachable_or_plain_calls() {
        // The paper removes redundant clone requests; our on-demand
        // worklist never creates them in the first place: a subroutine
        // that is never called with a reshaped actual gets no clone, and
        // unreachable subroutines are left alone entirely.
        let (p, r) = prelinked(&[(
            "t.f",
            "      program main\n      real*8 c(64)\n      call s(c)\n      end\n      subroutine s(x)\n      real*8 x(64)\n      x(1) = 1.0\n      end\n      subroutine unused(y)\n      real*8 y(64)\n      y(1) = 2.0\n      end\n",
        )]);
        assert_eq!(r.clones_created, 0);
        assert_eq!(p.subs.iter().filter(|s| s.name.contains("__r")).count(), 0);
    }

    #[test]
    fn arity_mismatch_is_link_error() {
        let e = prelink_errs(&[(
            "t.f",
            "      program main\n      real*8 a(64)\nc$distribute_reshape a(block)\n      call s(a, a)\n      end\n      subroutine s(x)\n      real*8 x(64)\n      end\n",
        )]);
        assert!(e.iter().any(|d| d.msg.contains("arguments")));
    }
}
