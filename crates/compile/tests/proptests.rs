//! Property-based tests of the compilation pipeline: generated distributed
//! programs compile at every optimization level, always validate, and the
//! optimizer never leaves raw addressing in a tileable affinity loop.

use dsm_compile::{compile_strings, OptConfig};
use dsm_ir::AddrMode;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenProgram {
    n: usize,
    dist: &'static str,
    offset: i64,
    parallel: bool,
    two_arrays: bool,
}

fn arb_program() -> impl Strategy<Value = GenProgram> {
    (
        16usize..200,
        prop_oneof![Just("block"), Just("cyclic"), Just("cyclic(4)")],
        -2i64..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, dist, offset, parallel, two_arrays)| GenProgram {
            n,
            dist,
            offset,
            parallel,
            two_arrays,
        })
}

fn render(g: &GenProgram) -> String {
    let n = g.n;
    let lb = 1 + g.offset.unsigned_abs() as usize;
    let ub = n - g.offset.unsigned_abs() as usize;
    let second_decl = if g.two_arrays {
        format!("      real*8 b({n})\nc$distribute_reshape b({})\n", g.dist)
    } else {
        String::new()
    };
    let rhs = if g.two_arrays {
        format!("b(i + {})", g.offset)
    } else {
        format!("a(i + {})", g.offset)
    };
    let doacross = if g.parallel {
        "c$doacross local(i) affinity(i) = data(a(i))\n"
    } else {
        ""
    };
    format!(
        "      program main\n      integer i\n      real*8 a({n})\nc$distribute_reshape a({})\n{second_decl}{doacross}      do i = {lb}, {ub}\n        a(i) = {rhs} + 1.0\n      enddo\n      end\n",
        g.dist
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated program compiles at every optimization level and
    /// the resulting IR validates.
    #[test]
    fn pipeline_total_and_valid(g in arb_program()) {
        let src = render(&g);
        for opt in [
            OptConfig::none(),
            OptConfig::tile_peel_only(),
            OptConfig::tile_peel_hoist(),
            OptConfig::default(),
        ] {
            let c = compile_strings(&[("g.f", &src)], &opt)
                .unwrap_or_else(|e| panic!("failed under {opt:?}: {e:?}\n{src}"));
            dsm_ir::validate_program(&c.program).expect("IR valid");
        }
    }

    /// With full optimization, a block-distributed affinity loop with a
    /// small literal offset never keeps raw integer div/mod: offsets are
    /// peeled, stores upgraded, leftovers FP-emulated.
    #[test]
    fn full_opt_removes_integer_divmod(g in arb_program()) {
        prop_assume!(g.dist == "block" && g.parallel);
        let src = render(&g);
        let c = compile_strings(&[("g.f", &src)], &OptConfig::default()).unwrap();
        let mut raw_int = 0;
        for st in &c.program.main_sub().body {
            st.for_each_ref(&mut |_, _, m, _| {
                if m == AddrMode::ReshapedRaw {
                    raw_int += 1;
                }
            });
        }
        prop_assert_eq!(raw_int, 0, "integer div/mod survived:\n{}", src);
    }

    /// The optimizer is idempotent in effect: compiling the same source
    /// twice yields identical IR.
    #[test]
    fn compilation_is_deterministic(g in arb_program()) {
        let src = render(&g);
        let a = compile_strings(&[("g.f", &src)], &OptConfig::default()).unwrap();
        let b = compile_strings(&[("g.f", &src)], &OptConfig::default()).unwrap();
        prop_assert_eq!(
            dsm_ir::printer::print_program(&a.program),
            dsm_ir::printer::print_program(&b.program)
        );
    }
}
