//! Golden IR-printer snapshots after each compile pass.
//!
//! Each snapshot records the printed IR of a paper kernel after every
//! stage of the pipeline in order — lower+prelink, stmtcse, skew,
//! tile+peel, hoist/CSE, fp-divmod — so a change to any pass shows up as
//! a reviewable diff of exactly the stage it perturbed.
//!
//! Regenerate with `DSM_UPDATE_GOLDEN=1 cargo test -p dsm-compile --test
//! golden` and inspect the diff before committing.

use dsm_compile::tile::TileConfig;
use dsm_compile::{divmod, hoist, lower, prelink, skew, stmtcse, tile};
use dsm_ir::printer::print_program;
use std::path::PathBuf;

/// Figure 2: the affinity-scheduled stencil. `affinity(i) = data(a(i))`
/// over block-reshaped arrays, with `b(i-1)`/`b(i+1)` neighbors so the
/// tile pass must peel boundary iterations.
const FIG2_AFFINITY: &str = "\
      program main
      integer i
      real*8 a(100), b(100)
c$distribute_reshape a(block)
c$distribute_reshape b(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 2, 99
        a(i) = (b(i - 1) + b(i) + b(i + 1)) / 3.0
      enddo
      end
";

/// Figure 3 flavor: a transpose over column-reshaped arrays. The outer
/// parallel loop tiles on `a`'s distributed dimension while the `b(j, i)`
/// reads stay raw (their distributed dim rides the inner variable), so
/// hoisting and div/mod conversion both have work to do.
const FIG3_TRANSPOSE: &str = "\
      program main
      integer i, j
      real*8 a(64, 64), b(64, 64)
c$distribute_reshape a(*, block)
c$distribute_reshape b(*, block)
c$doacross local(i, j) affinity(j) = data(a(1, j))
      do j = 1, 64
        do i = 1, 64
          a(i, j) = b(j, i)
        enddo
      enddo
      end
";

/// Print the IR after lower+prelink and then after each pass applied
/// cumulatively in pipeline order (all toggles on).
fn stage_dump(source: &str) -> String {
    let analysis = dsm_frontend::compile_sources(&[("golden.f", source)])
        .unwrap_or_else(|e| panic!("frontend: {e:?}"));
    let mut program = lower::lower_program(&analysis).unwrap_or_else(|e| panic!("lower: {e:?}"));
    prelink(&mut program).unwrap_or_else(|e| panic!("prelink: {e:?}"));

    let mut out = String::new();
    let mut snap = |label: &str, p: &dsm_ir::Program| {
        out.push_str(&format!("==== after {label} ====\n"));
        out.push_str(&print_program(p));
        out.push('\n');
    };
    snap("lower+prelink", &program);

    macro_rules! stage {
        ($label:expr, $body:expr) => {{
            for sub in &mut program.subs {
                #[allow(clippy::redundant_closure_call)]
                let _ = ($body)(sub);
            }
            snap($label, &program);
        }};
    }
    stage!("stmtcse", |s: &mut dsm_ir::Subroutine| stmtcse::run(s));
    stage!("skew", |s: &mut dsm_ir::Subroutine| skew::run(s));
    stage!("tile", |s: &mut dsm_ir::Subroutine| tile::run(
        s,
        &TileConfig::default()
    ));
    stage!("hoist", |s: &mut dsm_ir::Subroutine| hoist::run(s));
    stage!("divmod", |s: &mut dsm_ir::Subroutine| divmod::run(s));
    dsm_ir::validate_program(&program).unwrap_or_else(|e| panic!("invalid final IR: {e}"));
    out
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("DSM_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path:?}: {e}\nrun with DSM_UPDATE_GOLDEN=1 to create it")
    });
    if expected != actual {
        // Locate the first differing line for a readable failure.
        let (mut line, mut a, mut b) = (0, "", "");
        for (i, (e, g)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != g {
                (line, a, b) = (i + 1, e, g);
                break;
            }
        }
        panic!(
            "golden mismatch for {name} at line {line}:\n  golden: {a}\n  actual: {b}\n\
             full actual output:\n{actual}\n\
             (regenerate with DSM_UPDATE_GOLDEN=1 if the change is intended)"
        );
    }
}

#[test]
fn fig2_affinity_stages_match_golden() {
    check_golden("fig2_affinity.txt", &stage_dump(FIG2_AFFINITY));
}

#[test]
fn fig3_transpose_stages_match_golden() {
    check_golden("fig3_transpose.txt", &stage_dump(FIG3_TRANSPOSE));
}
