//! Wire protocol for the `dsmd` simulation daemon.
//!
//! The daemon speaks newline-delimited JSON over a Unix socket: one
//! request object per line, one reply object per line. This crate
//! holds the protocol's *only* implementation — the [`json`] value
//! model and parser, and the [`wire`] request/reply schema — so the
//! daemon, `dsmfc --remote`, tests, and benches all encode and decode
//! through the same code paths. Bit-identical local/remote reports
//! fall out of that sharing: floats travel as IEEE-754 bit patterns,
//! `u64` counters as exact decimal literals, and the attribution
//! profile as a pre-rendered document.

pub mod json;
pub mod wire;

pub use json::{parse, write_json_str, Value};
pub use wire::{
    advise_request_json, compile_request_json, digest_from_report_value, error_reply,
    exec_options_from_value, opt_from_value, opt_to_json, outcome_from_value, parse_request,
    report_from_value, run_request_json, sources_from_value, sources_to_json, DecodedOutcome,
    MachineSpec, Request,
};

/// Stable error code: queue full, request refused at admission.
pub const CODE_OVERLOADED: &str = "daemon.overloaded";
/// Stable error code: request line failed to parse or validate.
pub const CODE_BAD_REQUEST: &str = "daemon.bad-request";
/// Stable error code: wall-clock budget expired while queued.
pub const CODE_DEADLINE: &str = "daemon.deadline";
