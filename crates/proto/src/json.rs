//! A minimal JSON document model and recursive-descent parser.
//!
//! The workspace is offline and carries no serde; the daemon protocol
//! needs to *read* JSON as well as write it (writing is hand-rolled at
//! each producer — see `dsm_exec::wire`). Two properties matter more
//! than generality:
//!
//! * **numbers stay text** — [`Value::Num`] stores the literal slice,
//!   so a `u64` written in full (cycle counters, IEEE-754 bit patterns)
//!   converts back losslessly with [`Value::as_u64`] instead of passing
//!   through an `f64`;
//! * **object key order is preserved** — objects are association lists,
//!   so a parsed-and-rewritten document round-trips byte-identically,
//!   which the daemon's bit-identity guarantees lean on.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal text (lossless for u64).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered association list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number parsed as `u64` (lossless; the literal text is kept).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The number parsed as `f64` (shortest-round-trip literals written
    /// by Rust's `Display` parse back exactly).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => n.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialize back to compact single-line JSON. Numbers re-emit their
    /// original literal text, so parse → write round-trips exactly.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }

    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(n),
            Value::Str(s) => write_json_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Append `s` as a JSON string literal (quotes and escapes included).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one JSON document, requiring it to span the whole input
/// (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a byte offset and description on malformed input.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let lit = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
            // Validate: every number literal must parse as f64 (u64-range
            // integers also pass; they are converted from the text later).
            if lit.parse::<f64>().is_err() && lit.parse::<u64>().is_err() {
                return Err(format!("malformed number `{lit}` at byte {start}"));
            }
            Ok(Value::Num(lit.to_string()))
        }
        Some(c) => Err(format!("unexpected `{}` at byte {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ASCII \\u escape".to_string())?;
                        let cp =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        // Surrogate pairs are not produced by our writers
                        // (they escape only control characters); reject
                        // rather than mis-decode.
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("invalid code point \\u{hex}"))?;
                        s.push(c);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume a maximal run of unescaped bytes and append it
                // with one UTF-8 validation. (`"` and `\` can never occur
                // inside a multi-byte sequence, so scanning raw bytes is
                // safe; validating per character would rescan the whole
                // tail each time and go quadratic on large payloads.)
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                s.push_str(run);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e3").unwrap(), Value::Num("-12.5e3".into()));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn u64_numbers_survive_exactly() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        // An f64 path would have rounded this.
        let bits = parse("9007199254740993").unwrap();
        assert_eq!(bits.as_u64(), Some(9007199254740993));
    }

    #[test]
    fn nested_documents_round_trip() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_json(), src);
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("a").and_then(Value::as_arr).map(<[_]>::len), Some(3));
    }

    #[test]
    fn escapes_round_trip_through_writer() {
        let mut s = String::new();
        write_json_str(&mut s, "q\"uote \\slash \u{1} tab\t");
        let v = parse(&s).unwrap();
        assert_eq!(v.as_str(), Some("q\"uote \\slash \u{1} tab\t"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("--3").is_err());
    }

    #[test]
    fn object_lookup_ignores_non_objects() {
        assert_eq!(parse("[1]").unwrap().get("x"), None);
        assert!(parse("{}").unwrap().get("x").is_none());
    }
}
