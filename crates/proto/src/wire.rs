//! Request/reply schema of the `dsmd` daemon protocol.
//!
//! One JSON object per line in each direction. Requests carry an `"op"`
//! discriminator; replies carry `"ok"` — `true` with op-specific fields,
//! or `false` with a stable machine-readable `"code"` (see
//! `docs/DAEMON.md` for the full reference). This module is shared by
//! the daemon (decode requests, encode replies) and every client
//! (encode requests, decode replies), so the two sides cannot drift.

use dsm_compile::OptConfig;
use dsm_exec::{ExecOptions, RunReport};
use dsm_machine::{
    CounterSet, MachineConfig, MigrationPolicy, PagePolicy, SamplingConfig, SamplingSummary,
};

use crate::json::{parse, write_json_str, Value};

/// The machine geometry a `run` request asks for. Deliberately a *spec*,
/// not a full [`MachineConfig`]: the daemon derives the config the same
/// way the CLIs do, so a remote run and `dsmfc` agree on every latency
/// and capacity parameter by construction. Also the daemon's machine
/// pool key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MachineSpec {
    /// Simulated processors.
    pub procs: usize,
    /// Scale divisor vs a real Origin-2000 (`dsmfc --scale`).
    pub scale: usize,
    /// Round-robin page placement instead of first-touch.
    pub round_robin: bool,
    /// Use the tiny test geometry (`MachineConfig::small_test`) instead
    /// of the scaled Origin-2000 — for tests and benches.
    pub small_test: bool,
}

impl MachineSpec {
    /// The spec `dsmfc` would use for these flags.
    pub fn origin2000(procs: usize, scale: usize, round_robin: bool) -> Self {
        MachineSpec {
            procs,
            scale,
            round_robin,
            small_test: false,
        }
    }

    /// Materialize the [`MachineConfig`] this spec describes.
    pub fn to_config(&self) -> MachineConfig {
        let mut cfg = if self.small_test {
            MachineConfig::small_test(self.procs)
        } else {
            MachineConfig::scaled_origin2000(self.procs, self.scale)
        };
        if self.round_robin {
            cfg.policy = PagePolicy::RoundRobin;
        }
        cfg
    }

    /// Single-line JSON with fixed field order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"procs\":{},\"scale\":{},\"round_robin\":{},\"small_test\":{}}}",
            self.procs, self.scale, self.round_robin, self.small_test
        )
    }

    /// Decode from a parsed object.
    ///
    /// # Errors
    ///
    /// Returns a description of the missing or malformed member.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        Ok(MachineSpec {
            procs: v
                .get("procs")
                .and_then(Value::as_usize)
                .ok_or("machine.procs must be a positive integer")?,
            scale: v
                .get("scale")
                .and_then(Value::as_usize)
                .ok_or("machine.scale must be a positive integer")?,
            round_robin: v
                .get("round_robin")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            small_test: v
                .get("small_test")
                .and_then(Value::as_bool)
                .unwrap_or(false),
        })
    }
}

/// Encode an [`OptConfig`] (single line, fixed order).
pub fn opt_to_json(opt: &OptConfig) -> String {
    format!(
        "{{\"skew\":{},\"tile_peel\":{},\"hoist_cse\":{},\"fp_divmod\":{},\"interchange\":{}}}",
        opt.skew, opt.tile_peel, opt.hoist_cse, opt.fp_divmod, opt.interchange
    )
}

/// Decode an [`OptConfig`]; absent members take the full-optimization
/// defaults, `null` for the whole object is `OptConfig::default()`.
pub fn opt_from_value(v: &Value) -> OptConfig {
    let mut opt = OptConfig::default();
    if let Value::Obj(_) = v {
        let flag = |key: &str, dflt: bool| v.get(key).and_then(Value::as_bool).unwrap_or(dflt);
        opt.skew = flag("skew", opt.skew);
        opt.tile_peel = flag("tile_peel", opt.tile_peel);
        opt.hoist_cse = flag("hoist_cse", opt.hoist_cse);
        opt.fp_divmod = flag("fp_divmod", opt.fp_divmod);
        opt.interchange = flag("interchange", opt.interchange);
    }
    opt
}

/// Encode `(name, text)` source pairs as a JSON array.
pub fn sources_to_json(sources: &[(String, String)]) -> String {
    let mut s = String::with_capacity(256);
    s.push('[');
    for (i, (name, text)) in sources.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        write_json_str(&mut s, name);
        s.push_str(",\"text\":");
        write_json_str(&mut s, text);
        s.push('}');
    }
    s.push(']');
    s
}

/// Decode a sources array.
///
/// # Errors
///
/// Returns a description of the malformed entry.
pub fn sources_from_value(v: &Value) -> Result<Vec<(String, String)>, String> {
    let arr = v.as_arr().ok_or("sources must be an array")?;
    let mut out = Vec::with_capacity(arr.len());
    for e in arr {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or("source entry needs a `name` string")?;
        let text = e
            .get("text")
            .and_then(Value::as_str)
            .ok_or("source entry needs a `text` string")?;
        out.push((name.to_string(), text.to_string()));
    }
    if out.is_empty() {
        return Err("sources must not be empty".into());
    }
    Ok(out)
}

/// Decode the `options` object of a `run` request into [`ExecOptions`]
/// (the inverse of `ExecOptions::to_json`). Absent members keep their
/// defaults.
///
/// # Errors
///
/// Returns a description of the malformed member (unknown engine name,
/// bad migration policy, non-integer rate, …).
pub fn exec_options_from_value(v: &Value) -> Result<ExecOptions, String> {
    let nprocs = v
        .get("nprocs")
        .and_then(Value::as_usize)
        .ok_or("options.nprocs must be a positive integer")?;
    let mut opts = ExecOptions::new(nprocs);
    if let Some(b) = v.get("runtime_checks").and_then(Value::as_bool) {
        opts = opts.with_checks(b);
    }
    if let Some(n) = v.get("max_steps").and_then(Value::as_u64) {
        opts = opts.max_steps(n);
    }
    if let Some(b) = v.get("serial_team").and_then(Value::as_bool) {
        opts = opts.serial_team(b);
    }
    if let Some(b) = v.get("profile").and_then(Value::as_bool) {
        opts = opts.profile(b);
    }
    if let Some(arr) = v.get("captures").and_then(Value::as_arr) {
        let names: Vec<&str> = arr.iter().filter_map(Value::as_str).collect();
        if names.len() != arr.len() {
            return Err("options.captures must be an array of strings".into());
        }
        opts = opts.capture(&names);
    }
    if let Some(m) = v.get("migration") {
        if let Some(spec) = m.as_str() {
            opts = opts.migration(MigrationPolicy::parse(spec)?);
        } else if !m.is_null() {
            return Err("options.migration must be a policy string or null".into());
        }
    }
    if let Some(e) = v.get("engine").and_then(Value::as_str) {
        opts = opts.engine(e.parse()?);
    }
    if let Some(s) = v.get("sampling") {
        if let Value::Obj(_) = s {
            let rate = s
                .get("rate")
                .and_then(Value::as_u64)
                .ok_or("options.sampling.rate must be an integer")? as u32;
            let seed = s.get("seed").and_then(Value::as_u64).unwrap_or(0);
            opts = opts.sampling(SamplingConfig { rate, seed });
        } else if !s.is_null() {
            return Err("options.sampling must be an object or null".into());
        }
    }
    if let Some(r) = v.get("redist").and_then(Value::as_str) {
        opts = opts.redist(r.parse()?);
    }
    if let Some(r) = v.get("resize_to") {
        if let Some(p) = r.as_usize() {
            opts = opts.resize_to(p);
        } else if !r.is_null() {
            return Err("options.resize_to must be a positive integer or null".into());
        }
    }
    Ok(opts)
}

fn counters_from_value(v: &Value) -> Result<CounterSet, String> {
    let n = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("counter set missing `{key}`"))
    };
    Ok(CounterSet {
        loads: n("loads")?,
        stores: n("stores")?,
        l1_misses: n("l1_misses")?,
        l2_misses: n("l2_misses")?,
        local_misses: n("local_misses")?,
        remote_misses: n("remote_misses")?,
        interventions: n("interventions")?,
        tlb_misses: n("tlb_misses")?,
        invalidations_sent: n("invalidations_sent")?,
        invalidations_received: n("invalidations_received")?,
        page_faults: n("page_faults")?,
        writebacks: n("writebacks")?,
        cycles: n("cycles")?,
    })
}

fn sampling_from_value(v: &Value) -> Result<SamplingSummary, String> {
    let n = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("sampling summary missing `{key}`"))
    };
    Ok(SamplingSummary {
        rate: n("rate")? as u32,
        seed: n("seed")?,
        exact: v
            .get("exact")
            .and_then(Value::as_bool)
            .ok_or("sampling summary missing `exact`")?,
        accesses: n("accesses")?,
        exact_accesses: n("exact_accesses")?,
        estimated_accesses: n("estimated_accesses")?,
        sampled_sets: n("sampled_sets")? as usize,
        total_sets: n("total_sets")? as usize,
        est_l1_misses: n("est_l1_misses")?,
        est_l2_misses: n("est_l2_misses")?,
        est_local_misses: n("est_local_misses")?,
        est_remote_misses: n("est_remote_misses")?,
        estimator_cycles: n("estimator_cycles")?,
        ci95_miss_pct: f64::from_bits(n("ci95_miss_pct_bits")?),
        ci95_cycle_pct: f64::from_bits(n("ci95_cycle_pct_bits")?),
    })
}

/// A `run` reply's outcome decoded back into native types. The
/// attribution profile is *not* reconstructed — `profile_json` and
/// `profile_text` carry the daemon's pre-rendered documents verbatim,
/// so a remote `--profile` run prints the exact bytes a local one
/// would.
#[derive(Debug, Clone)]
pub struct DecodedOutcome {
    /// The report; `report.profile` is always `None` (see above).
    pub report: RunReport,
    /// Captured arrays, bit-exact.
    pub captures: Vec<Vec<f64>>,
    /// The profile as JSON (`Profile::to_json`), when profiled.
    pub profile_json: Option<String>,
}

/// Decode the `report` object of a reply (inverse of
/// `RunReport::to_json`).
///
/// # Errors
///
/// Returns a description of the missing or malformed member.
pub fn report_from_value(v: &Value) -> Result<RunReport, String> {
    let n = |key: &str| {
        v.get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("report missing `{key}`"))
    };
    let per_proc = v
        .get("per_proc")
        .and_then(Value::as_arr)
        .ok_or("report missing `per_proc`")?
        .iter()
        .map(counters_from_value)
        .collect::<Result<Vec<_>, _>>()?;
    let pages_per_node = v
        .get("pages_per_node")
        .and_then(Value::as_arr)
        .ok_or("report missing `pages_per_node`")?
        .iter()
        .map(|e| e.as_usize().ok_or("pages_per_node must hold integers"))
        .collect::<Result<Vec<_>, _>>()?;
    let sampling = match v.get("sampling") {
        None | Some(Value::Null) => None,
        Some(s) => Some(sampling_from_value(s)?),
    };
    Ok(RunReport {
        total_cycles: n("total_cycles")?,
        per_proc,
        total: counters_from_value(v.get("total").ok_or("report missing `total`")?)?,
        parallel_regions: n("parallel_regions")? as usize,
        parallel_cycles: n("parallel_cycles")?,
        pages_per_node,
        argcheck_ops: (n("argcheck_inserts")?, n("argcheck_lookups")?),
        pages_migrated: n("pages_migrated")?,
        migration_cycles: n("migration_cycles")?,
        redist_pages: n("redist_pages").unwrap_or(0),
        redist_cycles: n("redist_cycles").unwrap_or(0),
        host_wall: std::time::Duration::from_nanos(n("host_wall_ns").unwrap_or(0)),
        host_region_wall: std::time::Duration::from_nanos(n("host_region_wall_ns").unwrap_or(0)),
        profile: None,
        sampling,
    })
}

/// Decode an `outcome` object (`{"report":…,"captures":…}`).
///
/// # Errors
///
/// Returns a description of the missing or malformed member.
pub fn outcome_from_value(v: &Value) -> Result<DecodedOutcome, String> {
    let report_v = v.get("report").ok_or("outcome missing `report`")?;
    let report = report_from_value(report_v)?;
    let profile_json = report_v
        .get("profile_json")
        .and_then(Value::as_str)
        .map(str::to_string);
    let captures = v
        .get("captures")
        .and_then(Value::as_arr)
        .ok_or("outcome missing `captures`")?
        .iter()
        .map(|arr| {
            arr.as_arr()
                .ok_or("captures must be arrays")?
                .iter()
                .map(|b| {
                    b.as_u64()
                        .map(f64::from_bits)
                        .ok_or("capture elements must be u64 bit patterns")
                })
                .collect::<Result<Vec<f64>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()
        .map_err(str::to_string)?;
    Ok(DecodedOutcome {
        report,
        captures,
        profile_json,
    })
}

/// Recompute `RunReport::digest_json` from a *wire* report object:
/// drop the host wall-clock members and re-serialize. Because the
/// writer's field order is canonical and numbers round-trip as text,
/// the result is byte-equal to the digest the producing side computed.
pub fn digest_from_report_value(v: &Value) -> Result<String, String> {
    let Value::Obj(members) = v else {
        return Err("report must be an object".into());
    };
    let filtered: Vec<(String, Value)> = members
        .iter()
        .filter(|(k, _)| k != "host_wall_ns" && k != "host_region_wall_ns")
        .cloned()
        .collect();
    Ok(Value::Obj(filtered).to_json())
}

/// A decoded daemon request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Daemon statistics.
    Stats,
    /// Orderly shutdown.
    Shutdown,
    /// Compile (and cache) a program without running it.
    Compile {
        /// `(name, text)` source pairs.
        sources: Vec<(String, String)>,
        /// Optimization toggles.
        opt: OptConfig,
    },
    /// Compile (through the cache) and run on a pooled machine.
    Run {
        /// `(name, text)` source pairs.
        sources: Vec<(String, String)>,
        /// Optimization toggles.
        opt: OptConfig,
        /// Machine geometry (also the pool key).
        machine: MachineSpec,
        /// Execution options.
        options: ExecOptions,
        /// Admission priority (higher first; FIFO within a priority).
        priority: i64,
        /// Wall-clock budget from admission, in milliseconds: a request
        /// still queued past its budget is answered `daemon.deadline`
        /// instead of running.
        wall_ms: Option<u64>,
        /// Bypass the program cache and machine pool (benchmarking the
        /// cold path).
        cold: bool,
    },
    /// Run the auto-distribution advisor.
    Advise {
        /// `(name, text)` source pairs.
        sources: Vec<(String, String)>,
        /// Processors to plan for.
        procs: usize,
        /// Machine scale divisor.
        scale: usize,
        /// Candidate-simulation budget.
        budget: usize,
    },
}

/// Parse one request line.
///
/// # Errors
///
/// Returns the message for a `daemon.bad-request` reply.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse(line)?;
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("request needs an `op` string")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "compile" => Ok(Request::Compile {
            sources: sources_from_value(v.get("sources").ok_or("compile needs `sources`")?)?,
            opt: opt_from_value(v.get("opt").unwrap_or(&Value::Null)),
        }),
        "run" => Ok(Request::Run {
            sources: sources_from_value(v.get("sources").ok_or("run needs `sources`")?)?,
            opt: opt_from_value(v.get("opt").unwrap_or(&Value::Null)),
            machine: MachineSpec::from_value(v.get("machine").ok_or("run needs `machine`")?)?,
            options: exec_options_from_value(
                v.get("options").ok_or("run needs `options`")?,
            )?,
            priority: v.get("priority").and_then(Value::as_i64).unwrap_or(0),
            wall_ms: v.get("wall_ms").and_then(Value::as_u64),
            cold: v.get("cold").and_then(Value::as_bool).unwrap_or(false),
        }),
        "advise" => Ok(Request::Advise {
            sources: sources_from_value(v.get("sources").ok_or("advise needs `sources`")?)?,
            procs: v.get("procs").and_then(Value::as_usize).unwrap_or(8),
            scale: v.get("scale").and_then(Value::as_usize).unwrap_or(64),
            budget: v.get("budget").and_then(Value::as_usize).unwrap_or(48),
        }),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Build a `run` request line. `options_json` is
/// `ExecOptions::to_json()` output (kept pre-rendered so client and
/// daemon share the one serializer in `dsm-exec`).
pub fn run_request_json(
    sources: &[(String, String)],
    opt: &OptConfig,
    machine: &MachineSpec,
    options_json: &str,
    priority: i64,
    wall_ms: Option<u64>,
    cold: bool,
) -> String {
    let wall = match wall_ms {
        Some(ms) => ms.to_string(),
        None => "null".into(),
    };
    format!(
        "{{\"op\":\"run\",\"sources\":{},\"opt\":{},\"machine\":{},\"options\":{},\
         \"priority\":{},\"wall_ms\":{},\"cold\":{}}}",
        sources_to_json(sources),
        opt_to_json(opt),
        machine.to_json(),
        options_json,
        priority,
        wall,
        cold
    )
}

/// Build a `compile` request line.
pub fn compile_request_json(sources: &[(String, String)], opt: &OptConfig) -> String {
    format!(
        "{{\"op\":\"compile\",\"sources\":{},\"opt\":{}}}",
        sources_to_json(sources),
        opt_to_json(opt)
    )
}

/// Build an `advise` request line.
pub fn advise_request_json(
    sources: &[(String, String)],
    procs: usize,
    scale: usize,
    budget: usize,
) -> String {
    format!(
        "{{\"op\":\"advise\",\"sources\":{},\"procs\":{procs},\"scale\":{scale},\
         \"budget\":{budget}}}",
        sources_to_json(sources)
    )
}

/// Build an error reply line (`ok:false` with a stable code).
pub fn error_reply(code: &str, message: &str) -> String {
    let mut s = String::with_capacity(64 + message.len());
    s.push_str("{\"ok\":false,\"code\":");
    write_json_str(&mut s, code);
    s.push_str(",\"error\":");
    write_json_str(&mut s, message);
    s.push('}');
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_exec::Engine;

    #[test]
    fn exec_options_round_trip() {
        let opts = ExecOptions::new(4)
            .with_checks(true)
            .serial_team(true)
            .profile(true)
            .max_steps(1234)
            .capture(&["a", "b"])
            .migration(MigrationPolicy::competitive(8))
            .engine(Engine::Interp)
            .sampling(SamplingConfig { rate: 4, seed: 7 });
        let back = exec_options_from_value(&parse(&opts.to_json()).unwrap()).unwrap();
        assert_eq!(back, opts);
        // Defaults survive too.
        let dflt = ExecOptions::new(2);
        let back = exec_options_from_value(&parse(&dflt.to_json()).unwrap()).unwrap();
        assert_eq!(back, dflt);
    }

    #[test]
    fn machine_spec_and_opt_round_trip() {
        let spec = MachineSpec {
            procs: 16,
            scale: 8,
            round_robin: true,
            small_test: false,
        };
        assert_eq!(
            MachineSpec::from_value(&parse(&spec.to_json()).unwrap()).unwrap(),
            spec
        );
        assert_eq!(spec.to_config().policy, PagePolicy::RoundRobin);
        let opt = OptConfig::tile_peel_only();
        assert_eq!(opt_from_value(&parse(&opt_to_json(&opt)).unwrap()), opt);
        assert_eq!(opt_from_value(&Value::Null), OptConfig::default());
    }

    #[test]
    fn run_request_parses_back() {
        let sources = vec![("t.f".to_string(), "      program main\n      end\n".to_string())];
        let opts = ExecOptions::new(2).capture(&["a"]);
        let line = run_request_json(
            &sources,
            &OptConfig::default(),
            &MachineSpec::origin2000(2, 64, false),
            &opts.to_json(),
            3,
            Some(500),
            true,
        );
        assert!(!line.contains('\n'));
        match parse_request(&line).unwrap() {
            Request::Run {
                sources: s,
                machine,
                options,
                priority,
                wall_ms,
                cold,
                ..
            } => {
                assert_eq!(s, sources);
                assert_eq!(machine.procs, 2);
                assert_eq!(options, opts);
                assert_eq!(priority, 3);
                assert_eq!(wall_ms, Some(500));
                assert!(cold);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_described() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"run\"}").is_err());
        assert!(parse_request("{\"op\":\"compile\",\"sources\":[]}").is_err());
    }

    #[test]
    fn error_reply_is_parseable() {
        let line = error_reply("daemon.overloaded", "queue full (16 requests)");
        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("code").and_then(Value::as_str),
            Some("daemon.overloaded")
        );
    }

    #[test]
    fn digest_matches_producer() {
        let report = RunReport {
            total_cycles: 42,
            per_proc: vec![CounterSet::new(); 2],
            total: CounterSet {
                loads: 7,
                cycles: 42,
                ..CounterSet::default()
            },
            parallel_regions: 1,
            parallel_cycles: 40,
            pages_per_node: vec![3, 4],
            argcheck_ops: (1, 2),
            pages_migrated: 5,
            migration_cycles: 6,
            redist_pages: 7,
            redist_cycles: 8,
            host_wall: std::time::Duration::from_millis(3),
            host_region_wall: std::time::Duration::from_millis(2),
            profile: None,
            sampling: None,
        };
        let wire = parse(&report.to_json()).unwrap();
        assert_eq!(
            digest_from_report_value(&wire).unwrap(),
            report.digest_json()
        );
        let back = report_from_value(&wire).unwrap();
        assert_eq!(back, report);
    }
}
