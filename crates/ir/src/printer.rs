//! Human-readable IR dumps.
//!
//! Used by compiler tests to assert on transformed loop structure and by
//! `--dump-ir`-style debugging.  The format is Fortran-flavoured
//! pseudo-code with address modes shown in brackets.

use crate::expr::{BinOp, Expr, Intrinsic, RtExpr, UnOp};
use crate::program::{Program, Subroutine};
use crate::stmt::{ActualArg, AddrMode, SchedType, Stmt};

/// Render a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, s) in p.subs.iter().enumerate() {
        if i == p.main {
            out.push_str("program ");
        } else {
            out.push_str("subroutine ");
        }
        out.push_str(&print_sub(p, s));
        out.push('\n');
    }
    out
}

/// Render one subroutine.
pub fn print_sub(_p: &Program, s: &Subroutine) -> String {
    let mut out = format!("{}(", s.name);
    for (i, prm) in s.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match prm {
            crate::program::Param::Array(a) => out.push_str(&s.arrays[a.0].name),
            crate::program::Param::Scalar(v) => out.push_str(&s.scalars[v.0].name),
        }
    }
    out.push_str(")\n");
    for a in &s.arrays {
        out.push_str(&format!(
            "  {} {}{:?}",
            match a.ty {
                crate::program::ScalarTy::Int => "integer",
                crate::program::ScalarTy::Real => "real*8",
            },
            a.name,
            a.dims
        ));
        if let Some(d) = &a.dist {
            out.push_str(&format!("  !{} {}", a.dist_kind, d));
        }
        out.push('\n');
    }
    for st in &s.body {
        print_stmt(&mut out, s, st, 1);
    }
    out.push_str("end\n");
    out
}

fn ind(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Render one statement subtree at the given indent depth.
pub fn print_stmt(out: &mut String, s: &Subroutine, st: &Stmt, depth: usize) {
    match st {
        Stmt::Assign {
            array,
            indices,
            value,
            mode,
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "{}({}){} = {}\n",
                s.arrays[array.0].name,
                indices
                    .iter()
                    .map(|e| print_expr(s, e))
                    .collect::<Vec<_>>()
                    .join(", "),
                mode_tag(*mode),
                print_expr(s, value)
            ));
        }
        Stmt::SAssign { var, value } => {
            ind(out, depth);
            out.push_str(&format!(
                "{} = {}\n",
                s.scalars[var.0].name,
                print_expr(s, value)
            ));
        }
        Stmt::Loop(l) => {
            ind(out, depth);
            let tag = match &l.par {
                None => String::new(),
                Some(d) => match d.sched {
                    SchedType::ProcTile { grid_dim } => format!(" !proctile(dim={grid_dim})"),
                    _ => format!(" !doacross({:?})", d.sched),
                },
            };
            out.push_str(&format!(
                "do {} = {}, {}, {}{}\n",
                s.scalars[l.var.0].name,
                print_expr(s, &l.lb),
                print_expr(s, &l.ub),
                print_expr(s, &l.step),
                tag
            ));
            for b in &l.body {
                print_stmt(out, s, b, depth + 1);
            }
            ind(out, depth);
            out.push_str("enddo\n");
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            ind(out, depth);
            out.push_str(&format!("if ({}) then\n", print_expr(s, cond)));
            for b in then_body {
                print_stmt(out, s, b, depth + 1);
            }
            if !else_body.is_empty() {
                ind(out, depth);
                out.push_str("else\n");
                for b in else_body {
                    print_stmt(out, s, b, depth + 1);
                }
            }
            ind(out, depth);
            out.push_str("endif\n");
        }
        Stmt::Call { name, args } => {
            ind(out, depth);
            let rendered: Vec<String> = args
                .iter()
                .map(|a| match a {
                    ActualArg::Array(id) => s.arrays[id.0].name.clone(),
                    ActualArg::ArrayElem(id, idx) => format!(
                        "{}({})",
                        s.arrays[id.0].name,
                        idx.iter()
                            .map(|e| print_expr(s, e))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    ActualArg::Scalar(e) => print_expr(s, e),
                })
                .collect();
            out.push_str(&format!("call {}({})\n", name, rendered.join(", ")));
        }
        Stmt::Redistribute { array, dist } => {
            ind(out, depth);
            out.push_str(&format!(
                "redistribute {} {}\n",
                s.arrays[array.0].name, dist
            ));
        }
        Stmt::Barrier => {
            ind(out, depth);
            out.push_str("barrier\n");
        }
        Stmt::ResizeTeam { nprocs } => {
            ind(out, depth);
            out.push_str(&format!("resize_team({nprocs})\n"));
        }
        Stmt::Overhead {
            int_divs,
            indirect_loads,
            int_alu,
        } => {
            ind(out, depth);
            out.push_str(&format!(
                "!overhead divs={int_divs} indirect={indirect_loads} alu={int_alu}\n"
            ));
        }
    }
}

fn mode_tag(m: AddrMode) -> &'static str {
    match m {
        AddrMode::Direct => "",
        AddrMode::ReshapedRaw => "[raw]",
        AddrMode::ReshapedRawFp => "[raw-fp]",
        AddrMode::ReshapedTiled => "[tiled]",
        AddrMode::ReshapedHoisted => "[hoisted]",
        AddrMode::ReshapedSharedDiv => "[shared-div]",
        AddrMode::ReshapedSharedAll => "[shared]",
    }
}

/// Render an expression.
pub fn print_expr(s: &Subroutine, e: &Expr) -> String {
    match e {
        Expr::IConst(v) => v.to_string(),
        Expr::FConst(v) => format!("{v:?}"),
        Expr::Var(v) => s
            .scalars
            .get(v.0)
            .map_or(format!("v{}", v.0), |d| d.name.clone()),
        Expr::Load {
            array,
            indices,
            mode,
        } => format!(
            "{}({}){}",
            s.arrays
                .get(array.0)
                .map_or(format!("a{}", array.0), |d| d.name.clone()),
            indices
                .iter()
                .map(|i| print_expr(s, i))
                .collect::<Vec<_>>()
                .join(", "),
            mode_tag(*mode)
        ),
        Expr::Unary(UnOp::Neg, x) => format!("(-{})", print_expr(s, x)),
        Expr::Unary(UnOp::Not, x) => format!("(.not. {})", print_expr(s, x)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Pow => "**",
                BinOp::Lt => ".lt.",
                BinOp::Le => ".le.",
                BinOp::Gt => ".gt.",
                BinOp::Ge => ".ge.",
                BinOp::Eq => ".eq.",
                BinOp::Ne => ".ne.",
                BinOp::And => ".and.",
                BinOp::Or => ".or.",
            };
            format!("({} {} {})", print_expr(s, a), sym, print_expr(s, b))
        }
        Expr::Call(i, args) => {
            let name = match i {
                Intrinsic::Max => "max",
                Intrinsic::Min => "min",
                Intrinsic::Mod => "mod",
                Intrinsic::Abs => "abs",
                Intrinsic::Sqrt => "sqrt",
                Intrinsic::Dble => "dble",
                Intrinsic::Int => "int",
                Intrinsic::CeilDiv => "ceildiv",
            };
            format!(
                "{name}({})",
                args.iter()
                    .map(|a| print_expr(s, a))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
        Expr::Rt(rt) => match rt {
            RtExpr::NProcs { array, dim } => format!("$nprocs(a{}, {dim})", array.0),
            RtExpr::BlockSize { array, dim } => format!("$bsize(a{}, {dim})", array.0),
            RtExpr::NumThreads => "$numthreads".into(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArrayDecl, Extent, ScalarDecl, ScalarTy, Storage, VarId};
    use crate::{ArrayId, DistKind};

    fn sub() -> Subroutine {
        Subroutine {
            name: "t".into(),
            params: vec![],
            scalars: vec![ScalarDecl {
                name: "i".into(),
                ty: ScalarTy::Int,
            }],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                ty: ScalarTy::Real,
                dims: vec![Extent::Const(10)],
                storage: Storage::Local,
                dist_kind: DistKind::None,
                dist: None,
                equivalenced_with: vec![],
            }],
            body: vec![],
            source_file: 0,
        }
    }

    #[test]
    fn expr_rendering() {
        let s = sub();
        let e = Expr::add(Expr::var(VarId(0)), Expr::int(3));
        assert_eq!(print_expr(&s, &e), "(i + 3)");
        let l = Expr::Load {
            array: ArrayId(0),
            indices: vec![Expr::var(VarId(0))],
            mode: AddrMode::ReshapedRaw,
        };
        assert_eq!(print_expr(&s, &l), "a(i)[raw]");
    }

    #[test]
    fn stmt_rendering_includes_structure() {
        let s = sub();
        let st = Stmt::Loop(Box::new(crate::stmt::LoopStmt {
            var: VarId(0),
            lb: Expr::int(1),
            ub: Expr::int(5),
            step: Expr::int(1),
            body: vec![Stmt::Barrier],
            par: None,
        }));
        let mut out = String::new();
        print_stmt(&mut out, &s, &st, 0);
        assert!(out.contains("do i = 1, 5, 1"));
        assert!(out.contains("barrier"));
        assert!(out.contains("enddo"));
    }
}
