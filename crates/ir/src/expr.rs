//! Expressions.
//!
//! A small, typed-enough expression language: integer and real constants,
//! scalar variables, array loads, unary/binary operators and a fixed set of
//! intrinsics.  Compiler transformations additionally use [`Expr::Rt`] to
//! query runtime distribution quantities (number of processors assigned to
//! a distributed dimension, its block size, …) — these are the symbolic
//! `P` and `b` of the paper's Figure 2 schedules and Table 1 address
//! transformation, resolved by the runtime at program start-up.

use crate::program::{ArrayId, VarId};
use crate::stmt::AddrMode;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
///
/// Comparison and logical operators yield integer 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division; integer division when both operands are integers
    /// (Fortran semantics, truncating toward zero) — this is the expensive
    /// `div` of the paper's Section 7.
    Div,
    /// Remainder (`mod`), the other expensive operation.
    Rem,
    /// Exponentiation (`**`).
    Pow,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

/// Intrinsic functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `max(a, b, ...)`.
    Max,
    /// `min(a, b, ...)`.
    Min,
    /// `mod(a, b)` — like [`BinOp::Rem`] but in Fortran intrinsic form.
    Mod,
    /// `abs(a)`.
    Abs,
    /// `sqrt(a)`.
    Sqrt,
    /// `dble(a)` — convert to real.
    Dble,
    /// `int(a)` — truncate to integer.
    Int,
    /// `ceildiv(a, b)` — ⌈a/b⌉ on integers; emitted by the affinity
    /// transformation (not user-visible Fortran).
    CeilDiv,
}

impl Intrinsic {
    /// Parse a Fortran intrinsic name (lower-case).
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "max" => Intrinsic::Max,
            "min" => Intrinsic::Min,
            "mod" => Intrinsic::Mod,
            "abs" => Intrinsic::Abs,
            "sqrt" => Intrinsic::Sqrt,
            "dble" => Intrinsic::Dble,
            "int" => Intrinsic::Int,
            _ => return None,
        })
    }
}

/// Runtime distribution queries (resolved per execution from the array's
/// runtime descriptor and the machine's processor count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtExpr {
    /// Number of processors assigned to distributed dimension `dim` of
    /// `array` (the `P` of Figure 2 / Table 1).
    NProcs {
        /// Array whose distribution is queried.
        array: ArrayId,
        /// Zero-based dimension index.
        dim: usize,
    },
    /// Block size `b = ceil(N/P)` of distributed dimension `dim`.
    BlockSize {
        /// Array whose distribution is queried.
        array: ArrayId,
        /// Zero-based dimension index.
        dim: usize,
    },
    /// Total processors executing the program.
    NumThreads,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IConst(i64),
    /// Real literal.
    FConst(f64),
    /// Scalar variable read.
    Var(VarId),
    /// Array element load; indices are 1-based (Fortran). The
    /// [`AddrMode`] records how the generated code computes the address.
    Load {
        /// Array being loaded.
        array: ArrayId,
        /// One index expression per declared dimension.
        indices: Vec<Expr>,
        /// Address-computation strategy (set by the compiler).
        mode: AddrMode,
    },
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Intrinsic call.
    Call(Intrinsic, Vec<Expr>),
    /// Runtime distribution query.
    Rt(RtExpr),
}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/… are AST-builder
                                         // helpers that intentionally mirror the operator names; they construct
                                         // `Expr` trees rather than evaluate, so the std operator traits don't fit.
impl Expr {
    /// Integer constant helper.
    pub fn int(v: i64) -> Expr {
        Expr::IConst(v)
    }

    /// Variable read helper.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(a), Box::new(b))
    }

    /// `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(a), Box::new(b))
    }

    /// `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(a), Box::new(b))
    }

    /// `a / b` (integer division on integers).
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(a), Box::new(b))
    }

    /// `mod(a, b)`.
    pub fn rem(a: Expr, b: Expr) -> Expr {
        Expr::Binary(BinOp::Rem, Box::new(a), Box::new(b))
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::Call(Intrinsic::Max, vec![a, b])
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::Call(Intrinsic::Min, vec![a, b])
    }

    /// `⌈a/b⌉`.
    pub fn ceil_div(a: Expr, b: Expr) -> Expr {
        Expr::Call(Intrinsic::CeilDiv, vec![a, b])
    }

    /// If this expression is the affine form `s*var + c` (or degenerate
    /// forms `var`, `var + c`, `c`), return `(var, s, c)` with `var = None`
    /// for pure constants.  This is the "simple form s*i+c with literal
    /// constants" that Section 7.1 requires for optimization and that the
    /// affinity clause requires for scheduling.
    pub fn as_affine(&self) -> Option<(Option<VarId>, i64, i64)> {
        match self {
            Expr::IConst(c) => Some((None, 0, *c)),
            Expr::Var(v) => Some((Some(*v), 1, 0)),
            Expr::Unary(UnOp::Neg, e) => {
                let (v, s, c) = e.as_affine()?;
                Some((v, -s, -c))
            }
            Expr::Binary(op, a, b) => {
                let (va, sa, ca) = a.as_affine()?;
                let (vb, sb, cb) = b.as_affine()?;
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let sign = if *op == BinOp::Sub { -1 } else { 1 };
                        match (va, vb) {
                            (v, None) => Some((v, sa, ca + sign * cb)),
                            (None, v) => Some((v, sign * sb, ca + sign * cb)),
                            (Some(x), Some(y)) if x == y => {
                                Some((Some(x), sa + sign * sb, ca + sign * cb))
                            }
                            _ => None,
                        }
                    }
                    BinOp::Mul => match (va, vb) {
                        (None, v) => Some((v, ca * sb, ca * cb)),
                        (v, None) => Some((v, sa * cb, ca * cb)),
                        _ => None,
                    },
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// True if the expression contains a reference to `var`.
    pub fn uses_var(&self, var: VarId) -> bool {
        match self {
            Expr::Var(v) => *v == var,
            Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => false,
            Expr::Load { indices, .. } => indices.iter().any(|e| e.uses_var(var)),
            Expr::Unary(_, e) => e.uses_var(var),
            Expr::Binary(_, a, b) => a.uses_var(var) || b.uses_var(var),
            Expr::Call(_, args) => args.iter().any(|e| e.uses_var(var)),
        }
    }

    /// True if the expression loads from `array`.
    pub fn uses_array(&self, array: ArrayId) -> bool {
        match self {
            Expr::Load {
                array: a, indices, ..
            } => *a == array || indices.iter().any(|e| e.uses_array(array)),
            Expr::Var(_) | Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => false,
            Expr::Unary(_, e) => e.uses_array(array),
            Expr::Binary(_, a, b) => a.uses_array(array) || b.uses_array(array),
            Expr::Call(_, args) => args.iter().any(|e| e.uses_array(array)),
        }
    }

    /// Visit every `Load` in the expression.
    pub fn for_each_load(&self, f: &mut impl FnMut(ArrayId, &[Expr], AddrMode)) {
        match self {
            Expr::Load {
                array,
                indices,
                mode,
            } => {
                f(*array, indices, *mode);
                for i in indices {
                    i.for_each_load(f);
                }
            }
            Expr::Unary(_, e) => e.for_each_load(f),
            Expr::Binary(_, a, b) => {
                a.for_each_load(f);
                b.for_each_load(f);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.for_each_load(f);
                }
            }
            Expr::Var(_) | Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => {}
        }
    }

    /// Substitute every occurrence of `var` with `with`.
    pub fn subst_var(&self, var: VarId, with: &Expr) -> Expr {
        match self {
            Expr::Var(v) if *v == var => with.clone(),
            Expr::Var(_) | Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => self.clone(),
            Expr::Load {
                array,
                indices,
                mode,
            } => Expr::Load {
                array: *array,
                indices: indices.iter().map(|e| e.subst_var(var, with)).collect(),
                mode: *mode,
            },
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.subst_var(var, with))),
            Expr::Binary(op, a, b) => Expr::Binary(
                *op,
                Box::new(a.subst_var(var, with)),
                Box::new(b.subst_var(var, with)),
            ),
            Expr::Call(i, args) => {
                Expr::Call(*i, args.iter().map(|e| e.subst_var(var, with)).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: usize) -> VarId {
        VarId(n)
    }

    #[test]
    fn affine_recognizes_simple_forms() {
        let i = v(0);
        assert_eq!(Expr::var(i).as_affine(), Some((Some(i), 1, 0)));
        assert_eq!(Expr::int(7).as_affine(), Some((None, 0, 7)));
        let e = Expr::add(Expr::mul(Expr::int(3), Expr::var(i)), Expr::int(-2));
        assert_eq!(e.as_affine(), Some((Some(i), 3, -2)));
        let e = Expr::sub(Expr::int(10), Expr::var(i));
        assert_eq!(e.as_affine(), Some((Some(i), -1, 10)));
    }

    #[test]
    fn affine_rejects_nonlinear() {
        let i = v(0);
        let e = Expr::mul(Expr::var(i), Expr::var(i));
        assert_eq!(e.as_affine(), None);
        let e = Expr::div(Expr::var(i), Expr::int(2));
        assert_eq!(e.as_affine(), None);
    }

    #[test]
    fn affine_two_vars_rejected() {
        let e = Expr::add(Expr::var(v(0)), Expr::var(v(1)));
        assert_eq!(e.as_affine(), None);
    }

    #[test]
    fn affine_same_var_combines() {
        let i = v(3);
        let e = Expr::add(Expr::var(i), Expr::mul(Expr::int(2), Expr::var(i)));
        assert_eq!(e.as_affine(), Some((Some(i), 3, 0)));
    }

    #[test]
    fn uses_var_traverses_loads() {
        let e = Expr::Load {
            array: ArrayId(0),
            indices: vec![Expr::add(Expr::var(v(5)), Expr::int(1))],
            mode: AddrMode::Direct,
        };
        assert!(e.uses_var(v(5)));
        assert!(!e.uses_var(v(6)));
        assert!(e.uses_array(ArrayId(0)));
        assert!(!e.uses_array(ArrayId(1)));
    }

    #[test]
    fn subst_replaces_in_depth() {
        let e = Expr::add(Expr::var(v(0)), Expr::mul(Expr::var(v(0)), Expr::int(2)));
        let s = e.subst_var(v(0), &Expr::int(4));
        assert!(!s.uses_var(v(0)));
        assert_eq!(s.as_affine(), Some((None, 0, 12)));
    }

    #[test]
    fn intrinsic_names() {
        assert_eq!(Intrinsic::from_name("max"), Some(Intrinsic::Max));
        assert_eq!(Intrinsic::from_name("sqrt"), Some(Intrinsic::Sqrt));
        assert_eq!(Intrinsic::from_name("banana"), None);
    }

    #[test]
    fn for_each_load_counts() {
        let load = |a: usize| Expr::Load {
            array: ArrayId(a),
            indices: vec![Expr::int(1)],
            mode: AddrMode::Direct,
        };
        let e = Expr::add(load(0), Expr::mul(load(1), load(0)));
        let mut n = 0;
        e.for_each_load(&mut |_, _, _| n += 1);
        assert_eq!(n, 3);
    }
}
