//! Structural validation of IR programs.
//!
//! Run after lowering and after every compiler pass in debug builds; a
//! pass that produces out-of-range ids, rank-mismatched references or
//! malformed distributions is caught here rather than as an interpreter
//! panic three crates away.

use crate::dist::DistKind;
use crate::expr::Expr;
use crate::program::{Param, Program, Storage, Subroutine};
use crate::stmt::{ActualArg, Stmt};

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateError {
    /// Subroutine where the problem was found.
    pub sub: String,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir validation failed in `{}`: {}", self.sub, self.msg)
    }
}

impl std::error::Error for ValidateError {}

/// Validate a whole program.
///
/// # Errors
///
/// Returns the first structural problem found: dangling ids, arity
/// mismatches on array references, distribution rank mismatches, unknown
/// callees, or a reshaped array with no distribution.
pub fn validate_program(p: &Program) -> Result<(), ValidateError> {
    if p.subs.is_empty() {
        return Err(ValidateError {
            sub: "<program>".into(),
            msg: "no subroutines".into(),
        });
    }
    if p.main >= p.subs.len() {
        return Err(ValidateError {
            sub: "<program>".into(),
            msg: format!("main index {} out of range", p.main),
        });
    }
    for s in &p.subs {
        validate_sub(p, s)?;
    }
    Ok(())
}

fn err(s: &Subroutine, msg: String) -> ValidateError {
    ValidateError {
        sub: s.name.clone(),
        msg,
    }
}

fn validate_sub(p: &Program, s: &Subroutine) -> Result<(), ValidateError> {
    // Declarations.
    for (i, a) in s.arrays.iter().enumerate() {
        if a.dims.is_empty() {
            return Err(err(s, format!("array `{}` has no dimensions", a.name)));
        }
        match (&a.dist, a.dist_kind) {
            (None, DistKind::Regular | DistKind::Reshaped) => {
                return Err(err(
                    s,
                    format!("array `{}` has dist kind but no distribution", a.name),
                ));
            }
            (Some(d), _) if d.dims.len() != a.dims.len() => {
                return Err(err(
                    s,
                    format!(
                        "array `{}`: distribution rank {} != array rank {}",
                        a.name,
                        d.dims.len(),
                        a.dims.len()
                    ),
                ));
            }
            _ => {}
        }
        if let Storage::Common { block, .. } = &a.storage {
            if p.common_named(block).is_none() {
                return Err(err(
                    s,
                    format!("array `{}` references unknown common `{block}`", a.name),
                ));
            }
        }
        for eq in &a.equivalenced_with {
            if eq.0 >= s.arrays.len() {
                return Err(err(
                    s,
                    format!("array `{}` equivalenced with bad id {}", a.name, eq.0),
                ));
            }
        }
        let _ = i;
    }
    for prm in &s.params {
        match prm {
            Param::Array(a) => {
                if a.0 >= s.arrays.len() {
                    return Err(err(s, format!("array param id {} out of range", a.0)));
                }
                if !matches!(s.arrays[a.0].storage, Storage::Formal { .. }) {
                    return Err(err(
                        s,
                        format!(
                            "param array `{}` must have Formal storage",
                            s.arrays[a.0].name
                        ),
                    ));
                }
            }
            Param::Scalar(v) => {
                if v.0 >= s.scalars.len() {
                    return Err(err(s, format!("scalar param id {} out of range", v.0)));
                }
            }
        }
    }
    // Statements.
    for st in &s.body {
        validate_stmt(s, st)?;
    }
    Ok(())
}

fn validate_stmt(s: &Subroutine, st: &Stmt) -> Result<(), ValidateError> {
    match st {
        Stmt::Assign {
            array,
            indices,
            value,
            ..
        } => {
            check_ref(s, array.0, indices.len())?;
            for e in indices {
                validate_expr(s, e)?;
            }
            validate_expr(s, value)
        }
        Stmt::SAssign { var, value } => {
            if var.0 >= s.scalars.len() {
                return Err(err(s, format!("scalar id {} out of range", var.0)));
            }
            validate_expr(s, value)
        }
        Stmt::Loop(l) => {
            if l.var.0 >= s.scalars.len() {
                return Err(err(s, format!("loop var id {} out of range", l.var.0)));
            }
            validate_expr(s, &l.lb)?;
            validate_expr(s, &l.ub)?;
            validate_expr(s, &l.step)?;
            if let Some(d) = &l.par {
                if let Some(aff) = &d.affinity {
                    check_ref(s, aff.array.0, aff.indices.len())?;
                }
            }
            for b in &l.body {
                validate_stmt(s, b)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            validate_expr(s, cond)?;
            for b in then_body.iter().chain(else_body) {
                validate_stmt(s, b)?;
            }
            Ok(())
        }
        Stmt::Call { name, args } => {
            // Callee resolution is the pre-linker's job (separate
            // compilation): an unknown name here is a *link* error, not an
            // IR-validity error.
            let _ = name;
            for a in args {
                match a {
                    ActualArg::Array(id) => {
                        if id.0 >= s.arrays.len() {
                            return Err(err(s, format!("actual array id {} out of range", id.0)));
                        }
                    }
                    ActualArg::ArrayElem(id, idx) => {
                        check_ref(s, id.0, idx.len())?;
                        for e in idx {
                            validate_expr(s, e)?;
                        }
                    }
                    ActualArg::Scalar(e) => validate_expr(s, e)?,
                }
            }
            Ok(())
        }
        Stmt::Redistribute { array, dist } => {
            if array.0 >= s.arrays.len() {
                return Err(err(s, format!("redistribute of bad array id {}", array.0)));
            }
            let a = &s.arrays[array.0];
            if dist.dims.len() != a.dims.len() {
                return Err(err(
                    s,
                    format!("redistribute of `{}`: rank mismatch", a.name),
                ));
            }
            if a.dist_kind == DistKind::Reshaped {
                return Err(err(
                    s,
                    format!("redistribute of reshaped array `{}` is not allowed", a.name),
                ));
            }
            Ok(())
        }
        Stmt::ResizeTeam { nprocs } => {
            if *nprocs == 0 {
                return Err(err(s, "resize_team to a team of zero processors".into()));
            }
            for a in &s.arrays {
                if a.dist_kind == DistKind::Reshaped {
                    return Err(err(
                        s,
                        format!("resize_team with reshaped array `{}` declared", a.name),
                    ));
                }
            }
            Ok(())
        }
        Stmt::Barrier | Stmt::Overhead { .. } => Ok(()),
    }
}

fn check_ref(s: &Subroutine, array: usize, arity: usize) -> Result<(), ValidateError> {
    if array >= s.arrays.len() {
        return Err(err(s, format!("array id {array} out of range")));
    }
    let a = &s.arrays[array];
    if arity != a.dims.len() {
        return Err(err(
            s,
            format!(
                "reference to `{}` has {} indices, rank is {}",
                a.name,
                arity,
                a.dims.len()
            ),
        ));
    }
    Ok(())
}

fn validate_expr(s: &Subroutine, e: &Expr) -> Result<(), ValidateError> {
    match e {
        Expr::IConst(_) | Expr::FConst(_) | Expr::Rt(_) => Ok(()),
        Expr::Var(v) => {
            if v.0 >= s.scalars.len() {
                Err(err(s, format!("scalar id {} out of range", v.0)))
            } else {
                Ok(())
            }
        }
        Expr::Load { array, indices, .. } => {
            check_ref(s, array.0, indices.len())?;
            for i in indices {
                validate_expr(s, i)?;
            }
            Ok(())
        }
        Expr::Unary(_, x) => validate_expr(s, x),
        Expr::Binary(_, a, b) => {
            validate_expr(s, a)?;
            validate_expr(s, b)
        }
        Expr::Call(_, args) => {
            for a in args {
                validate_expr(s, a)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, Distribution};
    use crate::program::{ArrayDecl, ArrayId, Extent, ScalarDecl, ScalarTy, VarId};
    use crate::stmt::AddrMode;

    fn base_program() -> Program {
        Program {
            subs: vec![Subroutine {
                name: "main".into(),
                params: vec![],
                scalars: vec![ScalarDecl {
                    name: "i".into(),
                    ty: ScalarTy::Int,
                }],
                arrays: vec![ArrayDecl {
                    name: "a".into(),
                    ty: ScalarTy::Real,
                    dims: vec![Extent::Const(10)],
                    storage: Storage::Local,
                    dist_kind: DistKind::None,
                    dist: None,
                    equivalenced_with: vec![],
                }],
                body: vec![],
                source_file: 0,
            }],
            main: 0,
            commons: vec![],
            files: vec!["t.f".into()],
        }
    }

    #[test]
    fn valid_program_passes() {
        assert!(validate_program(&base_program()).is_ok());
    }

    #[test]
    fn empty_program_fails() {
        assert!(validate_program(&Program::default()).is_err());
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut p = base_program();
        p.subs[0].body.push(Stmt::Assign {
            array: ArrayId(0),
            indices: vec![Expr::int(1), Expr::int(2)], // rank is 1
            value: Expr::int(0),
            mode: AddrMode::Direct,
        });
        let e = validate_program(&p).unwrap_err();
        assert!(e.msg.contains("indices"), "{e}");
    }

    #[test]
    fn unknown_callee_tolerated_until_link() {
        let mut p = base_program();
        p.subs[0].body.push(Stmt::Call {
            name: "nosuch".into(),
            args: vec![],
        });
        assert!(
            validate_program(&p).is_ok(),
            "callee resolution is the pre-linker's job"
        );
    }

    #[test]
    fn dangling_var_detected() {
        let mut p = base_program();
        p.subs[0].body.push(Stmt::SAssign {
            var: VarId(9),
            value: Expr::int(1),
        });
        assert!(validate_program(&p).is_err());
    }

    #[test]
    fn redistribute_of_reshaped_rejected() {
        let mut p = base_program();
        let a = &mut p.subs[0].arrays[0];
        a.dist_kind = DistKind::Reshaped;
        a.dist = Some(Distribution::new(vec![Dist::Block]));
        p.subs[0].body.push(Stmt::Redistribute {
            array: ArrayId(0),
            dist: Distribution::new(vec![Dist::Cyclic(1)]),
        });
        let e = validate_program(&p).unwrap_err();
        assert!(e.msg.contains("reshaped"), "{e}");
    }

    #[test]
    fn dist_kind_without_distribution_rejected() {
        let mut p = base_program();
        p.subs[0].arrays[0].dist_kind = DistKind::Regular;
        assert!(validate_program(&p).is_err());
    }

    #[test]
    fn distribution_rank_mismatch_rejected() {
        let mut p = base_program();
        let a = &mut p.subs[0].arrays[0];
        a.dist_kind = DistKind::Regular;
        a.dist = Some(Distribution::new(vec![Dist::Block, Dist::Star]));
        assert!(validate_program(&p).is_err());
    }
}
