//! # dsm-ir
//!
//! The loop-nest intermediate representation shared by the frontend, the
//! directive compiler and the executor of this PLDI'97 reproduction.
//!
//! The IR models explicitly-parallel Fortran programs the way the MIPSpro
//! compiler of the paper sees them:
//!
//! * counted `do` loops, optionally carrying a `c$doacross` annotation
//!   ([`Doacross`]) with `local`/`shared` lists, a [`SchedType`], an
//!   [`Affinity`] clause and a `nest` depth;
//! * array declarations ([`ArrayDecl`]) with optional [`Distribution`]s of
//!   kind [`DistKind::Regular`] (`c$distribute`) or
//!   [`DistKind::Reshaped`] (`c$distribute_reshape`);
//! * assignments and loads over arrays with an explicit
//!   [`AddrMode`] describing how much address arithmetic the generated code
//!   performs per reference — the quantity the paper's Section 7
//!   optimizations reduce;
//! * subroutine calls with whole-array and array-element actuals, the cases
//!   the paper's propagation/cloning and runtime checks distinguish.
//!
//! Compiler passes (crate `dsm-compile`) rewrite this IR in place: the
//! affinity-scheduling pass produces processor-tile loops
//! ([`SchedType::ProcTile`]) with Figure-2 bounds built from runtime
//! queries ([`Expr::Rt`]); the reshape optimizations of Section 7 upgrade
//! reference [`AddrMode`]s and emit explicit [`Stmt::Overhead`] statements
//! for hoisted computations, keeping every cycle visible in IR dumps.

pub mod dist;
pub mod expr;
pub mod printer;
pub mod program;
pub mod stmt;
pub mod validate;

pub use dist::{Dist, DistKind, Distribution, OntoSpec};
pub use expr::{BinOp, Expr, Intrinsic, RtExpr, UnOp};
pub use program::{
    ArrayDecl, ArrayId, CommonBlockDecl, Extent, Param, Program, ScalarDecl, ScalarTy, Storage,
    SubId, Subroutine, VarId,
};
pub use stmt::{ActualArg, AddrMode, AffIdx, Affinity, Doacross, LoopStmt, SchedType, Stmt};
pub use validate::{validate_program, ValidateError};
