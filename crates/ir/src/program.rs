//! Programs, subroutines and declarations.
//!
//! A [`Program`] is a set of [`Subroutine`]s (one of which is the main
//! program) plus machine-wide [`CommonBlockDecl`]s.  Array and scalar ids
//! are *subroutine-local* indices into the subroutine's declaration
//! tables; common-block members are linked to global storage through
//! [`Storage::Common`], formal parameters through [`Storage::Formal`].

use crate::dist::{DistKind, Distribution};
use crate::stmt::Stmt;

/// Subroutine-local scalar variable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

/// Subroutine-local array id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub usize);

/// Index of a subroutine within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubId(pub usize);

/// Scalar type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScalarTy {
    /// `integer`.
    #[default]
    Int,
    /// `real*8`.
    Real,
}

/// A scalar declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarDecl {
    /// Source name (lower-case).
    pub name: String,
    /// Type.
    pub ty: ScalarTy,
}

/// One dimension extent: a literal or an integer scalar (formal parameter
/// or common variable), as in `real*8 X(n, 5)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Extent {
    /// Literal size.
    Const(i64),
    /// Size held in an integer scalar, evaluated at subroutine entry.
    Var(VarId),
}

/// Where an array's storage comes from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Storage {
    /// Subroutine-local array (stack/heap allocated at entry).
    Local,
    /// Member of a common block: `(block name, member index)`.
    Common {
        /// Common block name.
        block: String,
        /// Position within the block's member list.
        member: usize,
    },
    /// Formal array parameter, bound to an actual at call time;
    /// `position` is the argument index.
    Formal {
        /// Zero-based argument position.
        position: usize,
    },
}

/// An array declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayDecl {
    /// Source name (lower-case).
    pub name: String,
    /// Element type.
    pub ty: ScalarTy,
    /// Extents, leftmost (fastest-varying, Fortran column-major) first.
    pub dims: Vec<Extent>,
    /// Storage class.
    pub storage: Storage,
    /// Distribution directive kind.
    pub dist_kind: DistKind,
    /// The distribution, if any.
    pub dist: Option<Distribution>,
    /// Arrays this one is `EQUIVALENCE`d with (by subroutine-local id).
    /// Needed only for the compile-time legality check.
    pub equivalenced_with: Vec<ArrayId>,
}

impl ArrayDecl {
    /// Bytes per element (both `integer` and `real*8` are 8 bytes here).
    pub fn elem_bytes(&self) -> usize {
        8
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum Param {
    /// Array parameter; the id indexes the subroutine's array table.
    Array(ArrayId),
    /// Scalar parameter (by value in this model).
    Scalar(VarId),
}

/// A subroutine (or the main program).
#[derive(Debug, Clone, PartialEq)]
pub struct Subroutine {
    /// Name (lower-case); clones get suffixed names.
    pub name: String,
    /// Formal parameters in order.
    pub params: Vec<Param>,
    /// Scalar table (indexed by [`VarId`]).
    pub scalars: Vec<ScalarDecl>,
    /// Array table (indexed by [`ArrayId`]).
    pub arrays: Vec<ArrayDecl>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Which source file the subroutine came from (for shadow files /
    /// pre-linking); index into the compilation's file list.
    pub source_file: usize,
}

impl Subroutine {
    /// Find a scalar by name.
    pub fn scalar_named(&self, name: &str) -> Option<VarId> {
        self.scalars.iter().position(|s| s.name == name).map(VarId)
    }

    /// Find an array by name.
    pub fn array_named(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// Add a fresh compiler-generated integer scalar, returning its id.
    pub fn fresh_scalar(&mut self, prefix: &str) -> VarId {
        let id = VarId(self.scalars.len());
        self.scalars.push(ScalarDecl {
            name: format!("{prefix}${}", self.scalars.len()),
            ty: ScalarTy::Int,
        });
        id
    }
}

/// A common block: named global storage with a fixed member layout that
/// every declaring subroutine must agree on when reshaped members are
/// present (the paper's link-time consistency rule).
#[derive(Debug, Clone, PartialEq)]
pub struct CommonBlockDecl {
    /// Block name.
    pub name: String,
    /// Canonical member array declarations (taken from the defining file
    /// after the pre-linker has verified consistency).
    pub members: Vec<ArrayDecl>,
}

/// A whole program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// All subroutines; entry 0 need not be main.
    pub subs: Vec<Subroutine>,
    /// Index of the main program in `subs`.
    pub main: usize,
    /// Common blocks after link-time merging.
    pub commons: Vec<CommonBlockDecl>,
    /// Source file names (for diagnostics).
    pub files: Vec<String>,
}

impl Program {
    /// Look up a subroutine by name.
    pub fn sub_named(&self, name: &str) -> Option<SubId> {
        self.subs.iter().position(|s| s.name == name).map(SubId)
    }

    /// The main subroutine.
    pub fn main_sub(&self) -> &Subroutine {
        &self.subs[self.main]
    }

    /// Look up a common block by name.
    pub fn common_named(&self, name: &str) -> Option<&CommonBlockDecl> {
        self.commons.iter().find(|c| c.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Dist, DistKind, Distribution};

    fn sub() -> Subroutine {
        Subroutine {
            name: "main".into(),
            params: vec![],
            scalars: vec![
                ScalarDecl {
                    name: "i".into(),
                    ty: ScalarTy::Int,
                },
                ScalarDecl {
                    name: "x".into(),
                    ty: ScalarTy::Real,
                },
            ],
            arrays: vec![ArrayDecl {
                name: "a".into(),
                ty: ScalarTy::Real,
                dims: vec![Extent::Const(100)],
                storage: Storage::Local,
                dist_kind: DistKind::Regular,
                dist: Some(Distribution::new(vec![Dist::Block])),
                equivalenced_with: vec![],
            }],
            body: vec![],
            source_file: 0,
        }
    }

    #[test]
    fn lookup_by_name() {
        let s = sub();
        assert_eq!(s.scalar_named("x"), Some(VarId(1)));
        assert_eq!(s.scalar_named("zz"), None);
        assert_eq!(s.array_named("a"), Some(ArrayId(0)));
    }

    #[test]
    fn fresh_scalars_are_unique() {
        let mut s = sub();
        let a = s.fresh_scalar("t");
        let b = s.fresh_scalar("t");
        assert_ne!(a, b);
        assert_ne!(s.scalars[a.0].name, s.scalars[b.0].name);
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            subs: vec![sub()],
            main: 0,
            commons: vec![],
            files: vec![],
        };
        assert_eq!(p.sub_named("main"), Some(SubId(0)));
        assert_eq!(p.sub_named("other"), None);
        assert_eq!(p.main_sub().name, "main");
    }
}
