//! Data-distribution descriptors: the `c$distribute` family.
//!
//! A [`Distribution`] mirrors the paper's directive (Section 3.2):
//!
//! ```fortran
//!       real*8 A(m, n, ...)
//! c$distribute A(<dist>, <dist>, ...) onto (p1, p2, ...)
//! ```
//!
//! where each `<dist>` is `block`, `cyclic`, `cyclic(<expr>)` or `*`, with
//! HPF semantics.  The same descriptor serves `c$distribute_reshape` and
//! `c$redistribute`; [`DistKind`] records which directive introduced it.

/// Distribution format of a single array dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dist {
    /// `block`: contiguous chunks of `ceil(N/P)` elements per processor.
    Block,
    /// `cyclic(k)`: chunks of `k` elements dealt round-robin.
    /// `cyclic` is `Cyclic(1)`.
    Cyclic(u64),
    /// `*`: dimension not distributed.
    Star,
}

impl Dist {
    /// True if this dimension is actually distributed across processors.
    pub fn is_distributed(&self) -> bool {
        !matches!(self, Dist::Star)
    }
}

impl std::fmt::Display for Dist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dist::Block => write!(f, "block"),
            Dist::Cyclic(1) => write!(f, "cyclic"),
            Dist::Cyclic(k) => write!(f, "cyclic({k})"),
            Dist::Star => write!(f, "*"),
        }
    }
}

/// An `onto(p1, p2, …)` clause: relative weights for dividing the total
/// processor count across the distributed dimensions.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct OntoSpec {
    /// One weight per *distributed* dimension, in order.
    pub ratios: Vec<u64>,
}

/// Which directive declared a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistKind {
    /// No distribution directive.
    #[default]
    None,
    /// `c$distribute`: page-granular placement, layout unchanged.
    Regular,
    /// `c$distribute_reshape`: layout reorganized into per-processor
    /// portions; exact distribution guaranteed.
    Reshaped,
}

impl std::fmt::Display for DistKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistKind::None => write!(f, "none"),
            DistKind::Regular => write!(f, "distribute"),
            DistKind::Reshaped => write!(f, "distribute_reshape"),
        }
    }
}

/// A complete distribution for an array: one [`Dist`] per dimension plus an
/// optional `onto` clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Distribution {
    /// Per-dimension formats, innermost (Fortran leftmost) first.
    pub dims: Vec<Dist>,
    /// Optional processor-assignment ratios across distributed dims.
    pub onto: Option<OntoSpec>,
}

impl Distribution {
    /// Distribution with the given per-dimension formats and no `onto`.
    pub fn new(dims: Vec<Dist>) -> Self {
        Distribution { dims, onto: None }
    }

    /// Number of distributed (non-`*`) dimensions.
    pub fn n_distributed(&self) -> usize {
        self.dims.iter().filter(|d| d.is_distributed()).count()
    }

    /// Indices of the distributed dimensions, in declaration order.
    pub fn distributed_dims(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_distributed())
            .map(|(i, _)| i)
            .collect()
    }

    /// Factor `nprocs` into a processor-grid extent per *distributed*
    /// dimension, honouring the `onto` ratios when present; without `onto`,
    /// processors are split as evenly as possible (favouring earlier
    /// dimensions).  Always returns at least 1 per dimension and a product
    /// ≤ `nprocs` (the product may be < `nprocs` if it does not factor
    /// evenly; leftover processors idle, as on the real system).
    ///
    /// Returns an empty vector when nothing is distributed.
    pub fn factor_grid(&self, nprocs: usize) -> Vec<usize> {
        let nd = self.n_distributed();
        if nd == 0 {
            return Vec::new();
        }
        if nd == 1 {
            return vec![nprocs.max(1)];
        }
        let ratios: Vec<u64> = match &self.onto {
            Some(o) if o.ratios.len() == nd => o.ratios.clone(),
            _ => vec![1; nd],
        };
        // Enumerate factorizations g with product(g) <= nprocs, preferring
        // the largest product, then the grid whose shape best matches the
        // requested ratios (in log space).
        let mut best: Option<(usize, f64, Vec<usize>)> = None;
        let mut current = vec![1usize; nd];
        Self::enumerate_grids(nprocs, 0, &mut current, &mut |g| {
            let prod: usize = g.iter().product();
            let dev: f64 = {
                // Normalize both shapes and compare in log space.
                let gs: f64 = g.iter().map(|&x| (x as f64).ln()).sum::<f64>() / nd as f64;
                let rs: f64 = ratios.iter().map(|&x| (x as f64).ln()).sum::<f64>() / nd as f64;
                g.iter()
                    .zip(&ratios)
                    .map(|(&gi, &ri)| ((gi as f64).ln() - gs - ((ri as f64).ln() - rs)).abs())
                    .sum()
            };
            let better = match &best {
                None => true,
                Some((bp, bd, _)) => prod > *bp || (prod == *bp && dev < *bd - 1e-12),
            };
            if better {
                best = Some((prod, dev, g.to_vec()));
            }
        });
        best.map(|(_, _, g)| g).unwrap_or_else(|| vec![1; nd])
    }

    /// Enumerate all `dims.len()`-tuples of positive integers with product
    /// ≤ `budget`, writing each into `dims[pos..]` and invoking `f`.
    fn enumerate_grids(
        budget: usize,
        pos: usize,
        dims: &mut Vec<usize>,
        f: &mut impl FnMut(&[usize]),
    ) {
        if pos == dims.len() {
            f(dims);
            return;
        }
        let mut v = 1;
        while v <= budget {
            dims[pos] = v;
            Self::enumerate_grids(budget / v, pos + 1, dims, f);
            v += 1;
        }
    }

    /// Block size for a dimension of extent `n` split over `p` processors.
    pub fn block_size(n: u64, p: u64) -> u64 {
        n.div_ceil(p.max(1))
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")?;
        if let Some(o) = &self.onto {
            write!(f, " onto (")?;
            for (i, r) in o.ratios.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let d = Distribution::new(vec![
            Dist::Star,
            Dist::Block,
            Dist::Cyclic(1),
            Dist::Cyclic(5),
        ]);
        assert_eq!(d.to_string(), "(*, block, cyclic, cyclic(5))");
    }

    #[test]
    fn distributed_dims_skips_star() {
        let d = Distribution::new(vec![Dist::Star, Dist::Block, Dist::Star, Dist::Block]);
        assert_eq!(d.n_distributed(), 2);
        assert_eq!(d.distributed_dims(), vec![1, 3]);
    }

    #[test]
    fn factor_single_dim_takes_all() {
        let d = Distribution::new(vec![Dist::Block, Dist::Star]);
        assert_eq!(d.factor_grid(16), vec![16]);
        assert_eq!(d.factor_grid(1), vec![1]);
    }

    #[test]
    fn factor_two_dims_splits_evenly() {
        let d = Distribution::new(vec![Dist::Block, Dist::Block]);
        assert_eq!(d.factor_grid(16), vec![4, 4]);
        let g = d.factor_grid(8);
        assert_eq!(g.iter().product::<usize>(), 8);
    }

    #[test]
    fn factor_respects_onto_ratios() {
        let mut d = Distribution::new(vec![Dist::Block, Dist::Block]);
        d.onto = Some(OntoSpec { ratios: vec![4, 1] });
        let g = d.factor_grid(16);
        assert_eq!(g.iter().product::<usize>(), 16);
        assert!(
            g[0] > g[1],
            "onto(4,1) must give dim 0 more processors: {g:?}"
        );
    }

    #[test]
    fn factor_never_exceeds_nprocs() {
        for n in 1..40 {
            let d = Distribution::new(vec![Dist::Block, Dist::Cyclic(2)]);
            let g = d.factor_grid(n);
            assert!(g.iter().product::<usize>() <= n, "nprocs={n} grid={g:?}");
            assert!(g.iter().all(|&e| e >= 1));
        }
    }

    #[test]
    fn factor_nothing_distributed() {
        let d = Distribution::new(vec![Dist::Star, Dist::Star]);
        assert!(d.factor_grid(8).is_empty());
    }

    #[test]
    fn block_size_rounds_up() {
        assert_eq!(Distribution::block_size(1000, 3), 334);
        assert_eq!(Distribution::block_size(1000, 4), 250);
        assert_eq!(Distribution::block_size(5, 8), 1);
        assert_eq!(Distribution::block_size(5, 0), 5);
    }
}
