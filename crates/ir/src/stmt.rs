//! Statements, loops and parallel annotations.

use crate::dist::Distribution;
use crate::expr::Expr;
use crate::program::{ArrayId, VarId};

/// How the generated code computes the address of a distributed-array
/// reference (Section 7 of the paper).
///
/// The executor computes the *correct* address from the runtime descriptor
/// in every mode; the mode controls the **addressing overhead** charged per
/// reference and whether the portion-pointer load (the indirect load
/// through the Figure-3 processor array) is performed per access:
///
/// * [`AddrMode::Direct`] — ordinary column-major arithmetic (non-reshaped
///   arrays, or the "original code without reshaping" row of Table 2).
/// * [`AddrMode::ReshapedRaw`] — the untransformed Table-1 form: one
///   integer `div` + `mod` per distributed dimension **and** an indirect
///   load of the portion pointer, per access.
/// * [`AddrMode::ReshapedTiled`] — after tiling/peeling: the `div`/`mod`
///   are gone from the inner loop (the processor index is the tile-loop
///   variable, the local index a running counter) but the portion pointer
///   is still re-loaded per access because indirect loads cannot be
///   speculated by the scalar optimizer.
/// * [`AddrMode::ReshapedHoisted`] — after the Section-7.2 hoisting/CSE
///   fixes: pointer and bounds loads hoisted out of the loop; per-access
///   overhead identical to `Direct`.
/// * [`AddrMode::ReshapedRawFp`] — as `ReshapedRaw` but with `div`/`mod`
///   emulated in floating point (Section 7.3, 11 vs 35 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddrMode {
    /// Plain base + column-major offset.
    #[default]
    Direct,
    /// Per-access integer div/mod plus indirect portion-pointer load.
    ReshapedRaw,
    /// Per-access FP-emulated div/mod plus indirect portion-pointer load.
    ReshapedRawFp,
    /// Tiled: no div/mod, but per-access indirect portion-pointer load.
    ReshapedTiled,
    /// Tiled + hoisted: no per-access overhead beyond `Direct`.
    ReshapedHoisted,
    /// The div/mod of this reference is subsumed by an earlier reference
    /// in the same statement (ordinary `-O3` common-subexpression
    /// elimination — safe because it does not move the unsafe ops across
    /// control flow); the portion-pointer load remains per access.
    ReshapedSharedDiv,
    /// Both the div/mod and the portion pointer are subsumed by an
    /// earlier reference in the same statement.
    ReshapedSharedAll,
}

/// Iteration-scheduling policy of a `doacross` (the `schedtype` clause,
/// plus the compiler-internal processor-tile form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedType {
    /// `simple`: divide `[lb, ub]` into `P` contiguous chunks.
    #[default]
    Simple,
    /// `interleave(k)`: deal chunks of `k` iterations round-robin.
    Interleave(u64),
    /// `dynamic(k)`: processors grab chunks of `k`; modelled
    /// deterministically as interleaved with per-chunk dispatch cost.
    Dynamic(u64),
    /// Affinity scheduling that the compiler has *not* lowered: the runtime
    /// partitions iterations so iteration `i` runs on the processor owning
    /// the affine element of the affinity array.
    RuntimeAffinity,
    /// Compiler-lowered form (Figure 2): the loop variable ranges over the
    /// processor coordinates of distributed dimension `grid_dim` of the
    /// affinity array's processor grid; processor with coordinate `p`
    /// executes exactly the iteration with loop-var = `p`.
    ProcTile {
        /// Which distributed-grid axis this tile loop walks.
        grid_dim: usize,
    },
}

/// One index position of an `affinity(i, j, …) = data(A(…))` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum AffIdx {
    /// The index is `scale * <loop-var> + offset` with literal constants —
    /// the only form the paper accepts (`p` non-negative).
    Loop {
        /// The doacross loop variable appearing here.
        var: VarId,
        /// Multiplier (non-negative literal).
        scale: i64,
        /// Additive literal constant.
        offset: i64,
    },
    /// Any other expression: the dimension does not participate in
    /// scheduling (evaluated for bounds only).
    Other(Expr),
}

/// An `affinity(...) = data(A(...))` clause on a doacross.
#[derive(Debug, Clone, PartialEq)]
pub struct Affinity {
    /// The distributed array named in `data(...)`.
    pub array: ArrayId,
    /// One entry per dimension of `array`.
    pub indices: Vec<AffIdx>,
}

/// A `c$doacross` annotation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Doacross {
    /// Loop variables of the parallel nest (`nest(i, j)` lists more than
    /// one); the annotated loop's own variable is first.
    pub nest_vars: Vec<VarId>,
    /// Variables with a private copy per iteration.
    pub locals: Vec<VarId>,
    /// Variables shared across iterations (informational; scalars default
    /// to shared).
    pub shared: Vec<VarId>,
    /// Scheduling policy.
    pub sched: SchedType,
    /// Optional affinity clause.
    pub affinity: Option<Affinity>,
}

/// A counted `do` loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopStmt {
    /// Loop variable.
    pub var: VarId,
    /// Lower bound (inclusive).
    pub lb: Expr,
    /// Upper bound (inclusive, Fortran).
    pub ub: Expr,
    /// Step (non-zero literal or expression).
    pub step: Expr,
    /// Loop body.
    pub body: Vec<Stmt>,
    /// Parallel annotation, if this is a doacross (or a compiler-produced
    /// processor-tile loop).
    pub par: Option<Doacross>,
}

/// An actual argument at a call site.
#[derive(Debug, Clone, PartialEq)]
pub enum ActualArg {
    /// Passing a whole array: `call sub(A)`.
    Array(ArrayId),
    /// Passing an element: `call sub(A(i))` — for a reshaped array this
    /// passes the containing *portion* (paper Section 3.2.1).
    ArrayElem(ArrayId, Vec<Expr>),
    /// A scalar value.
    Scalar(Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `A(indices) = value`.
    Assign {
        /// Destination array.
        array: ArrayId,
        /// 1-based index expressions.
        indices: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
        /// Address-computation strategy for the store.
        mode: AddrMode,
    },
    /// `var = value` (scalar).
    SAssign {
        /// Destination scalar.
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// A counted loop.
    Loop(Box<LoopStmt>),
    /// `if (cond) then ... else ... endif`; `cond` is integer 0/1.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch.
        else_body: Vec<Stmt>,
    },
    /// `call name(args)`.
    Call {
        /// Callee name (resolved against the program's subroutines,
        /// post-cloning).
        name: String,
        /// Actual arguments.
        args: Vec<ActualArg>,
    },
    /// `c$redistribute A(<dist>, ...)` — executable, regular arrays only.
    Redistribute {
        /// Array being redistributed.
        array: ArrayId,
        /// New distribution.
        dist: Distribution,
    },
    /// Explicit barrier across the executing team.
    Barrier,
    /// `c$resize_team(P)` — re-chunk every regular distribution for a
    /// team of `P` processors, moving only the delta pages.
    ResizeTeam {
        /// New team size (positive).
        nprocs: u64,
    },
    /// Compiler-emitted bookkeeping cost: operations hoisted out of a loop
    /// by the Section-7.2 optimizations are charged here, once, instead of
    /// per iteration.  Keeps the cost model visible in IR dumps.
    Overhead {
        /// Integer div/mod operations performed.
        int_divs: u32,
        /// Indirect (pointer) loads performed.
        indirect_loads: u32,
        /// Plain ALU operations performed.
        int_alu: u32,
    },
}

impl Stmt {
    /// Visit this statement and all nested statements, pre-order.
    pub fn walk(&self, f: &mut impl FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::Loop(l) => {
                for s in &l.body {
                    s.walk(f);
                }
            }
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body.iter().chain(else_body) {
                    s.walk(f);
                }
            }
            _ => {}
        }
    }

    /// Visit every array reference (loads in expressions and stores) in
    /// this statement subtree. The callback receives
    /// `(array, indices, mode, is_store)`.
    pub fn for_each_ref(&self, f: &mut impl FnMut(ArrayId, &[Expr], AddrMode, bool)) {
        self.walk(&mut |s| match s {
            Stmt::Assign {
                array,
                indices,
                value,
                mode,
            } => {
                f(*array, indices, *mode, true);
                for i in indices {
                    i.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
                }
                value.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
            }
            Stmt::SAssign { value, .. } => {
                value.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
            }
            Stmt::If { cond, .. } => {
                cond.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
            }
            Stmt::Loop(l) => {
                for e in [&l.lb, &l.ub, &l.step] {
                    e.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
                }
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    match a {
                        ActualArg::Scalar(e) => {
                            e.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
                        }
                        ActualArg::ArrayElem(_, idx) => {
                            for e in idx {
                                e.for_each_load(&mut |a, ix, m| f(a, ix, m, false));
                            }
                        }
                        ActualArg::Array(_) => {}
                    }
                }
            }
            _ => {}
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn simple_loop() -> Stmt {
        Stmt::Loop(Box::new(LoopStmt {
            var: VarId(0),
            lb: Expr::int(1),
            ub: Expr::int(10),
            step: Expr::int(1),
            body: vec![Stmt::Assign {
                array: ArrayId(0),
                indices: vec![Expr::var(VarId(0))],
                value: Expr::Load {
                    array: ArrayId(1),
                    indices: vec![Expr::var(VarId(0))],
                    mode: AddrMode::ReshapedRaw,
                },
                mode: AddrMode::Direct,
            }],
            par: None,
        }))
    }

    #[test]
    fn walk_visits_nested() {
        let mut n = 0;
        simple_loop().walk(&mut |_| n += 1);
        assert_eq!(n, 2); // loop + assign
    }

    #[test]
    fn for_each_ref_distinguishes_stores() {
        let mut stores = 0;
        let mut loads = 0;
        simple_loop().for_each_ref(&mut |_, _, _, is_store| {
            if is_store {
                stores += 1;
            } else {
                loads += 1;
            }
        });
        assert_eq!((stores, loads), (1, 1));
    }

    #[test]
    fn addr_mode_default_is_direct() {
        assert_eq!(AddrMode::default(), AddrMode::Direct);
    }
}
