//! Advisor integration: the feedback-directed planner must rediscover
//! the paper's hand-written directive choices — the Figure-5 transpose
//! reshape, the Section-3.3 phases redistribute point — and match or
//! beat the hand-annotated programs, with everything oracle-verified.
//!
//! Workloads here are scaled-down versions of the paper's (the advisor
//! evaluates dozens of candidate simulations per search; full-size runs
//! belong in `dsm-bench`).

use dsm_advisor::{advise, analyze, search, AdvisorConfig, Di};
use dsm_compile::{compile_strings, OptConfig};
use dsm_core::workloads::{transpose_source, Policy};
use dsm_core::{ExecOptions, Machine, MachineConfig, Profile, RunOutcome};

const SCALE: usize = 64;

fn cfg(nprocs: usize, budget: usize) -> AdvisorConfig {
    AdvisorConfig {
        nprocs,
        scale: SCALE,
        budget,
        ..AdvisorConfig::default()
    }
}

/// Compile and run `src` exactly as the advisor's search does
/// (serial-team, scaled Origin-2000), profiled.
fn run_annotated(src: &str, nprocs: usize) -> RunOutcome {
    let compiled = compile_strings(&[("hand.f", src)], &OptConfig::default()).expect("compiles");
    let mut machine = Machine::new(MachineConfig::scaled_origin2000(nprocs, SCALE));
    let opts = ExecOptions::new(nprocs).serial_team(true).profile(true);
    dsm_exec::run_outcome(&mut machine, &compiled.program, &opts).expect("runs")
}

/// Remote misses attributed to `array` inside parallel regions that only
/// *read* it — for the transpose, that is the kernel's `b(i, j)` stream,
/// the access Figure 5 attributes (the init loop writes `b` and is a
/// separate story).
fn kernel_read_remote(profile: &Profile, array: &str) -> u64 {
    profile
        .cells
        .iter()
        .filter(|c| c.array == array && c.region != "(serial)" && c.stats.stores == 0)
        .map(|c| c.stats.remote_misses)
        .sum()
}

fn example(name: &str) -> String {
    let path = format!(
        "{}/../../examples/fortran/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Figure 5: starting from the *stripped* transpose, the advisor must
/// rediscover that `b` wants the reshaped `(block, *)` distribution the
/// paper hand-writes, collapsing `b`'s kernel remote misses to zero —
/// and its whole-program plan must beat the hand-annotated version.
#[test]
fn advisor_rediscovers_the_fig5_transpose_reshape() {
    let (n, reps, nprocs) = (160, 3, 8);
    let stripped = transpose_source(n, reps, Policy::FirstTouch);
    let advice = advise(
        &[("transpose.f".to_string(), stripped.clone())],
        &cfg(nprocs, 30),
    )
    .expect("advise");

    let b = advice.plan.dist_of("b").expect("b is distributed");
    assert!(b.reshape, "b must be reshaped: {:?}", advice.plan);
    assert_eq!(b.items, vec![Di::Block, Di::Star], "{:?}", advice.plan);
    assert!(advice.verified_runs > 0, "winner must be oracle-verified");

    // The first-touch parallel port (the doacross with no distributions)
    // bottlenecks on b: its kernel remote misses are the Figure-5 story.
    let ft = run_annotated(&stripped, nprocs);
    let ft_b = kernel_read_remote(ft.report.profile.as_ref().expect("profile"), "b");
    let win_b = kernel_read_remote(advice.profile.as_ref().expect("winner profile"), "b");
    assert!(ft_b > 1000, "first-touch must miss remotely on b: {ft_b}");
    assert_eq!(
        win_b, 0,
        "the reshape must collapse b's kernel remote misses"
    );

    // Match-or-beat the hand annotation, measured identically.
    let hand = run_annotated(&transpose_source(n, reps, Policy::Reshaped), nprocs);
    assert!(
        advice.best.total_cycles <= hand.report.total_cycles,
        "auto {} > hand {}",
        advice.best.total_cycles,
        hand.report.total_cycles
    );
    assert!(
        advice.best.remote_misses <= hand.report.total.remote_misses,
        "auto remote {} > hand remote {}",
        advice.best.remote_misses,
        hand.report.total.remote_misses
    );
}

/// Section 3.3: on the shipped `examples/fortran/phases.f`, candidate
/// enumeration must propose exactly the hand-written plan — `a(*, block)`
/// at declaration, `c$redistribute a(block, *)` immediately before the
/// second phase.
#[test]
fn advisor_proposes_the_hand_written_redistribute_point_of_phases() {
    let src = example("phases.f");
    let an = analyze(&[("phases.f".to_string(), src)]).expect("analyzes");
    assert_eq!(an.sites.len(), 2);
    assert_eq!(an.sites[0].writes, vec![("a".to_string(), 1)]);
    assert_eq!(an.sites[1].writes, vec![("a".to_string(), 0)]);

    let incumbent = search::parallelize_candidates(&an).remove(1);
    let cands = search::redistribute_candidates(&an, &incumbent);
    let plan = cands
        .iter()
        .find(|p| {
            p.dist_of("a")
                .is_some_and(|d| !d.reshape && d.items == vec![Di::Star, Di::Block])
        })
        .expect("the (*, block) start is proposed");
    assert_eq!(plan.redists.len(), 1);
    assert_eq!(plan.redists[0].items, vec![Di::Block, Di::Star]);
    assert_eq!(
        plan.redists[0].before_line, an.sites[1].line,
        "redistribute goes immediately before the second phase"
    );
}

/// The dynamic side of the phases story, on a scaled-down program: the
/// search must *evaluate* a redistribute-bearing plan and find it
/// profitable, and the overall winner must match or beat the
/// hand-annotated redistribute version.
#[test]
fn advisor_search_finds_redistribution_profitable_on_phases() {
    let n = 128;
    let nprocs = 4;
    let stripped = format!(
        "      program phases
      integer i, j
      real*8 a({n}, {n})
      do j = 1, {n}
        do i = 1, {n}
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, {n}
        do j = 1, {n}
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
"
    );
    let an = analyze(&[("phases.f".to_string(), stripped)]).expect("analyzes");
    let outcome = search::search(&an, &cfg(nprocs, 28)).expect("search");
    let redist = outcome
        .ranked
        .iter()
        .find(|e| !e.plan.redists.is_empty())
        .expect("a redistribute plan was evaluated");
    assert!(
        redist.total_cycles < outcome.baseline.total_cycles,
        "redistribution must beat the serial baseline: {} !< {}",
        redist.total_cycles,
        outcome.baseline.total_cycles
    );

    let hand = format!(
        "      program phases
      integer i, j
      real*8 a({n}, {n})
c$distribute a(*, block)
c$doacross local(i, j) affinity(j) = data(a(1, j))
      do j = 1, {n}
        do i = 1, {n}
          a(i, j) = i + j
        enddo
      enddo
c$redistribute a(block, *)
c$doacross local(i, j) affinity(i) = data(a(i, 1))
      do i = 1, {n}
        do j = 1, {n}
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
"
    );
    let hand_out = run_annotated(&hand, nprocs);
    assert!(
        outcome.ranked[0].total_cycles <= hand_out.report.total_cycles,
        "auto {} > hand {}",
        outcome.ranked[0].total_cycles,
        hand_out.report.total_cycles
    );
}

/// The quickstart walkthrough: `dsmfc --auto` on `heat.f` stripped of its
/// annotations must match or beat the hand-written directives, and the
/// emitted annotated Fortran must recompile to the winner's exact
/// measurement (the round-trip the `--emit-fortran` flag promises).
#[test]
fn advisor_matches_hand_annotated_heat_and_round_trips() {
    let nprocs = 8;
    let src = example("heat.f");
    let advice = advise(&[("heat.f".to_string(), src.clone())], &cfg(nprocs, 24)).expect("advise");

    let hand = run_annotated(&src, nprocs);
    assert!(
        advice.best.total_cycles <= hand.report.total_cycles,
        "auto {} > hand {}",
        advice.best.total_cycles,
        hand.report.total_cycles
    );

    // Round-trip: recompiling the emitted Fortran reproduces the winner.
    let rerun = run_annotated(advice.emitted(), nprocs);
    assert_eq!(rerun.report.total_cycles, advice.best.total_cycles);
    assert_eq!(rerun.report.total.remote_misses, advice.best.remote_misses);

    // The search accounts its own concurrency: summed candidate wall is
    // what a serial search would cost. On a multicore host the wave
    // evaluation must come in under it (on a single core, spawn overhead
    // makes the comparison meaningless, so gate on the core count).
    if std::thread::available_parallelism().map_or(1, usize::from) >= 2 {
        assert!(
            advice.search_wall < advice.serial_eval_wall,
            "candidate evaluation did not overlap: search {:?} vs serial {:?}",
            advice.search_wall,
            advice.serial_eval_wall
        );
    }
}
