//! Differential test: host-parallel team simulation must be
//! observationally identical to the serial reference mode.
//!
//! The parallel path (one host thread per team member, see
//! `dsm-exec::interp` and `docs/SIMULATOR.md`) is only deterministic for
//! conflict-free regions — regions in which no cache line is written by
//! one member while another member reads or writes it.  The paper's
//! evaluation workloads are exactly that shape, so for each of them the
//! serial (`ExecOptions::serial_team`) and parallel runs must agree
//! on
//!
//! * the final contents of every array, and
//! * every per-processor counter set — including cycle counts — because a
//!   member's access stream, cache state, and invalidation traffic are
//!   all independent of how the host interleaved the other members.  (The
//!   zero-cost intervention event counter is the one exception; see
//!   [`normalize`].)

use dsm_core::workloads::{conv2d_source, lu_source, transpose_source, Policy};
use dsm_core::{CounterSet, ExecOptions, RunReport, Session};

/// Zero the one interleaving-sensitive counter. An *intervention* is a
/// read-triggered downgrade of a line some other member wrote in an earlier
/// region; if the owner silently evicts that line (capacity) in the same
/// region another member first reads it, host interleaving decides whether
/// the reader finds it exclusive (intervention) or already dropped (plain
/// read). Interventions cost zero cycles in this model, so cycle counts are
/// still exact; only the event count can wobble by the handful of lines in
/// that transient state.
fn normalize(c: &CounterSet) -> CounterSet {
    let mut c = *c;
    c.interventions = 0;
    c
}

fn run_both(
    src: &str,
    policy: Policy,
    nprocs: usize,
    arrays: &[&str],
) -> [(RunReport, Vec<Vec<f64>>); 2] {
    let prog = Session::new()
        .source("w.f", src)
        .compile()
        .unwrap_or_else(|e| panic!("workload failed to compile: {e:?}"));
    let cfg = policy.machine(nprocs, 2048);
    let serial = prog
        .run(
            &cfg,
            &ExecOptions::new(nprocs).serial_team(true).capture(arrays),
        )
        .expect("serial run");
    let parallel = prog
        .run(&cfg, &ExecOptions::new(nprocs).capture(arrays))
        .expect("parallel run");
    [
        (serial.report, serial.captures),
        (parallel.report, parallel.captures),
    ]
}

fn assert_contents_identical(
    src: &str,
    policy: Policy,
    nprocs: usize,
    arrays: &[&str],
    what: &str,
) -> [(RunReport, Vec<Vec<f64>>); 2] {
    let both = run_both(src, policy, nprocs, arrays);
    let [(_, sc), (_, pc)] = &both;
    for (name, (s, p)) in arrays.iter().zip(sc.iter().zip(pc)) {
        assert_eq!(
            s, p,
            "{what}: array `{name}` differs between serial and parallel"
        );
    }
    both
}

fn assert_identical(src: &str, policy: Policy, nprocs: usize, arrays: &[&str], what: &str) {
    let [(sr, _), (pr, _)] = assert_contents_identical(src, policy, nprocs, arrays, what);
    assert_eq!(
        sr.total_cycles, pr.total_cycles,
        "{what}: total cycles differ"
    );
    for (i, (s, p)) in sr.per_proc.iter().zip(&pr.per_proc).enumerate() {
        assert_eq!(
            normalize(s),
            normalize(p),
            "{what}: P{i} counters differ between serial and parallel"
        );
    }
    assert_eq!(
        normalize(&sr.total),
        normalize(&pr.total),
        "{what}: aggregate counters differ"
    );
    assert_eq!(
        sr.parallel_cycles, pr.parallel_cycles,
        "{what}: region cycle totals differ"
    );
}

#[test]
fn transpose_parallel_matches_serial() {
    for policy in [Policy::Reshaped, Policy::Regular] {
        assert_identical(
            &transpose_source(320, 2, policy),
            policy,
            8,
            &["a", "b"],
            &format!("transpose/{policy:?}"),
        );
    }
}

/// First-touch transpose is *not* conflict-free: page homes are assigned by
/// whichever member faults a boundary page first, and unaligned portions
/// falsely share lines (the serial run itself sends invalidations). Cycle
/// counts therefore legitimately depend on host interleaving; the data — and
/// the deterministic access totals — must not.
#[test]
fn transpose_first_touch_data_matches_serial() {
    let [(sr, _), (pr, _)] = assert_contents_identical(
        &transpose_source(320, 2, Policy::FirstTouch),
        Policy::FirstTouch,
        8,
        &["a", "b"],
        "transpose/FirstTouch",
    );
    assert_eq!(sr.total.loads, pr.total.loads);
    assert_eq!(sr.total.stores, pr.total.stores);
    assert_eq!(sr.total.page_faults, pr.total.page_faults);
}

#[test]
fn conv2d_parallel_matches_serial() {
    assert_identical(
        &conv2d_source(320, 2, Policy::Reshaped, false),
        Policy::Reshaped,
        8,
        &["a", "b"],
        "conv2d/Reshaped",
    );
}

#[test]
fn lu_parallel_matches_serial() {
    assert_identical(
        &lu_source(32, 32, 8, 2, Policy::Reshaped),
        Policy::Reshaped,
        8,
        &["u", "rsd"],
        "lu/Reshaped",
    );
}
