//! The code fragments printed in the paper, compiled (and where runnable,
//! executed) verbatim — modulo the paper's own typesetting garbles, which
//! are restored to the obvious intended Fortran.

use dsm_core::{ExecOptions, MachineConfig, OptConfig, Session};

fn compile(src: &str) -> dsm_core::CompiledProgram {
    Session::new()
        .source("paper.f", src)
        .optimize(OptConfig::default())
        .compile()
        .unwrap_or_else(|e| panic!("paper fragment failed to compile: {e:?}\n{src}"))
}

/// Section 3.1: the basic doacross example.
#[test]
fn section_3_1_doacross() {
    let src = "\
      program main
      integer i, n
      real*8 a(100)
      n = 100
c$doacross local(i) shared(n, a)
      do i = 1, n
        a(i) = 2*i
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    assert_eq!(cap[0][99], 200.0);
}

/// Section 3.1: the nest example over the (i,j) iteration space.
#[test]
fn section_3_1_nest() {
    let src = "\
      program main
      integer i, j, m, n
      real*8 b(40, 30)
      m = 40
      n = 30
c$doacross nest(i, j) local(i, j) shared(m, n, b)
      do i = 1, n
        do j = 1, m
          b(j, i) = i + j
        enddo
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["b"]),
        )
        .unwrap()
        .captures;
    // b(j,i) = i + j; b(40, 30) at (40-1) + 40*(30-1).
    assert_eq!(cap[0][39 + 40 * 29], (30 + 40) as f64);
}

/// Section 3.2: the two layout examples that motivate regular vs reshaped
/// — `A(*, block)` (large contiguous portions) and `A(block, *)` (tiny
/// contiguous runs).
#[test]
fn section_3_2_distribute_layouts() {
    for dist in ["*, block", "block, *"] {
        let src = format!(
            "      program main\n      real*8 a(1000, 1000)\nc$distribute a({dist})\n      a(1, 1) = 1.0\n      end\n"
        );
        compile(&src);
    }
}

/// Section 3.2.1: the cyclic(5) portion-passing example, verbatim
/// including the `do i=1,1000,5` call loop, executed with runtime checks.
#[test]
fn section_3_2_1_mysub() {
    let src = "\
      program main
      integer i
      real*8 a(1000)
c$distribute_reshape a(cyclic(5))
      do i = 1, 1000, 5
        call mysub(a(i))
      enddo
      end
      subroutine mysub(x)
      integer j
      real*8 x(5)
      do j = 1, 5
        x(j) = j
      enddo
      end
";
    let p = compile(src);
    let out = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).with_checks(true),
        )
        .expect("the paper's example passes its own runtime checks");
    assert_eq!(out.report.argcheck_ops.0, 200);
}

/// Section 3.4: the affinity example.
#[test]
fn section_3_4_affinity() {
    let src = "\
      program main
      integer i, n
      real*8 a(500)
c$distribute_reshape a(block)
      n = 500
c$doacross local(i) shared(n, a) affinity(i) = data(a(i))
      do i = 1, n
        a(i) = i*i
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    assert_eq!(cap[0][499], 500.0 * 500.0);
}

/// Section 7.1: the serial tiling example `do i = 1, n: A(i) = i` over a
/// reshaped block array — after optimization it needs only P mod
/// operations, which we verify through the addressing modes.
#[test]
fn section_7_1_serial_tiling() {
    let src = "\
      program main
      integer i
      real*8 a(4096)
c$distribute_reshape a(block)
      do i = 1, 4096
        a(i) = i
      enddo
      end
";
    let p = compile(src);
    let dump = p.ir_dump();
    assert!(
        dump.contains("[tiled]") || dump.contains("[hoisted]"),
        "{dump}"
    );
    assert!(
        !dump.contains("[raw]"),
        "no per-iteration div/mod remains:\n{dump}"
    );
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    assert_eq!(cap[0][0], 1.0);
    assert_eq!(cap[0][4095], 4096.0);
}

/// Section 7.1: the three-point smoothing example whose peeling the paper
/// shows explicitly.
#[test]
fn section_7_1_peeling_example() {
    let src = "\
      program main
      integer i, n
      real*8 a(1024)
c$distribute_reshape a(block)
      n = 1024
      do i = 1, n
        a(i) = i
      enddo
      do i = 2, n-1
        a(i) = (a(i-1) + a(i) + a(i+1)) / 3
      enddo
      end
";
    // a is read and written by the stencil, so the serial loop cannot be
    // freely reordered — but the block distribution keeps iteration order,
    // so tiling remains legal and results must match a serial evaluation.
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    // Serial reference (Gauss-Seidel-style in-place sweep).
    let mut a: Vec<f64> = (1..=1024).map(|i| i as f64).collect();
    for i in 1..1023 {
        a[i] = (a[i - 1] + a[i] + a[i + 1]) / 3.0;
    }
    assert_eq!(cap[0], a);
}

/// Section 8.2: the transpose loop nest with its distributions.
#[test]
fn section_8_2_transpose() {
    let src = "\
      program main
      integer i, j, m
      real*8 a(64, 64), b(64, 64)
c$distribute a(*, block)
c$distribute b(block, *)
      m = 64
      do j = 1, m
        do i = 1, m
          b(i, j) = i - j
        enddo
      enddo
c$doacross local(i, j)
      do i = 1, m
        do j = 1, m
          a(j, i) = b(i, j)
        enddo
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    // a(j,i) = b(i,j) = i - j: element a(5, 9) = 9 - 5.
    assert_eq!(cap[0][(5 - 1) + 64 * (9 - 1)], 4.0);
}

/// Section 8.3: the convolution nest with one level of parallelism,
/// verbatim distributions and affinity.
#[test]
fn section_8_3_convolution() {
    let src = "\
      program main
      integer i, j, n
      real*8 a(48, 48), b(48, 48)
c$distribute a(*, block)
c$distribute b(*, block)
      n = 48
      do j = 1, n
        do i = 1, n
          b(i, j) = i * j
        enddo
      enddo
c$doacross local(i, j) affinity(j) = data(a(1, j))
      do j = 2, n-1
        do i = 2, n-1
          a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5
        enddo
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["a"]),
        )
        .unwrap()
        .captures;
    // a(10, 20) = mean of the 5-point stencil of b around (10, 20).
    let b = |i: f64, j: f64| i * j;
    let expect =
        (b(9.0, 20.0) + b(10.0, 19.0) + b(10.0, 20.0) + b(10.0, 21.0) + b(11.0, 20.0)) / 5.0;
    assert_eq!(cap[0][(10 - 1) + 48 * (20 - 1)], expect);
}

/// Section 8.1: the LU distribution `(*, block, block, *)` on 4-D arrays.
#[test]
fn section_8_1_lu_distribution() {
    let src = "\
      program main
      integer m, i, j, k
      real*8 u(5, 16, 16, 8)
c$distribute_reshape u(*, block, block, *)
c$doacross nest(j, i) local(i, j, m)
      do j = 1, 16
        do i = 1, 16
          do m = 1, 5
            u(m, i, j, 3) = m + i + j
          enddo
        enddo
      enddo
      end
";
    let p = compile(src);
    let cap = p
        .run(
            &MachineConfig::small_test(4),
            &ExecOptions::new(4).capture(&["u"]),
        )
        .unwrap()
        .captures;
    // u(2, 7, 9, 3): linear (2-1) + 5*(7-1) + 80*(9-1) + 1280*(3-1).
    assert_eq!(cap[0][1 + 5 * 6 + 80 * 8 + 1280 * 2], (2 + 7 + 9) as f64);
}
