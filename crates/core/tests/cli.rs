//! End-to-end tests of the `dsmfc` driver binary: flag parsing, exit
//! codes, the golden quickstart output, and the profile surfaces.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn dsmfc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsmfc"))
        .args(args)
        .output()
        .expect("dsmfc spawns")
}

fn quickstart() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/fortran/quickstart.f")
}

fn write_fixture(name: &str, text: &str) -> PathBuf {
    let p = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    std::fs::write(&p, text).expect("fixture writes");
    p
}

#[test]
fn usage_without_files_exits_2() {
    let out = dsmfc(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_flag_exits_2() {
    let out = dsmfc(&["--frobnicate", "x.f"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bad_proc_count_exits_2() {
    let out = dsmfc(&["-p", "many", "x.f"]);
    assert_eq!(out.status.code(), Some(2));
    let out = dsmfc(&["--profile-json"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn compile_error_exits_1_with_diagnostics() {
    let f = write_fixture("cli_bad.f", "      program main\n      x = 1\n      end\n");
    let out = dsmfc(&[f.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains('x'), "diagnostics name the symbol: {err}");
}

#[test]
fn runtime_error_exits_1_under_check() {
    // The paper's Section-6 bug: formal larger than the passed portion.
    let f = write_fixture(
        "cli_runtime.f",
        "      program main\n      integer i\n      real*8 a(1000)\nc$distribute_reshape a(cyclic(5))\n      i = 1\n      call mysub(a(i))\n      end\n      subroutine mysub(x)\n      real*8 x(6)\n      x(1) = 0.0\n      end\n",
    );
    let path = f.to_str().unwrap();
    let out = dsmfc(&["--check", path]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("runtime error"));
    // Without --check the same program runs to completion.
    let out = dsmfc(&[path]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn missing_file_exits_1() {
    let out = dsmfc(&["/nonexistent/nope.f"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn dump_ir_prints_ir_and_skips_execution() {
    let out = dsmfc(&["--dump-ir", quickstart().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("do"), "{s}");
    assert!(!s.contains("cycles:"), "--dump-ir must not run the program");
}

/// Golden output for the quickstart program. `--serial-team` keeps the
/// simulation on one host thread, so every line here is deterministic
/// except the host wall-clock (which the test skips).
#[test]
fn quickstart_golden_stdout() {
    let out = dsmfc(&["-p", "4", "--serial-team", quickstart().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let s = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = s.lines().collect();
    assert_eq!(
        lines[0],
        "cycles: 104432 total (51087 in parallel regions, 1 regions)"
    );
    assert_eq!(lines[1], "simulated seconds at 195 MHz: 0.000536");
    assert!(lines[2].starts_with("host wall-clock:"));
    assert_eq!(
        lines[3],
        "aggregate: cycles=417728 loads=16384 stores=8190 L1$miss=4495 \
         L2$miss=713 (local=581 remote=132 intv=192) tlb=97 inval(tx/rx)=0/0 faults=1 wb=1"
    );
    assert_eq!(lines[4], "pages/node: [33, 32]");
}

/// At P=1 there is only one team member, so serializing the team must
/// change nothing observable: the whole stdout (minus the wall-clock
/// line) matches the default threaded run exactly.
#[test]
fn serial_team_at_p1_matches_threaded_run() {
    let path = quickstart();
    let path = path.to_str().unwrap();
    let serial = dsmfc(&["-p", "1", "--serial-team", path]);
    let plain = dsmfc(&["-p", "1", path]);
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(plain.status.code(), Some(0));
    let strip = |out: &Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| !l.starts_with("host wall-clock:"))
            .map(str::to_owned)
            .collect()
    };
    assert_eq!(strip(&serial), strip(&plain));
    let s = String::from_utf8_lossy(&serial.stdout);
    assert!(s.starts_with("cycles:"), "{s}");
}

/// `--profile-json` at P=1: the file is written, parses as a JSON
/// object, and reports the uniprocessor shape (every access local, no
/// invalidation traffic).
#[test]
fn profile_json_at_p1_reports_local_only_traffic() {
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_profile_p1.json");
    let out = dsmfc(&[
        "-p",
        "1",
        "--profile-json",
        json_path.to_str().unwrap(),
        quickstart().to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    for key in ["\"arrays\"", "\"regions\"", "\"name\": \"a\""] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // One node holds every page: remote misses cannot occur.
    assert!(!json.contains("\"remote_misses\": 1"), "{json}");
    assert!(
        json.contains("\"remote_misses\": 0"),
        "expected explicit zero remote misses: {json}"
    );
}

#[test]
fn counters_flag_prints_per_proc_rows() {
    let out = dsmfc(&["-p", "2", "--counters", quickstart().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("P0"), "{s}");
    assert!(s.contains("P1"), "{s}");
}

#[test]
fn profile_flag_prints_attribution_tables() {
    let out = dsmfc(&["-p", "4", "--profile", quickstart().to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let s = String::from_utf8_lossy(&out.stdout);
    assert!(s.contains("=== memory-behavior profile ==="), "{s}");
    assert!(s.contains("per-array attribution:"), "{s}");
    assert!(s.contains("per-region attribution:"), "{s}");
    // Both program arrays appear as rows.
    assert!(s.lines().any(|l| l.trim_start().starts_with("a ")), "{s}");
    assert!(s.lines().any(|l| l.trim_start().starts_with("b ")), "{s}");
}

#[test]
fn profile_json_writes_file() {
    let json_path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("cli_profile.json");
    let out = dsmfc(&[
        "-p",
        "4",
        "--profile-json",
        json_path.to_str().unwrap(),
        quickstart().to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    // --profile-json alone must not print the table…
    assert!(!String::from_utf8_lossy(&out.stdout).contains("memory-behavior profile"));
    // …but the file holds the same data as JSON.
    let json = std::fs::read_to_string(&json_path).expect("json written");
    assert!(
        json.starts_with('{') && json.trim_end().ends_with('}'),
        "{json}"
    );
    for key in [
        "\"arrays\"",
        "\"regions\"",
        "\"cells\"",
        "\"hot_pages\"",
        "\"hints\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("\"name\": \"a\""), "{json}");
}
