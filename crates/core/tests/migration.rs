//! End-to-end reactive page-migration behaviour on `heat.f`: migration
//! repairs the first-touch trap when the placement directives are
//! stripped, never touches directive-placed (pinned) pages, and the
//! machine's counter identities survive with the daemon running.

use dsm_core::{CompiledProgram, ExecOptions, MachineConfig, MigrationPolicy, Session};

fn heat_source() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fortran/heat.f"
    ))
    .expect("heat.f readable")
}

fn compile(src: &str) -> CompiledProgram {
    Session::new()
        .source("heat.f", src)
        .compile()
        .unwrap_or_else(|e| panic!("heat.f failed to compile: {e:?}"))
}

fn run(prog: &CompiledProgram, policy: MigrationPolicy) -> dsm_core::RunReport {
    let nprocs = 8;
    prog.run(
        &MachineConfig::scaled_origin2000(nprocs, 64),
        &ExecOptions::new(nprocs).migration(policy),
    )
    .expect("heat.f runs")
    .report
}

/// With the placement directives stripped, `heat.f`'s serial
/// initialization first-touches every page of `u` onto node 0; the
/// threshold daemon must dig the pages out and strictly reduce remote
/// misses versus plain first-touch.
#[test]
fn threshold_migration_repairs_first_touch_on_stripped_heat() {
    let stripped = compile(&dsm_frontend::strip_placement(&heat_source()));
    let off = run(&stripped, MigrationPolicy::Off);
    let thr = run(&stripped, MigrationPolicy::threshold(4));

    assert_eq!(off.pages_migrated, 0);
    assert!(thr.pages_migrated > 0, "daemon never fired");
    assert!(
        thr.total.remote_misses < off.total.remote_misses,
        "threshold must strictly reduce remote misses: {} vs first-touch {}",
        thr.total.remote_misses,
        off.total.remote_misses
    );
}

/// With the hand directives, every page of `u`/`unew` is explicitly
/// placed — pinned — so the daemon has nothing to do even under an
/// aggressive policy: zero migrations, zero cycles charged.
#[test]
fn directives_pin_pages_against_migration() {
    let annotated = compile(&heat_source());
    for policy in [
        MigrationPolicy::threshold(2),
        MigrationPolicy::competitive(2),
    ] {
        let report = run(&annotated, policy);
        assert_eq!(
            report.pages_migrated, 0,
            "directive-placed pages migrated under {policy}"
        );
        assert_eq!(report.migration_cycles, 0);
    }
}

/// The machine's fill identity `l2_misses == local + remote` must hold
/// per processor and in aggregate while the daemon remaps pages
/// underneath the run.
#[test]
fn counter_balance_holds_with_migration_on() {
    let stripped = compile(&dsm_frontend::strip_placement(&heat_source()));
    for policy in [
        MigrationPolicy::threshold(4),
        MigrationPolicy::competitive(4),
    ] {
        let report = run(&stripped, policy);
        assert!(
            report.pages_migrated > 0,
            "daemon never fired under {policy}"
        );
        assert_eq!(
            report.total.l2_misses,
            report.total.local_misses + report.total.remote_misses,
            "aggregate fill identity broken under {policy}"
        );
        for (p, c) in report.per_proc.iter().enumerate() {
            assert_eq!(
                c.l2_misses,
                c.local_misses + c.remote_misses,
                "fill identity broken on proc {p} under {policy}"
            );
        }
    }
}
