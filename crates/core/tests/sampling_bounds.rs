//! Error-bound parity suite for sampled simulation (DESIGN.md §9).
//!
//! For every workload generator in `workloads.rs` the suite runs the
//! exact engine and the sampled engine at 1/4, 1/8 and 1/16 and asserts:
//!
//! * captured array data is **bit-identical** at every rate (sampling is
//!   a cost model only — it must never touch program results);
//! * the extrapolated miss estimates and the reported cycle totals land
//!   within the documented error bounds ([`MISS_BOUND_PCT`],
//!   [`CYCLE_BOUND_PCT`]) of the exact run;
//! * the raw counters of a sampled run stay internally balanced
//!   (`local + remote == L2 ≤ L1 ≤ accesses`), as do the estimates;
//! * 1/1 sampling is bit-identical to the exact engine — same cycles,
//!   same counters, same data (the `identity_` tests, which are the
//!   cheap PR-time leg of the `paper-scale-smoke` CI job).
//!
//! Runs use `serial_team` so exact-vs-sampled differences are pure
//! estimator error, not host-thread interleaving wobble; one threaded
//! test confirms data stays bit-identical under real threads too.

use dsm_core::workloads::{
    conv2d_source, fill_sweep_source, lu_source, transpose_source, Policy,
};
use dsm_core::{CompiledProgram, ExecOptions, RunOutcome, SamplingConfig, Session};

/// Documented bound on the extrapolated L2/local/remote miss estimates,
/// percent of the exact value, at rates up to 1/16.
const MISS_BOUND_PCT: f64 = 20.0;

/// Documented bound on the reported cycle totals, percent of the exact
/// value, at rates up to 1/16.
const CYCLE_BOUND_PCT: f64 = 10.0;

const NPROCS: usize = 8;
/// Machine scale for the suite: scale 4 keeps the runs fast while its
/// geometry (L1 8 KB/32 B, L2 1 MB/128 B) admits rates up to 1/32.
const SCALE: usize = 4;

struct Workload {
    name: &'static str,
    source: String,
    captures: &'static [&'static str],
    policy: Policy,
}

fn workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "transpose",
            source: transpose_source(200, 2, Policy::Reshaped),
            captures: &["a", "b"],
            policy: Policy::Reshaped,
        },
        Workload {
            name: "fill_sweep",
            source: fill_sweep_source(128, 2),
            captures: &["a"],
            policy: Policy::FirstTouch,
        },
        Workload {
            name: "conv2d",
            source: conv2d_source(150, 1, Policy::Regular, false),
            captures: &["a", "b"],
            policy: Policy::Regular,
        },
        Workload {
            name: "conv2d_two_level",
            source: conv2d_source(160, 1, Policy::Reshaped, true),
            captures: &["a", "b"],
            policy: Policy::Reshaped,
        },
        Workload {
            name: "lu",
            source: lu_source(12, 12, 8, 2, Policy::Reshaped),
            captures: &["u", "rsd"],
            policy: Policy::Reshaped,
        },
    ]
}

fn compile(w: &Workload) -> CompiledProgram {
    Session::new()
        .source(w.name, &w.source)
        .compile()
        .unwrap_or_else(|e| panic!("{} failed to compile: {e:?}", w.name))
}

fn run(w: &Workload, prog: &CompiledProgram, sampling: Option<SamplingConfig>) -> RunOutcome {
    let cfg = w.policy.machine(NPROCS, SCALE);
    let mut opts = ExecOptions::new(NPROCS)
        .serial_team(true)
        .capture(w.captures);
    if let Some(s) = sampling {
        opts = opts.sampling(s);
    }
    prog.run(&cfg, &opts)
        .unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name))
}

fn err_pct(est: u64, exact: u64) -> f64 {
    100.0 * (est as f64 - exact as f64).abs() / (exact.max(1)) as f64
}

#[test]
fn estimates_within_documented_bounds() {
    for w in workloads() {
        let prog = compile(&w);
        let exact = run(&w, &prog, None);
        let et = &exact.report.total;
        for rate in [4u32, 8, 16] {
            let sampled = run(&w, &prog, Some(SamplingConfig::new(rate)));
            // Data is bit-identical at any rate.
            assert_eq!(
                sampled.captures, exact.captures,
                "{}: captures diverged at 1/{rate}",
                w.name
            );
            // Raw counters hold the sampled subset and stay balanced.
            let t = &sampled.report.total;
            assert_eq!(t.local_misses + t.remote_misses, t.l2_misses, "{}", w.name);
            assert!(t.l2_misses <= t.l1_misses, "{}", w.name);
            assert!(t.l1_misses <= t.accesses(), "{}", w.name);
            assert_eq!(t.accesses(), et.accesses(), "{}: access totals", w.name);
            // Estimates land within the documented bounds.
            let s = sampled
                .report
                .sampling
                .as_ref()
                .unwrap_or_else(|| panic!("{}: no sampling summary", w.name));
            assert!(!s.exact);
            assert_eq!(s.rate, rate);
            let miss_err = err_pct(s.est_l2_misses, et.l2_misses);
            let local_err = err_pct(s.est_local_misses, et.local_misses);
            let remote_err = err_pct(s.est_remote_misses, et.remote_misses);
            let cycle_err = err_pct(sampled.report.total_cycles, exact.report.total_cycles);
            eprintln!(
                "{:<18} 1/{rate:<3} L2 {:>8} est {:>8} ({miss_err:>5.1}%) \
                 local {local_err:>5.1}% remote {remote_err:>5.1}% \
                 cycles {cycle_err:>5.2}% (ci ±{:.1}%/±{:.2}%)",
                w.name, et.l2_misses, s.est_l2_misses, s.ci95_miss_pct, s.ci95_cycle_pct
            );
            assert!(
                miss_err <= MISS_BOUND_PCT,
                "{}: 1/{rate} L2-miss estimate off by {miss_err:.1}% (> {MISS_BOUND_PCT}%)",
                w.name
            );
            // The local/remote split is noisier on small absolute counts;
            // hold it to the documented bound once the population is big
            // enough to extrapolate from, and to the estimator's own
            // (honest) confidence interval below that.
            let split_bound = |count: u64| {
                if count >= 1000 {
                    MISS_BOUND_PCT
                } else {
                    MISS_BOUND_PCT.max(s.ci95_miss_pct)
                }
            };
            assert!(
                local_err <= split_bound(et.local_misses),
                "{}: 1/{rate} local-miss estimate off by {local_err:.1}%",
                w.name
            );
            assert!(
                remote_err <= split_bound(et.remote_misses),
                "{}: 1/{rate} remote-miss estimate off by {remote_err:.1}%",
                w.name
            );
            assert!(
                cycle_err <= CYCLE_BOUND_PCT,
                "{}: 1/{rate} cycle total off by {cycle_err:.2}% (> {CYCLE_BOUND_PCT}%)",
                w.name
            );
            // The estimated counters satisfy the same balance invariants.
            assert_eq!(s.est_local_misses + s.est_remote_misses, s.est_l2_misses);
            assert!(s.est_l1_misses >= s.est_l2_misses);
            assert!(s.est_l1_misses <= s.accesses);
        }
    }
}

#[test]
fn identity_rate_one_is_bit_identical_to_exact() {
    // 1/1 sampling must be the exact engine: same cycles, same counters,
    // same placement, same data. (This is the cheap PR-time CI leg.)
    for w in workloads() {
        let prog = compile(&w);
        let exact = run(&w, &prog, None);
        let one = run(&w, &prog, Some(SamplingConfig::EXACT));
        assert_eq!(one.captures, exact.captures, "{}", w.name);
        assert_eq!(
            one.report.total_cycles, exact.report.total_cycles,
            "{}: cycles",
            w.name
        );
        assert_eq!(one.report.per_proc, exact.report.per_proc, "{}", w.name);
        assert_eq!(one.report.total, exact.report.total, "{}", w.name);
        assert_eq!(
            one.report.parallel_cycles, exact.report.parallel_cycles,
            "{}",
            w.name
        );
        assert_eq!(
            one.report.pages_per_node, exact.report.pages_per_node,
            "{}",
            w.name
        );
        // The run advertises its exactness.
        let s = one.report.sampling.as_ref().unwrap();
        assert!(s.exact);
        assert_eq!(s.est_l2_misses, exact.report.total.l2_misses);
        assert_eq!(s.ci95_miss_pct, 0.0);
        // The exact run carries no summary at all.
        assert!(exact.report.sampling.is_none(), "{}", w.name);
    }
}

#[test]
fn identity_seeds_only_move_estimates_never_data() {
    // Different seeds sample disjoint set classes: data must not move,
    // estimates may (within bounds, checked above for seed 0).
    let w = &workloads()[0];
    let prog = compile(w);
    let a = run(w, &prog, Some(SamplingConfig::new(8)));
    let b = run(w, &prog, Some(SamplingConfig::new(8).with_seed(5)));
    assert_eq!(a.captures, b.captures);
    assert_ne!(
        a.report.total.l2_misses, b.report.total.l2_misses,
        "different set classes should measure different raw subsets"
    );
}

#[test]
fn threaded_sampled_data_matches_exact() {
    // Sampling composes with real host-threaded team simulation: data
    // stays bit-identical even though cycles may wobble with scheduling.
    let w = &workloads()[0];
    let prog = compile(w);
    let cfg = w.policy.machine(NPROCS, SCALE);
    let exact = prog
        .run(&cfg, &ExecOptions::new(NPROCS).capture(w.captures))
        .unwrap();
    let sampled = prog
        .run(
            &cfg,
            &ExecOptions::new(NPROCS)
                .capture(w.captures)
                .sampling(SamplingConfig::new(8)),
        )
        .unwrap();
    assert_eq!(sampled.captures, exact.captures);
    assert!(sampled.report.sampling.is_some());
}
