//! Engine differential: the compiled bytecode engine and the
//! tree-walking interpreter must be observationally indistinguishable
//! on the shipped example workloads — bit-identical captured arrays and
//! identical machine counters — with the expensive options all on
//! (runtime argument checks, attribution profiling, reactive page
//! migration) across P ∈ {1, 4, 8}.
//!
//! Serial-team runs are compared cycle-exactly on the full report;
//! threaded runs on their deterministic subset (data plus access
//! totals), matching `dsmfuzz`'s determinism standard.

use dsm_core::{
    CompiledProgram, Engine, ExecOptions, MachineConfig, MigrationPolicy, RunOutcome, Session,
};

fn example(name: &str) -> CompiledProgram {
    let path = format!(
        "{}/../../examples/fortran/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    Session::new()
        .source(name, &src)
        .compile()
        .unwrap_or_else(|e| panic!("{name} failed to compile: {e:?}"))
}

fn run(
    prog: &CompiledProgram,
    p: usize,
    engine: Engine,
    captures: &[&str],
    serial: bool,
) -> RunOutcome {
    prog.run(
        &MachineConfig::scaled_origin2000(p, 64),
        &ExecOptions::new(p)
            .serial_team(serial)
            .with_checks(true)
            .profile(true)
            .migration(MigrationPolicy::threshold(4))
            .capture(captures)
            .engine(engine),
    )
    .expect("workload runs")
}

fn assert_captures_identical(byte: &RunOutcome, tree: &RunOutcome, ctx: &str) {
    assert_eq!(
        byte.captures.len(),
        tree.captures.len(),
        "{ctx}: capture set sizes"
    );
    for (a, (g, w)) in byte.captures.iter().zip(&tree.captures).enumerate() {
        assert_eq!(g.len(), w.len(), "{ctx}: capture {a} length");
        for (i, (x, y)) in g.iter().zip(w).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{ctx}: capture {a} element {i}: bytecode {x:?}, interp {y:?}"
            );
        }
    }
}

/// Full-report equality, minus the host-side wall clocks (which measure
/// the simulator, not the simulation).
fn assert_reports_identical(byte: &RunOutcome, tree: &RunOutcome, ctx: &str) {
    let (rb, rt) = (&byte.report, &tree.report);
    assert_eq!(rb.total_cycles, rt.total_cycles, "{ctx}: total cycles");
    assert_eq!(rb.total, rt.total, "{ctx}: aggregate counters");
    assert_eq!(rb.per_proc, rt.per_proc, "{ctx}: per-processor counters");
    assert_eq!(
        rb.parallel_regions, rt.parallel_regions,
        "{ctx}: parallel regions"
    );
    assert_eq!(
        rb.parallel_cycles, rt.parallel_cycles,
        "{ctx}: parallel cycles"
    );
    assert_eq!(rb.pages_per_node, rt.pages_per_node, "{ctx}: page placement");
    assert_eq!(rb.argcheck_ops, rt.argcheck_ops, "{ctx}: argcheck traffic");
    assert_eq!(rb.pages_migrated, rt.pages_migrated, "{ctx}: pages migrated");
    assert_eq!(
        rb.migration_cycles, rt.migration_cycles,
        "{ctx}: migration cycles"
    );
    assert_eq!(rb.profile, rt.profile, "{ctx}: attribution profiles");
}

fn diff_workload(name: &str, captures: &[&str]) {
    let prog = example(name);
    for p in [1usize, 4, 8] {
        // Serial team: the simulation is fully deterministic, so the
        // engines must agree on everything.
        let ctx = format!("{name} P={p} serial");
        let byte = run(&prog, p, Engine::Bytecode, captures, true);
        let tree = run(&prog, p, Engine::Interp, captures, true);
        assert_captures_identical(&byte, &tree, &ctx);
        assert_reports_identical(&byte, &tree, &ctx);

        // Threaded team: host scheduling may legally reorder coherence
        // traffic, so compare data and the deterministic access totals.
        let ctx = format!("{name} P={p} threaded");
        let byte = run(&prog, p, Engine::Bytecode, captures, false);
        let tree = run(&prog, p, Engine::Interp, captures, false);
        assert_captures_identical(&byte, &tree, &ctx);
        let access = |o: &RunOutcome| {
            (
                o.report.total.loads,
                o.report.total.stores,
                o.report.total.page_faults,
                o.report.parallel_regions,
                o.report.argcheck_ops,
            )
        };
        assert_eq!(access(&byte), access(&tree), "{ctx}: access totals");
    }
}

#[test]
fn heat_engines_agree() {
    diff_workload("heat.f", &["u", "unew"]);
}

#[test]
fn transpose_engines_agree() {
    diff_workload("transpose.f", &["a", "b"]);
}

#[test]
fn phases_engines_agree() {
    diff_workload("phases.f", &["a"]);
}

#[test]
fn quickstart_engines_agree() {
    diff_workload("quickstart.f", &["a", "b"]);
}
