//! Paper-scale regression pins (Figure 6, Section 8.3).
//!
//! These tests run the 2-D convolution at the paper's true input size
//! (1000×1000) on the **full-scale** Origin-2000 model — no cache or
//! page scaling — and pin the Figure-6 results the scaled benches
//! cannot reproduce (see EXPERIMENTS.md):
//!
//! * two-level `(block,block)`: **reshaped clearly first**, regular
//!   page-granular distribution degrading behind even round-robin as
//!   its per-sweep coherence misses pile up ("reshaping is the only
//!   option for such distributions");
//! * one-level `(*,block)`: reshaped and regular both clearly ahead of
//!   round-robin. At P=64 each processor's portion spans ≥ 8 pages, so
//!   page-granular placement is adequate here — the regime the paper
//!   itself describes for the large input — and our model keeps it so
//!   (the paper's 1000² "chaotic" regular leg does not reproduce; the
//!   deviation is recorded in EXPERIMENTS.md).
//!
//! They also validate the statistical sampling estimator at the same
//! scale: a 1/8 sampled run of the paper-size input must land within
//! the documented error bounds of the exact run.
//!
//! Runs are serial-team, so every pinned number is deterministic and
//! exactly repeatable. Each test costs tens of seconds in release, so
//! the file is gated behind `DSM_PAPER_SCALE=1` (run by the nightly
//! `paper-scale-smoke` CI job):
//!
//! ```text
//! DSM_PAPER_SCALE=1 cargo test --release -p dsm-core --test paper_scale -- --nocapture
//! ```

use dsm_core::workloads::{conv2d_source, Policy};
use dsm_core::{ExecOptions, RunReport, SamplingConfig, Session};

const N: usize = 1000;
const P: usize = 64;
/// Full-scale Origin-2000: scale divisor 1.
const SCALE: usize = 1;
/// Sweeps of the two-level kernel: the separation is a steady-state
/// coherence effect, so it needs more than the cold pass.
const REPS: usize = 3;

fn gated() -> bool {
    if std::env::var("DSM_PAPER_SCALE").ok().as_deref() == Some("1") {
        return true;
    }
    eprintln!("skipped: paper-scale run (set DSM_PAPER_SCALE=1 to enable)");
    false
}

fn run_conv(
    policy: Policy,
    reps: usize,
    two_level: bool,
    sampling: Option<SamplingConfig>,
) -> RunReport {
    let src = conv2d_source(N, reps, policy, two_level);
    let prog = Session::new()
        .source("conv.f", &src)
        .compile()
        .unwrap_or_else(|e| panic!("conv2d failed to compile: {e:?}"));
    let mut opts = ExecOptions::new(P).serial_team(true);
    if let Some(s) = sampling {
        opts = opts.sampling(s);
    }
    prog.run(&policy.machine(P, SCALE), &opts)
        .unwrap_or_else(|e| panic!("conv2d failed to run: {e}"))
        .report
}

fn print_row(label: &str, r: &RunReport) {
    eprintln!(
        "  {label:<12} kernel {:>9}  rem {:.2}  l2 {}",
        r.kernel_cycles(),
        r.total.remote_fraction(),
        r.total.l2_misses
    );
}

#[test]
fn fig6_two_level_ordering_reshaped_first_regular_last() {
    if !gated() {
        return;
    }
    let reshaped = run_conv(Policy::Reshaped, REPS, true, None);
    let round_robin = run_conv(Policy::RoundRobin, REPS, true, None);
    let regular = run_conv(Policy::Regular, REPS, true, None);
    eprintln!("fig6 (block,block) {N}x{N} P={P} reps={REPS}:");
    print_row("reshaped", &reshaped);
    print_row("round-robin", &round_robin);
    print_row("regular", &regular);
    let (rs, rr, rg) = (
        reshaped.kernel_cycles(),
        round_robin.kernel_cycles(),
        regular.kernel_cycles(),
    );
    // The paper's Figure 6 separation at the true input size: reshaped
    // clearly first; regular — paying page- and line-level false
    // sharing on every sweep (its L2 misses keep growing with reps
    // while the others' stay flat) — behind even round-robin.
    assert!(
        rs < rr,
        "(block,block): reshaped ({rs}) must beat round-robin ({rr})"
    );
    assert!(
        rr < rg,
        "(block,block): round-robin ({rr}) must beat page-granular regular ({rg})"
    );
}

#[test]
fn fig6_one_level_page_policies_beat_round_robin() {
    if !gated() {
        return;
    }
    let reshaped = run_conv(Policy::Reshaped, 1, false, None);
    let round_robin = run_conv(Policy::RoundRobin, 1, false, None);
    let regular = run_conv(Policy::Regular, 1, false, None);
    eprintln!("fig6 (*,block) {N}x{N} P={P} reps=1:");
    print_row("reshaped", &reshaped);
    print_row("round-robin", &round_robin);
    print_row("regular", &regular);
    let (rs, rr, rg) = (
        reshaped.kernel_cycles(),
        round_robin.kernel_cycles(),
        regular.kernel_cycles(),
    );
    // One-level at P=64: portions span ≥ 8 pages, so both placement
    // policies localize the stencil and round-robin's ~97% remote
    // fraction loses. (Deviation from the paper's 1000² panel — where
    // regular is chaotic — recorded in EXPERIMENTS.md.)
    assert!(
        rs < rr,
        "(*,block): reshaped ({rs}) must beat round-robin ({rr})"
    );
    assert!(
        rg < rr,
        "(*,block): regular ({rg}) must beat round-robin ({rr})"
    );
}

#[test]
fn sampled_estimates_hold_at_paper_scale() {
    if !gated() {
        return;
    }
    // Documented bounds (DESIGN.md §9): miss estimates within 20%,
    // cycle totals within 10%, at rates up to 1/16.
    let exact = run_conv(Policy::Regular, 1, false, None);
    let sampled = run_conv(Policy::Regular, 1, false, Some(SamplingConfig::new(8)));
    let s = sampled.sampling.as_ref().expect("sampling summary");
    let err = |est: u64, ex: u64| 100.0 * (est as f64 - ex as f64).abs() / (ex.max(1)) as f64;
    let miss_err = err(s.est_l2_misses, exact.total.l2_misses);
    let cycle_err = err(sampled.total_cycles, exact.total_cycles);
    eprintln!(
        "paper-scale 1/8 sampling: L2 {} est {} ({miss_err:.1}%), \
         cycles {} est {} ({cycle_err:.2}%), ci ±{:.1}%/±{:.2}%",
        exact.total.l2_misses,
        s.est_l2_misses,
        exact.total_cycles,
        sampled.total_cycles,
        s.ci95_miss_pct,
        s.ci95_cycle_pct
    );
    assert!(
        miss_err <= 20.0,
        "paper-scale miss estimate off by {miss_err:.1}%"
    );
    assert!(
        cycle_err <= 10.0,
        "paper-scale cycle total off by {cycle_err:.2}%"
    );
    // Sampling never perturbs the simulated program: same access total.
    assert_eq!(sampled.total.accesses(), exact.total.accesses());
}
