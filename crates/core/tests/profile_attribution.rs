//! The profiler's books must balance: every L2 miss the machine counts
//! is attributed to exactly one (array, region) cell, so the per-array
//! table's local/remote split sums to the machine-wide counter totals.

use dsm_core::{ExecOptions, MachineConfig, Session};

fn compile_heat() -> dsm_core::CompiledProgram {
    let src = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/fortran/heat.f"
    ))
    .expect("heat.f readable");
    Session::new()
        .source("heat.f", &src)
        .compile()
        .unwrap_or_else(|e| panic!("heat.f failed to compile: {e:?}"))
}

#[test]
fn heat_attribution_sums_to_machine_counters() {
    let prog = compile_heat();
    for nprocs in [1, 8] {
        let out = prog
            .run(
                &MachineConfig::scaled_origin2000(nprocs, 64),
                &ExecOptions::new(nprocs).profile(true),
            )
            .expect("runs");
        let profile = out.profile().expect("profiling was on");

        let arrays = &profile.arrays;
        assert!(arrays.iter().any(|a| a.name == "u"), "{arrays:?}");
        assert!(arrays.iter().any(|a| a.name == "unew"), "{arrays:?}");
        assert!(!profile.regions.is_empty());

        // Per-array local/remote miss split sums to the machine totals.
        let local: u64 = arrays.iter().map(|a| a.stats.local_misses).sum();
        let remote: u64 = arrays.iter().map(|a| a.stats.remote_misses).sum();
        let total = &out.report.total;
        assert_eq!(local, total.local_misses, "P={nprocs}");
        assert_eq!(remote, total.remote_misses, "P={nprocs}");

        // So does the per-region split (same accesses, rolled the other way),
        // and the grand totals agree between the two breakdowns.
        let rl: u64 = profile.regions.iter().map(|r| r.stats.local_misses).sum();
        let rr: u64 = profile.regions.iter().map(|r| r.stats.remote_misses).sum();
        assert_eq!((rl, rr), (local, remote), "P={nprocs}");
        let t = profile.totals();
        assert_eq!(t.local_misses, local);
        assert_eq!(t.remote_misses, remote);

        // TLB misses and invalidations balance too.
        assert_eq!(t.tlb_misses, total.tlb_misses, "P={nprocs}");
        assert_eq!(t.invalidations_sent, total.invalidations_sent, "P={nprocs}");

        // Element loads/stores are a subset of the machine's (scalar spills
        // and argument-check traffic also count there), never more.
        assert!(t.loads <= total.loads);
        assert!(t.stores <= total.stores);
        assert!(t.loads + t.stores > 0);
    }
}

#[test]
fn profile_off_reports_none_and_matches_cycles() {
    let prog = compile_heat();
    let cfg = MachineConfig::scaled_origin2000(4, 64);
    // Serial-team replay: heat.f overflows the scaled L2, and capacity
    // evictions silently racing a neighbour's seam write give threaded
    // runs a few cycles of legitimate timing jitter (see
    // docs/SIMULATOR.md). The deterministic replay isolates the claim
    // under test — attribution is observational.
    let profiled = prog
        .run(&cfg, &ExecOptions::new(4).serial_team(true).profile(true))
        .expect("runs");
    let plain = prog
        .run(&cfg, &ExecOptions::new(4).serial_team(true))
        .expect("runs");
    assert!(plain.profile().is_none());
    // Attribution is observational: simulated time must be identical.
    assert_eq!(plain.report.total_cycles, profiled.report.total_cycles);
    assert_eq!(plain.report.total, profiled.report.total);
}
