//! The paper's evaluation workloads as mini-Fortran source generators.
//!
//! Section 8 evaluates three programs; each generator here parameterizes
//! the problem size and the data-placement policy so the bench harness
//! can sweep processor counts and regenerate every figure:
//!
//! * [`lu_source`] — an SSOR-style sweep over the two 4-D arrays of
//!   NAS-LU, distributed `(*, block, block, *)` with parallel
//!   initialization (Section 8.1);
//! * [`transpose_source`] — `A(j,i) = B(i,j)` with `A(*, block)`,
//!   `B(block, *)` and *serial* initialization (Section 8.2);
//! * [`conv2d_source`] — the 5-point 2-D convolution with either one
//!   level (`(*, block)`) or two levels (`(block, block)`) of parallelism
//!   and serial initialization (Section 8.3).
//!
//! The four placement policies of the figures map onto source/machine
//! combinations via [`Policy`]: first-touch and round-robin carry *no*
//! directives (only the machine's page policy differs), `Regular`
//! emits `c$distribute`, `Reshaped` emits `c$distribute_reshape`.

use dsm_machine::{MachineConfig, PagePolicy};

/// Data-placement policy of a figure's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// No directives; OS first-touch page placement.
    FirstTouch,
    /// No directives; OS round-robin page placement.
    RoundRobin,
    /// `c$distribute` (page-granular placement, layout unchanged).
    Regular,
    /// `c$distribute_reshape` (layout reorganized, exact distribution).
    Reshaped,
}

impl Policy {
    /// All four series of the paper's figures, in plot order.
    pub const ALL: [Policy; 4] = [
        Policy::FirstTouch,
        Policy::RoundRobin,
        Policy::Regular,
        Policy::Reshaped,
    ];

    /// Display label matching the figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Policy::FirstTouch => "first-touch",
            Policy::RoundRobin => "round-robin",
            Policy::Regular => "regular",
            Policy::Reshaped => "reshaped",
        }
    }

    fn directive(self, array: &str, dist: &str) -> String {
        match self {
            Policy::FirstTouch | Policy::RoundRobin => String::new(),
            Policy::Regular => format!("c$distribute {array}({dist})\n"),
            Policy::Reshaped => format!("c$distribute_reshape {array}({dist})\n"),
        }
    }

    /// Affinity clause fragment (distribution-directed policies only; the
    /// undistributed series use plain simple scheduling, like the
    /// paper's unannotated ports).
    fn affinity(self, clause: &str) -> String {
        match self {
            Policy::FirstTouch | Policy::RoundRobin => String::new(),
            Policy::Regular | Policy::Reshaped => format!(" {clause}"),
        }
    }

    /// Machine configuration for this policy: a scaled Origin-2000 whose
    /// default page policy matches the series.
    pub fn machine(self, nprocs: usize, scale: usize) -> MachineConfig {
        let mut cfg = MachineConfig::scaled_origin2000(nprocs, scale);
        cfg.policy = match self {
            Policy::RoundRobin => PagePolicy::RoundRobin,
            _ => PagePolicy::FirstTouch,
        };
        cfg
    }
}

/// Matrix transpose (Section 8.2): `n × n`, serial initialization, `reps`
/// timed transpose sweeps. `A(*, block)`, `B(block, *)` under the
/// distribution-directed policies.
///
/// The parallel loop runs over `i`, so iteration `i` copies row `i` of B
/// (owned by block-owner(i) under `(block, *)`) into column `i` of A
/// (owned by the *same* processor under `(*, block)`): with exact
/// distributions the transpose is entirely local — which is why the
/// reshaped version wins and why the page-granular policies, which cannot
/// realize `(block, *)`, bottleneck.
pub fn transpose_source(n: usize, reps: usize, policy: Policy) -> String {
    let da = policy.directive("a", "*, block");
    let db = policy.directive("b", "block, *");
    let aff = policy.affinity("affinity(i) = data(a(1, i))");
    format!(
        "      program main
      integer i, j, rep
      real*8 a({n}, {n}), b({n}, {n})
{da}{db}      do j = 1, {n}
        do i = 1, {n}
          b(i, j) = i + {n}*j
        enddo
      enddo
      do rep = 1, {reps}
c$doacross local(i, j){aff}
      do i = 1, {n}
        do j = 1, {n}
          a(j, i) = b(i, j)
        enddo
      enddo
      enddo
      end
"
    )
}

/// Block-distributed fill sweep: `reps` parallel passes writing a
/// loop-invariant (per pass) expression into every element of an
/// `n × n` array distributed `a(*, block)`.
///
/// Not a paper workload — a throughput harness for the executors. Each
/// inner column walk is a unit-stride store stream whose right-hand side
/// is invariant, the best case for the bytecode engine's bulk access
/// runs (one evaluation plus one batched machine run per column,
/// versus the tree-walking interpreter's per-element dispatch). The
/// `host_scaling` bench uses it to measure executed-iteration
/// throughput engine-to-engine; the RHS still depends on `rep` so a
/// conforming engine must charge its operation costs per element.
pub fn fill_sweep_source(n: usize, reps: usize) -> String {
    format!(
        "      program main
      integer i, j, rep
      real*8 a({n}, {n})
c$distribute a(*, block)
      do rep = 1, {reps}
c$doacross local(i, j) affinity(j) = data(a(1, j))
        do j = 1, {n}
          do i = 1, {n}
            a(i, j) = dble(rep) * 1.5d0 + 2.0d0
          enddo
        enddo
      enddo
      end
"
    )
}

/// 2-D convolution (Section 8.3): `n × n`, serial initialization, `reps`
/// timed 5-point stencil sweeps. `two_level` selects `(block, block)`
/// with `nest(j, i)` instead of `(*, block)` with one parallel loop.
pub fn conv2d_source(n: usize, reps: usize, policy: Policy, two_level: bool) -> String {
    let (dist, doacross) = if two_level {
        (
            "block, block",
            format!(
                "c$doacross nest(j, i) local(i, j){}",
                policy.affinity("affinity(j, i) = data(a(i, j))")
            ),
        )
    } else {
        (
            "*, block",
            format!(
                "c$doacross local(i, j){}",
                policy.affinity("affinity(j) = data(a(i, j))")
            ),
        )
    };
    let da = policy.directive("a", dist);
    let db = policy.directive("b", dist);
    let nm1 = n - 1;
    format!(
        "      program main
      integer i, j, rep
      real*8 a({n}, {n}), b({n}, {n})
{da}{db}      do j = 1, {n}
        do i = 1, {n}
          b(i, j) = i * j
        enddo
      enddo
      do rep = 1, {reps}
{doacross}
      do j = 2, {nm1}
        do i = 2, {nm1}
          a(i,j) = (b(i-1,j) + b(i,j-1) + b(i,j) + b(i,j+1) + b(i+1,j)) / 5.0
        enddo
      enddo
      enddo
      end
"
    )
}

/// NAS-LU-style SSOR sweep (Section 8.1): the two 4-D arrays
/// `u(5, nx, ny, nz)` and `rsd(5, nx, ny, nz)` distributed
/// `(*, block, block, *)`, **parallel** initialization (as in the paper),
/// `steps` relaxation steps of a 5-point (i, j)-plane stencil applied at
/// every k plane, with the `m` component loop innermost.
pub fn lu_source(nx: usize, ny: usize, nz: usize, steps: usize, policy: Policy) -> String {
    let du = policy.directive("u", "*, block, block, *");
    let dr = policy.directive("rsd", "*, block, block, *");
    let aff_init = policy.affinity("affinity(j, i) = data(u(1, i, j, 1))");
    let aff = policy.affinity("affinity(j, i) = data(u(1, i, j, 1))");
    let (nxm1, nym1) = (nx - 1, ny - 1);
    format!(
        "      program main
      integer i, j, k, m, step
      real*8 u(5, {nx}, {ny}, {nz}), rsd(5, {nx}, {ny}, {nz})
{du}{dr}      do k = 1, {nz}
c$doacross nest(j, i) local(i, j, m){aff_init}
      do j = 1, {ny}
        do i = 1, {nx}
          do m = 1, 5
            u(m, i, j, k) = i + j + k + m
            rsd(m, i, j, k) = 0.0
          enddo
        enddo
      enddo
      enddo
      do step = 1, {steps}
      do k = 2, {nz}
c$doacross nest(j, i) local(i, j, m){aff}
      do j = 2, {nym1}
        do i = 2, {nxm1}
          do m = 1, 5
            rsd(m, i, j, k) = 0.2 * (u(m, i-1, j, k) + u(m, i+1, j, k) &
              + u(m, i, j-1, k) + u(m, i, j+1, k) &
              + u(m, i, j, k-1) - 4.0 * u(m, i, j, k)) &
              + 0.1 * u(m, i, j, k) * u(m, i, j, k) &
              - 0.05 * u(m, i, j, k) * u(m, i, j, k) * u(m, i, j, k) &
                / (1.0 + 0.3 * u(m, i, j, k) * u(m, i, j, k)) &
              + (0.7 * u(m, i-1, j, k) * u(m, i+1, j, k) &
                 - 0.4 * u(m, i, j-1, k) * u(m, i, j+1, k)) &
                / (2.0 + 0.2 * u(m, i, j, k)) &
              + 0.01 * (u(m, i-1, j, k) - u(m, i+1, j, k)) &
                * (u(m, i, j-1, k) - u(m, i, j+1, k))
          enddo
        enddo
      enddo
      enddo
      do k = 2, {nz}
c$doacross nest(j, i) local(i, j, m){aff}
      do j = 2, {nym1}
        do i = 2, {nxm1}
          do m = 1, 5
            u(m, i, j, k) = u(m, i, j, k) + rsd(m, i, j, k) &
              * (1.2 - 0.3 * rsd(m, i, j, k) &
                 + 0.04 * rsd(m, i, j, k) * rsd(m, i, j, k)) &
              / (1.0 + 0.1 * rsd(m, i, j, k) * rsd(m, i, j, k))
          enddo
        enddo
      enddo
      enddo
      enddo
      end
"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecOptions, OptConfig, Session};

    fn compiles(src: &str) {
        Session::new()
            .source("w.f", src)
            .compile()
            .unwrap_or_else(|e| {
                panic!("workload failed to compile: {:?}\n{src}", e);
            });
    }

    #[test]
    fn all_transpose_policies_compile() {
        for p in Policy::ALL {
            compiles(&transpose_source(32, 1, p));
        }
    }

    #[test]
    fn fill_sweep_compiles_and_fills() {
        let prog = Session::new()
            .source("f.f", &fill_sweep_source(16, 3))
            .compile()
            .expect("compiles");
        let cfg = Policy::Regular.machine(4, 2048);
        let cap = prog
            .run(&cfg, &ExecOptions::new(4).capture(&["a"]))
            .expect("runs")
            .captures;
        assert!(cap[0].iter().all(|&v| v == 3.0 * 1.5 + 2.0));
    }

    #[test]
    fn all_conv_policies_compile_both_levels() {
        for p in Policy::ALL {
            compiles(&conv2d_source(32, 1, p, false));
            compiles(&conv2d_source(32, 1, p, true));
        }
    }

    #[test]
    fn all_lu_policies_compile() {
        for p in Policy::ALL {
            compiles(&lu_source(10, 10, 6, 1, p));
        }
    }

    #[test]
    fn transpose_results_match_across_policies() {
        let mut reference: Option<Vec<f64>> = None;
        for p in Policy::ALL {
            let prog = Session::new()
                .source("t.f", &transpose_source(24, 1, p))
                .compile()
                .expect("compiles");
            let cfg = p.machine(4, 1024);
            let cap = prog
                .run(&cfg, &ExecOptions::new(4).capture(&["a"]))
                .expect("runs")
                .captures;
            match &reference {
                None => reference = Some(cap[0].clone()),
                Some(r) => assert_eq!(&cap[0], r, "policy {p:?} altered results"),
            }
        }
        // Spot check: a(j,i) = b(i,j) = i + n*j with n=24.
        let r = reference.unwrap();
        // a(3, 7) is element (3-1) + 24*(7-1) = 146; equals b(7,3)= 7+24*3.
        assert_eq!(r[146], (7 + 24 * 3) as f64);
    }

    #[test]
    fn conv_results_match_between_levels() {
        let one = Session::new()
            .source("c.f", &conv2d_source(20, 1, Policy::Reshaped, false))
            .compile()
            .unwrap();
        let two = Session::new()
            .source("c.f", &conv2d_source(20, 1, Policy::Reshaped, true))
            .compile()
            .unwrap();
        let cfg = Policy::Reshaped.machine(4, 2048);
        let opts = ExecOptions::new(4).capture(&["a"]);
        let c1 = one.run(&cfg, &opts).unwrap().captures;
        let c2 = two.run(&cfg, &opts).unwrap().captures;
        assert_eq!(c1[0], c2[0]);
    }

    #[test]
    fn lu_runs_and_is_deterministic_across_policies() {
        let mut reference: Option<Vec<f64>> = None;
        for p in [Policy::FirstTouch, Policy::Reshaped] {
            let prog = Session::new()
                .source("lu.f", &lu_source(8, 8, 5, 1, p))
                .compile()
                .unwrap();
            let cfg = p.machine(4, 2048);
            let cap = prog
                .run(&cfg, &ExecOptions::new(4).capture(&["u"]))
                .unwrap()
                .captures;
            match &reference {
                None => reference = Some(cap[0].clone()),
                Some(r) => assert_eq!(&cap[0], r, "policy {p:?} altered LU results"),
            }
        }
    }

    #[test]
    fn reshaped_lu_uses_tiled_addressing() {
        let prog = Session::new()
            .source("lu.f", &lu_source(10, 10, 6, 1, Policy::Reshaped))
            .optimize(OptConfig::default())
            .compile()
            .unwrap();
        let dump = prog.ir_dump();
        assert!(
            dump.contains("[hoisted]"),
            "LU inner loops should be fully optimized"
        );
        assert!(
            dump.contains("!proctile"),
            "LU loops should be affinity-scheduled"
        );
    }
}
