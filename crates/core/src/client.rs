//! Client side of the `dsmd` daemon protocol.
//!
//! A [`Remote`] wraps one Unix-socket connection: one request line out,
//! one reply line back, in order. [`run_remote`] is the high-level
//! entry `dsmfc --remote=SOCK` uses; everything it returns decodes
//! through `dsm-proto`, the same crate the daemon encodes with, which
//! is how a remote report stays bit-identical to a local run.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;

use dsm_exec::ExecOptions;
use dsm_proto::{parse, run_request_json, DecodedOutcome, MachineSpec, Value};

use crate::OptConfig;

/// A failed remote interaction: transport trouble, a malformed reply,
/// or an error reply from the daemon — always with a stable
/// machine-readable code (`"io"`, `"proto"`, `"compile"`, `"exec.*"`,
/// `"daemon.*"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteError {
    /// Stable code, printable as `dsmfc: error code {code}`.
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl RemoteError {
    fn io(message: String) -> Self {
        RemoteError {
            code: "io".to_string(),
            message,
        }
    }
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.message, self.code)
    }
}

impl std::error::Error for RemoteError {}

/// One connection to a `dsmd` daemon.
pub struct Remote {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Remote {
    /// Connect to the daemon's Unix socket.
    ///
    /// # Errors
    ///
    /// Connection failures surface with code `"io"`.
    pub fn connect(socket: &str) -> Result<Remote, RemoteError> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| RemoteError::io(format!("cannot connect to `{socket}`: {e}")))?;
        let read_half = stream
            .try_clone()
            .map_err(|e| RemoteError::io(format!("cannot clone socket: {e}")))?;
        Ok(Remote {
            reader: BufReader::new(read_half),
            writer: stream,
        })
    }

    /// Send one request line, read one reply line. An `ok:false` reply
    /// becomes a [`RemoteError`] carrying the daemon's code.
    ///
    /// # Errors
    ///
    /// Transport failures (`"io"`), undecodable replies (`"proto"`),
    /// and daemon error replies (their own code).
    pub fn roundtrip(&mut self, line: &str) -> Result<Value, RemoteError> {
        writeln!(self.writer, "{line}")
            .and_then(|()| self.writer.flush())
            .map_err(|e| RemoteError::io(format!("cannot send request: {e}")))?;
        let mut reply = String::new();
        let n = self
            .reader
            .read_line(&mut reply)
            .map_err(|e| RemoteError::io(format!("cannot read reply: {e}")))?;
        if n == 0 {
            return Err(RemoteError::io("daemon closed the connection".to_string()));
        }
        let v = parse(reply.trim_end()).map_err(|e| RemoteError {
            code: "proto".to_string(),
            message: format!("malformed reply: {e}"),
        })?;
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            return Ok(v);
        }
        Err(RemoteError {
            code: v
                .get("code")
                .and_then(Value::as_str)
                .unwrap_or("proto")
                .to_string(),
            message: v
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("daemon reported an error without a message")
                .to_string(),
        })
    }
}

/// Everything a remote run returns.
#[derive(Debug, Clone)]
pub struct RemoteRun {
    /// Report and captures, decoded bit-exactly.
    pub outcome: DecodedOutcome,
    /// The attribution profile rendered by the daemon (`--profile`
    /// output), relayed verbatim.
    pub profile_text: Option<String>,
    /// Whether the daemon served the program from its cache.
    pub cached: bool,
    /// Pre-linker clones created (for the `dsmfc` banner line).
    pub prelink_clones: u64,
    /// Pre-linker recompilations (same banner).
    pub prelink_recompilations: u64,
}

/// Compile-and-run `sources` on the daemon at `socket`.
///
/// # Errors
///
/// Transport, protocol and daemon-side failures as [`RemoteError`].
pub fn run_remote(
    socket: &str,
    sources: &[(String, String)],
    opt: &OptConfig,
    spec: &MachineSpec,
    exec: &ExecOptions,
    priority: i64,
    wall_ms: Option<u64>,
) -> Result<RemoteRun, RemoteError> {
    let mut remote = Remote::connect(socket)?;
    let line = run_request_json(sources, opt, spec, &exec.to_json(), priority, wall_ms, false);
    let reply = remote.roundtrip(&line)?;
    let proto_err = |message: String| RemoteError {
        code: "proto".to_string(),
        message,
    };
    let outcome_v = reply
        .get("outcome")
        .ok_or_else(|| proto_err("run reply lacks `outcome`".to_string()))?;
    let outcome = dsm_proto::outcome_from_value(outcome_v).map_err(proto_err)?;
    let prelink = |key: &str| {
        reply
            .get("prelink")
            .and_then(|p| p.get(key))
            .and_then(Value::as_u64)
            .unwrap_or(0)
    };
    Ok(RemoteRun {
        outcome,
        profile_text: reply
            .get("profile_text")
            .and_then(Value::as_str)
            .map(str::to_string),
        cached: reply.get("cached").and_then(Value::as_bool).unwrap_or(false),
        prelink_clones: prelink("clones"),
        prelink_recompilations: prelink("recompilations"),
    })
}
