//! # dsm-core
//!
//! The end-to-end API of this reproduction of Chandra et al., *Data
//! Distribution Support on Distributed Shared Memory Multiprocessors*
//! (PLDI 1997): compile mini-Fortran programs carrying `c$distribute`,
//! `c$distribute_reshape` and `c$doacross` directives, and run them on a
//! simulated Origin-2000-class CC-NUMA machine.
//!
//! ```
//! use dsm_core::{DsmError, ExecOptions, MachineConfig, OptConfig, Session};
//!
//! # fn main() -> Result<(), DsmError> {
//! let src = "\
//!       program main
//!       integer i
//!       real*8 a(1024)
//! c$distribute_reshape a(block)
//! c$doacross local(i) affinity(i) = data(a(i))
//!       do i = 1, 1024
//!         a(i) = 2*i
//!       enddo
//!       end
//! ";
//! let program = Session::new()
//!     .source("demo.f", src)
//!     .optimize(OptConfig::default())
//!     .compile()?;
//! let out = program.run(
//!     &MachineConfig::small_test(4),
//!     &ExecOptions::new(4).profile(true).capture(&["a"]),
//! )?;
//! assert!(out.report.total_cycles > 0);
//! assert_eq!(out.captures[0][1023], 2048.0);
//! assert!(out.profile().is_some_and(|p| p.array("a").is_some()));
//! # Ok(())
//! # }
//! ```
//!
//! The [`workloads`] module generates the paper's three evaluation
//! programs (NAS-LU-style SSOR, matrix transpose, 2-D convolution)
//! parameterized by size and placement policy; the `dsm-bench` crate uses
//! them to regenerate every table and figure.

pub mod client;
pub mod workloads;

pub use client::{run_remote, Remote, RemoteError, RemoteRun};
pub use dsm_advisor::{advise, Advice, AdvisorConfig, AdvisorError};
pub use dsm_proto::MachineSpec;
pub use dsm_compile::{load_sources, OptConfig, PrelinkReport};
pub use dsm_exec::{Engine, ExecError, ExecOptions, Profile, RedistMode, RunOutcome, RunReport};
pub use dsm_frontend::{CompileError, ErrorKind};
pub use dsm_ir::Program;
pub use dsm_machine::{
    CounterSet, Machine, MachineConfig, MachineSnapshot, MigrationPolicy, PagePolicy,
    SamplingConfig, SamplingSummary,
};

/// Any failure the end-to-end API can produce: compile-time diagnostics,
/// a runtime execution error, or a source-loading failure. Both
/// [`Session::compile`] (via `?`) and [`CompiledProgram::run`] convert
/// into it, so a driver needs exactly one error type.
#[derive(Debug, Clone, PartialEq)]
pub enum DsmError {
    /// Every compile-time and link-time diagnostic.
    Compile(Vec<CompileError>),
    /// A runtime failure (out-of-bounds, failed argument check, illegal
    /// redistribution, step limit).
    Exec(ExecError),
    /// A source file could not be read (the message already names it).
    Io(String),
}

impl DsmError {
    /// The compile diagnostics, when this is a compile failure.
    pub fn compile_errors(&self) -> Option<&[CompileError]> {
        match self {
            DsmError::Compile(e) => Some(e),
            DsmError::Exec(_) | DsmError::Io(_) => None,
        }
    }

    /// Stable machine-readable error code: `"compile"`, `"io"`, or the
    /// failing [`ExecError::code`] (`"exec.runtime"`, `"exec.step-limit"`,
    /// …). CLI drivers print it alongside the message and the daemon wire
    /// protocol carries it in every error reply — codes are part of the
    /// protocol: add new ones, never repurpose existing ones.
    pub fn code(&self) -> &'static str {
        match self {
            DsmError::Compile(_) => "compile",
            DsmError::Exec(e) => e.code(),
            DsmError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for DsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsmError::Compile(errs) => {
                write!(f, "{} compile error(s)", errs.len())?;
                for e in errs {
                    write!(f, "\n  {}: {}", e.file_name, e.msg)?;
                }
                Ok(())
            }
            DsmError::Exec(e) => write!(f, "runtime error: {e}"),
            DsmError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for DsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DsmError::Compile(_) | DsmError::Io(_) => None,
            DsmError::Exec(e) => Some(e),
        }
    }
}

impl From<Vec<CompileError>> for DsmError {
    fn from(e: Vec<CompileError>) -> Self {
        DsmError::Compile(e)
    }
}

impl From<ExecError> for DsmError {
    fn from(e: ExecError) -> Self {
        DsmError::Exec(e)
    }
}

/// A compilation session: sources plus optimization settings.
#[derive(Debug, Clone, Default)]
pub struct Session {
    sources: Vec<(String, String)>,
    opt: OptConfig,
}

impl Session {
    /// Empty session with default (full) optimization.
    pub fn new() -> Self {
        Session {
            sources: Vec::new(),
            opt: OptConfig::default(),
        }
    }

    /// Add a source file.
    pub fn source(mut self, name: &str, text: &str) -> Self {
        self.sources.push((name.to_string(), text.to_string()));
        self
    }

    /// Select optimization settings (see [`OptConfig`]).
    pub fn optimize(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Compile all sources: frontend, lowering, pre-link (directive
    /// propagation, cloning, common-block consistency) and the reshaped
    /// -array optimization pipeline.
    ///
    /// # Errors
    ///
    /// Returns every compile-time and link-time diagnostic.
    pub fn compile(self) -> Result<CompiledProgram, Vec<CompileError>> {
        let compiled = dsm_compile::compile_sources(&self.sources, &self.opt)?;
        Ok(CompiledProgram { compiled })
    }
}

/// Compile already-loaded `(name, text)` sources into a runnable
/// [`CompiledProgram`] — the one compile sequence `dsmfc`, `dsmtune`,
/// `dsmfuzz` and the `dsmd` daemon all share (each used to carry its own
/// slightly-divergent copy).
///
/// # Errors
///
/// Returns every compile-time and link-time diagnostic as
/// [`DsmError::Compile`].
pub fn compile_source(
    sources: &[(String, String)],
    opt: &OptConfig,
) -> Result<CompiledProgram, DsmError> {
    let compiled = dsm_compile::compile_sources(sources, opt)?;
    Ok(CompiledProgram { compiled })
}

/// [`compile_source`] over paths: load the files with
/// [`dsm_compile::load_sources`], then compile.
///
/// # Errors
///
/// An unreadable file surfaces as [`DsmError::Io`]; diagnostics as
/// [`DsmError::Compile`].
pub fn compile_files(paths: &[String], opt: &OptConfig) -> Result<CompiledProgram, DsmError> {
    let sources = dsm_compile::load_sources(paths).map_err(DsmError::Io)?;
    compile_source(&sources, opt)
}

/// A compiled, linked, optimized program ready to run.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    compiled: dsm_compile::pipeline::Compiled,
}

impl CompiledProgram {
    /// The optimized IR.
    pub fn program(&self) -> &Program {
        &self.compiled.program
    }

    /// Pre-linker statistics (clones created, recompilations).
    pub fn prelink_report(&self) -> &PrelinkReport {
        &self.compiled.prelink
    }

    /// Human-readable IR dump (transformed loops, address modes).
    pub fn ir_dump(&self) -> String {
        dsm_ir::printer::print_program(&self.compiled.program)
    }

    /// Run on a fresh machine built from `cfg` under `opts`, returning the
    /// full [`RunOutcome`]: the report, any captured arrays
    /// ([`ExecOptions::capture`]) and the attribution profile
    /// ([`ExecOptions::profile`]).
    ///
    /// # Errors
    ///
    /// Returns runtime failures (out-of-bounds, failed argument checks,
    /// illegal redistribution) as [`DsmError::Exec`].
    ///
    /// # Panics
    ///
    /// Panics if `opts.nprocs` exceeds the machine's processor count.
    pub fn run(&self, cfg: &MachineConfig, opts: &ExecOptions) -> Result<RunOutcome, DsmError> {
        let mut m = Machine::new(cfg.clone());
        self.run_on(&mut m, opts)
    }

    /// Run on an existing machine — the daemon's pooled-machine path.
    /// The machine must be in its post-construction (or
    /// [`Machine::restore`]d-to-pristine) state; the run mutates it, so
    /// a pooling caller restores on success and discards on error (an
    /// errored run may leave mailbox messages in flight, which a
    /// snapshot-restore cycle refuses to touch).
    ///
    /// # Errors
    ///
    /// Returns runtime failures as [`DsmError::Exec`].
    ///
    /// # Panics
    ///
    /// Panics if `opts.nprocs` exceeds the machine's processor count.
    pub fn run_on(&self, machine: &mut Machine, opts: &ExecOptions) -> Result<RunOutcome, DsmError> {
        dsm_exec::run_outcome(machine, &self.compiled.program, opts).map_err(DsmError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_end_to_end() {
        let p = Session::new()
            .source(
                "t.f",
                "      program main\n      integer i\n      real*8 a(64)\nc$distribute_reshape a(block)\n      do i = 1, 64\n        a(i) = i\n      enddo\n      end\n",
            )
            .compile()
            .expect("compiles");
        let out = p
            .run(
                &MachineConfig::small_test(2),
                &ExecOptions::new(2).capture(&["a"]).profile(true),
            )
            .expect("runs");
        assert!(out.report.total_cycles > 0);
        assert_eq!(out.captures[0][63], 64.0);
        assert!(out.profile().is_some_and(|pr| pr.array("a").is_some()));
        assert!(p.ir_dump().contains("do"));
    }

    #[test]
    fn dsm_error_unifies_compile_and_exec() {
        fn end_to_end(src: &str) -> Result<RunOutcome, DsmError> {
            let p = Session::new().source("t.f", src).compile()?;
            p.run(&MachineConfig::small_test(2), &ExecOptions::new(2))
        }
        let e =
            end_to_end("      program main\n      x = 1\n      end\n").expect_err("undeclared x");
        assert!(e.compile_errors().is_some());
        assert!(e.to_string().contains("compile error"));
        let ok = end_to_end("      program main\n      real*8 a(8)\n      a(1) = 1\n      end\n")
            .expect("runs");
        assert!(ok.report.total_cycles > 0);
    }

    #[test]
    fn compile_errors_surface() {
        let e = Session::new()
            .source("t.f", "      program main\n      x = 1\n      end\n")
            .compile()
            .expect_err("undeclared x");
        assert!(e.iter().any(|d| d.msg.contains('x')));
    }

    #[test]
    fn opt_config_affects_ir() {
        let src = "      program main\n      integer i\n      real*8 a(64)\nc$distribute_reshape a(block)\nc$doacross local(i) affinity(i) = data(a(i))\n      do i = 1, 64\n        a(i) = i\n      enddo\n      end\n";
        let raw = Session::new()
            .source("t.f", src)
            .optimize(OptConfig::none())
            .compile()
            .unwrap();
        let full = Session::new().source("t.f", src).compile().unwrap();
        assert!(raw.ir_dump().contains("[raw]"));
        assert!(full.ir_dump().contains("[hoisted]"));
    }
}
