//! `dsmfc` — the mini-Fortran directive compiler driver.
//!
//! Compiles one or more source files through the full pipeline (frontend,
//! pre-linker with directive propagation and cloning, reshaped-array
//! optimizations) and runs the program on a simulated CC-NUMA machine.
//!
//! ```text
//! dsmfc [options] file.f [file2.f ...]
//!   -p, --procs N       simulated processors (default 4)
//!       --scale N       machine scale divisor vs a real Origin-2000 (default 64)
//!   -O LEVEL            none | tile | hoist | full   (default full)
//!       --dump-ir       print the transformed IR and exit
//!       --check         enable the Section-6 runtime argument checks
//!       --round-robin   round-robin page placement instead of first-touch
//!       --counters      print per-processor hardware counters
//!       --serial-team   simulate team members sequentially (reference mode)
//!       --engine E      executor: bytecode (default) | interp
//!       --migrate POLICY      reactive page migration: off |
//!                             threshold[:N] | competitive[:N]
//!       --sample 1/N    systematic cache-set sampling: simulate 1/N of
//!                       the L2 sets exactly and extrapolate the rest
//!                       (data results stay bit-identical; 1/1 = exact)
//!       --sample-seed N choose which residue class of sets is sampled
//!       --strip-placement     drop placement directives and affinity
//!                             clauses (keep doacross) before compiling
//!       --profile       print the per-array/per-region attribution profile
//!       --profile-json FILE   also write the profile as JSON to FILE
//!       --auto          strip directives and search for the best plan first
//!       --budget N      candidate simulations for --auto (default 48)
//!       --plan-json FILE      write the --auto plan as JSON to FILE
//!       --emit-fortran FILE   write the --auto annotated source to FILE
//!       --remote SOCK   compile and run on the dsmd daemon listening on
//!                       the Unix socket SOCK instead of in-process; the
//!                       printed report is bit-identical to a local run
//!       --priority N    admission priority for --remote (default 0)
//!       --wall-ms N     wall budget for --remote: if still queued after
//!                       N ms the daemon answers daemon.deadline
//!       --redist M      redistribution mover: scheduled (default, round-
//!                       packed bulk moves) | naive (per-page faults)
//!       --resize-to N   resize the team to N processors before the first
//!                       statement (moves only the delta pages)
//! ```

use dsm_core::{
    advise, AdvisorConfig, DsmError, Engine, ExecOptions, MachineConfig, MachineSpec,
    MigrationPolicy, OptConfig, PagePolicy, RedistMode, RunReport, SamplingConfig,
};

struct Options {
    files: Vec<String>,
    procs: usize,
    scale: usize,
    opt: OptConfig,
    dump_ir: bool,
    checks: bool,
    round_robin: bool,
    counters: bool,
    serial_team: bool,
    engine: Engine,
    migrate: Option<MigrationPolicy>,
    sample: Option<SamplingConfig>,
    sample_seed: u64,
    strip_placement: bool,
    profile: bool,
    profile_json: Option<String>,
    auto: bool,
    budget: usize,
    plan_json: Option<String>,
    emit_fortran: Option<String>,
    remote: Option<String>,
    priority: i64,
    wall_ms: Option<u64>,
    redist: RedistMode,
    resize_to: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dsmfc [-p N] [--scale N] [-O none|tile|hoist|full] [--dump-ir] \
         [--check] [--round-robin] [--counters] [--serial-team] [--engine bytecode|interp] \
         [--migrate off|threshold[:N]|competitive[:N]] [--sample 1/N] [--sample-seed N] \
         [--strip-placement] [--profile] \
         [--profile-json FILE] [--auto] [--budget N] [--plan-json FILE] \
         [--emit-fortran FILE] [--remote SOCK] [--priority N] [--wall-ms N] \
         [--redist scheduled|naive] [--resize-to N] \
         file.f [file2.f ...]"
    );
    std::process::exit(2)
}

/// Parse the `--engine` argument, exiting with a diagnostic on an
/// unknown executor name.
fn engine_arg(spec: Option<&str>) -> Engine {
    let Some(spec) = spec else {
        eprintln!("dsmfc: --engine requires an executor (bytecode | interp)");
        std::process::exit(2);
    };
    spec.parse().unwrap_or_else(|e| {
        eprintln!("dsmfc: --engine: {e}");
        std::process::exit(2);
    })
}

/// Parse the `--redist` mover argument, exiting with a diagnostic on an
/// unknown mode.
fn redist_arg(spec: Option<&str>) -> RedistMode {
    let Some(spec) = spec else {
        eprintln!("dsmfc: --redist requires a mover (scheduled | naive)");
        std::process::exit(2);
    };
    spec.parse().unwrap_or_else(|e| {
        eprintln!("dsmfc: --redist: {e}");
        std::process::exit(2);
    })
}

/// Parse the `--sample` rate argument, exiting with a diagnostic on a
/// malformed spec.
fn sample_arg(spec: Option<&str>) -> SamplingConfig {
    let Some(spec) = spec else {
        eprintln!("dsmfc: --sample requires a rate (1/N or N, power-of-two N)");
        std::process::exit(2);
    };
    SamplingConfig::parse(spec).unwrap_or_else(|e| {
        eprintln!("dsmfc: --sample: {e}");
        std::process::exit(2);
    })
}

/// Parse the `--migrate` policy argument, exiting with a diagnostic on
/// a malformed spec.
fn migrate_arg(spec: Option<&str>) -> MigrationPolicy {
    let Some(spec) = spec else {
        eprintln!("dsmfc: --migrate requires a policy (off | threshold[:N] | competitive[:N])");
        std::process::exit(2);
    };
    MigrationPolicy::parse(spec).unwrap_or_else(|e| {
        eprintln!("dsmfc: --migrate: {e}");
        std::process::exit(2);
    })
}

/// The output path following a flag. A missing argument — or a following
/// flag swallowed as if it were a path — is a hard error, not a silent
/// misparse.
fn path_arg(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) if !v.starts_with('-') => v,
        _ => {
            eprintln!("dsmfc: {flag} requires an output path");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Options {
    let mut o = Options {
        files: vec![],
        procs: 4,
        scale: 64,
        opt: OptConfig::default(),
        dump_ir: false,
        checks: false,
        round_robin: false,
        counters: false,
        serial_team: false,
        engine: Engine::default(),
        migrate: None,
        sample: None,
        sample_seed: 0,
        strip_placement: false,
        profile: false,
        profile_json: None,
        auto: false,
        budget: 48,
        plan_json: None,
        emit_fortran: None,
        remote: None,
        priority: 0,
        wall_ms: None,
        redist: RedistMode::default(),
        resize_to: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-p" | "--procs" => {
                o.procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                o.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "-O" => {
                o.opt = match args.next().as_deref() {
                    Some("none") => OptConfig::none(),
                    Some("tile") => OptConfig::tile_peel_only(),
                    Some("hoist") => OptConfig::tile_peel_hoist(),
                    Some("full") => OptConfig::default(),
                    _ => usage(),
                }
            }
            "--dump-ir" => o.dump_ir = true,
            "--check" => o.checks = true,
            "--round-robin" => o.round_robin = true,
            "--counters" => o.counters = true,
            "--serial-team" => o.serial_team = true,
            "--engine" => o.engine = engine_arg(args.next().as_deref()),
            e if e.starts_with("--engine=") => {
                o.engine = engine_arg(e.strip_prefix("--engine="));
            }
            "--migrate" => o.migrate = Some(migrate_arg(args.next().as_deref())),
            m if m.starts_with("--migrate=") => {
                o.migrate = Some(migrate_arg(m.strip_prefix("--migrate=")));
            }
            "--sample" => o.sample = Some(sample_arg(args.next().as_deref())),
            m if m.starts_with("--sample=") => {
                o.sample = Some(sample_arg(m.strip_prefix("--sample=")));
            }
            "--sample-seed" => {
                o.sample_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--strip-placement" => o.strip_placement = true,
            "--profile" => o.profile = true,
            "--profile-json" => o.profile_json = Some(path_arg(&mut args, &a)),
            "--auto" => o.auto = true,
            "--budget" => {
                o.budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--plan-json" => o.plan_json = Some(path_arg(&mut args, &a)),
            "--emit-fortran" => o.emit_fortran = Some(path_arg(&mut args, &a)),
            "--remote" => o.remote = Some(path_arg(&mut args, &a)),
            r if r.starts_with("--remote=") => {
                o.remote = r.strip_prefix("--remote=").map(str::to_string);
            }
            "--priority" => {
                o.priority = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--wall-ms" => {
                o.wall_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .or_else(|| usage())
            }
            "--redist" => o.redist = redist_arg(args.next().as_deref()),
            r if r.starts_with("--redist=") => {
                o.redist = redist_arg(r.strip_prefix("--redist="));
            }
            "--resize-to" => {
                o.resize_to = args.next().and_then(|v| v.parse().ok()).or_else(|| usage())
            }
            "-h" | "--help" => usage(),
            f if !f.starts_with('-') => o.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if o.files.is_empty() {
        usage();
    }
    o
}

/// Run the advisor over `sources` and return the annotated program it
/// chose (which the normal compile+run below then uses).
fn run_auto(o: &Options, sources: &[(String, String)]) -> Vec<(String, String)> {
    let cfg = AdvisorConfig {
        nprocs: o.procs,
        scale: o.scale,
        budget: o.budget,
        opt: o.opt,
        ..AdvisorConfig::default()
    };
    let advice = match advise(sources, &cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dsmfc: --auto failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "auto: baseline {} cycles ({} remote misses)",
        advice.baseline.total_cycles, advice.baseline.remote_misses
    );
    println!(
        "auto: best     {} cycles ({} remote misses), speedup {:.2}x",
        advice.best.total_cycles,
        advice.best.remote_misses,
        advice.speedup()
    );
    println!(
        "auto: searched {} candidates ({} pruned, {} rejected), verified {} oracle runs",
        advice.evaluated, advice.pruned, advice.rejected, advice.verified_runs
    );
    for d in advice.directives() {
        println!("auto:   {d}");
    }
    if let Some(path) = &o.plan_json {
        if let Err(e) = std::fs::write(path, advice.plan_json()) {
            eprintln!("dsmfc: cannot write `{path}`: {e}");
            std::process::exit(1);
        }
    }
    if let Some(path) = &o.emit_fortran {
        if let Err(e) = std::fs::write(path, advice.emitted()) {
            eprintln!("dsmfc: cannot write `{path}`: {e}");
            std::process::exit(1);
        }
    }
    advice.annotated
}

/// Assemble [`ExecOptions`] from the flags, validating the sampling
/// spec against the machine's cache geometry (exit 2 when the hardware
/// cannot sample at that rate). Shared by the local and `--remote`
/// paths so both run under exactly the same options.
fn build_exec(o: &Options, cfg: &MachineConfig) -> ExecOptions {
    let want_profile = o.profile || o.profile_json.is_some();
    let mut exec = ExecOptions::new(o.procs)
        .with_checks(o.checks)
        .serial_team(o.serial_team)
        .engine(o.engine)
        .profile(want_profile);
    if let Some(policy) = o.migrate {
        exec = exec.migration(policy);
    }
    if let Some(sample) = o.sample {
        let sample = sample.with_seed(o.sample_seed);
        if let Err(e) = sample.validate_geometry(&cfg.l1, &cfg.l2) {
            eprintln!("dsmfc: --sample: {e}");
            std::process::exit(2);
        }
        exec = exec.sampling(sample);
    }
    exec = exec.redist(o.redist);
    if let Some(p) = o.resize_to {
        exec = exec.resize_to(p);
    }
    exec
}

/// The measurement lines every run prints — local and remote paths
/// feed the same [`RunReport`] type through here, so `dsmfc --remote`
/// output is byte-identical to a local run (host wall-clock aside).
fn print_report(o: &Options, report: &RunReport) {
    println!(
        "cycles: {} total ({} in parallel regions, {} regions)",
        report.total_cycles, report.parallel_cycles, report.parallel_regions
    );
    println!("simulated seconds at 195 MHz: {:.6}", report.seconds(195e6));
    println!(
        "host wall-clock: {:?} total, {:?} in parallel regions",
        report.host_wall, report.host_region_wall
    );
    println!("aggregate: {}", report.total);
    println!("pages/node: {:?}", report.pages_per_node);
    if o.migrate.is_some_and(|p| !p.is_off()) {
        println!(
            "migration: {} page(s), {} cycles",
            report.pages_migrated, report.migration_cycles
        );
    }
    if report.redist_pages > 0 {
        println!(
            "redistribution ({}): {} page(s), {} cycles",
            o.redist, report.redist_pages, report.redist_cycles
        );
    }
    if let Some(s) = &report.sampling {
        println!("{s}");
    }
    if o.counters {
        for (p, c) in report.per_proc.iter().enumerate() {
            println!("P{p:<3} {c}");
        }
    }
}

/// Print/write the attribution profile. Both renderings arrive
/// pre-formatted (locally from the `Profile`, remotely relayed by the
/// daemon) so the bytes cannot depend on where the run happened.
fn print_profile(o: &Options, text: Option<&str>, json: Option<&str>) {
    if o.profile {
        if let Some(t) = text {
            println!("{t}");
        }
    }
    if let Some(path) = &o.profile_json {
        if let Some(j) = json {
            if let Err(e) = std::fs::write(path, j) {
                eprintln!("dsmfc: cannot write `{path}`: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// The `--remote` path: ship sources and options to the daemon, decode
/// the reply, and print exactly what the local path would.
fn run_on_daemon(o: &Options, socket: &str, sources: &[(String, String)]) {
    let mut cfg = MachineConfig::scaled_origin2000(o.procs, o.scale);
    if o.round_robin {
        cfg.policy = PagePolicy::RoundRobin;
    }
    let exec = build_exec(o, &cfg);
    let spec = MachineSpec::origin2000(o.procs, o.scale, o.round_robin);
    match dsm_core::run_remote(socket, sources, &o.opt, &spec, &exec, o.priority, o.wall_ms) {
        Ok(run) => {
            eprintln!(
                "dsmfc: compiled {} file(s) on {socket}; pre-linker: {} clone(s), \
                 {} recompilation(s){}",
                o.files.len(),
                run.prelink_clones,
                run.prelink_recompilations,
                if run.cached { " [cached]" } else { "" }
            );
            print_report(o, &run.outcome.report);
            print_profile(
                o,
                run.profile_text.as_deref(),
                run.outcome.profile_json.as_deref(),
            );
        }
        Err(e) => {
            // Match the local error shape: runtime errors print bare
            // (the message already starts "runtime error:"), anything
            // else gets the driver prefix.
            if e.code.starts_with("exec.") {
                eprintln!("{}", e.message);
            } else {
                eprintln!("dsmfc: {}", e.message);
            }
            eprintln!("dsmfc: error code {}", e.code);
            std::process::exit(1);
        }
    }
}

fn main() {
    let o = parse_args();
    let mut sources = match dsm_core::load_sources(&o.files).map_err(DsmError::Io) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dsmfc: {e}");
            eprintln!("dsmfc: error code {}", e.code());
            std::process::exit(1);
        }
    };
    if o.strip_placement {
        for (_, text) in &mut sources {
            *text = dsm_frontend::strip_placement(text);
        }
    }
    if let Some(socket) = &o.remote {
        if o.auto || o.dump_ir {
            eprintln!("dsmfc: --auto and --dump-ir are not supported with --remote");
            std::process::exit(2);
        }
        run_on_daemon(&o, socket, &sources);
        return;
    }
    if o.auto {
        sources = run_auto(&o, &sources);
    }
    let program = match dsm_core::compile_source(&sources, &o.opt) {
        Ok(p) => p,
        Err(e) => {
            if let Some(errs) = e.compile_errors() {
                let refs: Vec<(&str, &str)> = sources
                    .iter()
                    .map(|(n, t)| (n.as_str(), t.as_str()))
                    .collect();
                eprint!("{}", dsm_frontend::render_diagnostics(&refs, errs));
            } else {
                eprintln!("dsmfc: {e}");
            }
            eprintln!("dsmfc: error code {}", e.code());
            std::process::exit(1);
        }
    };
    let pr = program.prelink_report();
    eprintln!(
        "dsmfc: compiled {} file(s); pre-linker: {} clone(s), {} recompilation(s)",
        o.files.len(),
        pr.clones_created,
        pr.recompilations
    );
    if o.dump_ir {
        println!("{}", program.ir_dump());
        return;
    }
    let mut cfg = MachineConfig::scaled_origin2000(o.procs, o.scale);
    if o.round_robin {
        cfg.policy = PagePolicy::RoundRobin;
    }
    let exec = build_exec(&o, &cfg);
    match program.run(&cfg, &exec) {
        Ok(out) => {
            print_report(&o, &out.report);
            let text = out.profile().map(|p| p.to_string());
            let json = out.profile().map(|p| p.to_json());
            print_profile(&o, text.as_deref(), json.as_deref());
        }
        Err(e) => {
            eprintln!("{e}");
            eprintln!("dsmfc: error code {}", e.code());
            std::process::exit(1);
        }
    }
}
