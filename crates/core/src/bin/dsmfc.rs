//! `dsmfc` — the mini-Fortran directive compiler driver.
//!
//! Compiles one or more source files through the full pipeline (frontend,
//! pre-linker with directive propagation and cloning, reshaped-array
//! optimizations) and runs the program on a simulated CC-NUMA machine.
//!
//! ```text
//! dsmfc [options] file.f [file2.f ...]
//!   -p, --procs N       simulated processors (default 4)
//!       --scale N       machine scale divisor vs a real Origin-2000 (default 64)
//!   -O LEVEL            none | tile | hoist | full   (default full)
//!       --dump-ir       print the transformed IR and exit
//!       --check         enable the Section-6 runtime argument checks
//!       --round-robin   round-robin page placement instead of first-touch
//!       --counters      print per-processor hardware counters
//!       --serial-team   simulate team members sequentially (reference mode)
//!       --profile       print the per-array/per-region attribution profile
//!       --profile-json FILE   also write the profile as JSON to FILE
//! ```

use dsm_core::{ExecOptions, MachineConfig, OptConfig, PagePolicy, Session};

struct Options {
    files: Vec<String>,
    procs: usize,
    scale: usize,
    opt: OptConfig,
    dump_ir: bool,
    checks: bool,
    round_robin: bool,
    counters: bool,
    serial_team: bool,
    profile: bool,
    profile_json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: dsmfc [-p N] [--scale N] [-O none|tile|hoist|full] [--dump-ir] \
         [--check] [--round-robin] [--counters] [--serial-team] [--profile] \
         [--profile-json FILE] file.f [file2.f ...]"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut o = Options {
        files: vec![],
        procs: 4,
        scale: 64,
        opt: OptConfig::default(),
        dump_ir: false,
        checks: false,
        round_robin: false,
        counters: false,
        serial_team: false,
        profile: false,
        profile_json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "-p" | "--procs" => {
                o.procs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--scale" => {
                o.scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "-O" => {
                o.opt = match args.next().as_deref() {
                    Some("none") => OptConfig::none(),
                    Some("tile") => OptConfig::tile_peel_only(),
                    Some("hoist") => OptConfig::tile_peel_hoist(),
                    Some("full") => OptConfig::default(),
                    _ => usage(),
                }
            }
            "--dump-ir" => o.dump_ir = true,
            "--check" => o.checks = true,
            "--round-robin" => o.round_robin = true,
            "--counters" => o.counters = true,
            "--serial-team" => o.serial_team = true,
            "--profile" => o.profile = true,
            "--profile-json" => {
                o.profile_json = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            f if !f.starts_with('-') => o.files.push(f.to_string()),
            _ => usage(),
        }
    }
    if o.files.is_empty() {
        usage();
    }
    o
}

fn main() {
    let o = parse_args();
    let mut session = Session::new().optimize(o.opt);
    for f in &o.files {
        match std::fs::read_to_string(f) {
            Ok(text) => session = session.source(f, &text),
            Err(e) => {
                eprintln!("dsmfc: cannot read `{f}`: {e}");
                std::process::exit(1);
            }
        }
    }
    let program = match session.compile() {
        Ok(p) => p,
        Err(errs) => {
            let texts: Vec<(String, String)> = o
                .files
                .iter()
                .filter_map(|f| std::fs::read_to_string(f).ok().map(|t| (f.clone(), t)))
                .collect();
            let refs: Vec<(&str, &str)> = texts
                .iter()
                .map(|(n, t)| (n.as_str(), t.as_str()))
                .collect();
            eprint!("{}", dsm_frontend::render_diagnostics(&refs, &errs));
            std::process::exit(1);
        }
    };
    let pr = program.prelink_report();
    eprintln!(
        "dsmfc: compiled {} file(s); pre-linker: {} clone(s), {} recompilation(s)",
        o.files.len(),
        pr.clones_created,
        pr.recompilations
    );
    if o.dump_ir {
        println!("{}", program.ir_dump());
        return;
    }
    let mut cfg = MachineConfig::scaled_origin2000(o.procs, o.scale);
    if o.round_robin {
        cfg.policy = PagePolicy::RoundRobin;
    }
    let want_profile = o.profile || o.profile_json.is_some();
    let exec = ExecOptions::new(o.procs)
        .with_checks(o.checks)
        .serial_team(o.serial_team)
        .profile(want_profile);
    match program.run(&cfg, &exec) {
        Ok(out) => {
            let report = &out.report;
            println!(
                "cycles: {} total ({} in parallel regions, {} regions)",
                report.total_cycles, report.parallel_cycles, report.parallel_regions
            );
            println!("simulated seconds at 195 MHz: {:.6}", report.seconds(195e6));
            println!(
                "host wall-clock: {:?} total, {:?} in parallel regions",
                report.host_wall, report.host_region_wall
            );
            println!("aggregate: {}", report.total);
            println!("pages/node: {:?}", report.pages_per_node);
            if o.counters {
                for (p, c) in report.per_proc.iter().enumerate() {
                    println!("P{p:<3} {c}");
                }
            }
            if let Some(profile) = out.profile() {
                if o.profile {
                    println!("{profile}");
                }
                if let Some(path) = &o.profile_json {
                    if let Err(e) = std::fs::write(path, profile.to_json()) {
                        eprintln!("dsmfc: cannot write `{path}`: {e}");
                        std::process::exit(1);
                    }
                }
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
