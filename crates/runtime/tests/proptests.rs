//! Property-based tests of the distribution runtime's core invariants.

use dsm_ir::{Dist, DistKind, Distribution};
use dsm_machine::{Machine, MachineConfig, ProcId};
use dsm_runtime::sched::{partition_affinity, partition_interleave, partition_simple};
use dsm_runtime::{plan_schedule, ArrayLayout, DistDescriptor, PoolSet, RtArray};
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::Block),
        (1u64..8).prop_map(Dist::Cyclic),
        Just(Dist::Star),
    ]
}

proptest! {
    /// Every element is owned by exactly one processor, and the portion
    /// lengths sum to the array size.
    #[test]
    fn portions_partition_any_array(
        extents in prop::collection::vec(1u64..40, 1..4),
        dists in prop::collection::vec(arb_dist(), 1..4),
        nprocs in 1usize..17,
    ) {
        let rank = extents.len().min(dists.len());
        let extents = &extents[..rank];
        let dists = dists[..rank].to_vec();
        let desc = DistDescriptor::new(extents, &Distribution::new(dists), nprocs);
        let total: u64 = (0..desc.grid_size()).map(|p| desc.portion_len(p)).sum();
        prop_assert_eq!(total, desc.total_len());
    }

    /// `local_linear` is a bijection from a processor's elements onto
    /// `0..portion_len` (dense packing of reshaped portions).
    #[test]
    fn local_linear_is_dense(
        n0 in 1u64..30,
        n1 in 1u64..30,
        d0 in arb_dist(),
        d1 in arb_dist(),
        nprocs in 1usize..10,
    ) {
        let desc = DistDescriptor::new(&[n0, n1], &Distribution::new(vec![d0, d1]), nprocs);
        let mut seen = vec![std::collections::HashSet::new(); desc.grid_size()];
        for i in 0..n0 {
            for j in 0..n1 {
                let p = desc.owner_proc(&[i, j]);
                let off = desc.local_linear(&[i, j]);
                prop_assert!(off < desc.portion_len(p), "offset beyond portion");
                prop_assert!(seen[p].insert(off), "duplicate local offset");
            }
        }
        for (p, s) in seen.iter().enumerate() {
            prop_assert_eq!(s.len() as u64, desc.portion_len(p));
        }
    }

    /// Owner coordinates are always inside the processor grid.
    #[test]
    fn owners_within_grid(
        n in 1u64..200,
        d in arb_dist(),
        nprocs in 1usize..33,
        probe in 0u64..200,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        let i = probe % n;
        let p = desc.owner_proc(&[i]);
        prop_assert!(p < desc.grid_size());
    }

    /// `run_remaining` never exceeds the distance to the array end and is
    /// positive inside the array.
    #[test]
    fn run_remaining_bounds(
        n in 1u64..200,
        d in arb_dist(),
        nprocs in 1usize..9,
        probe in 0u64..200,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        let i = probe % n;
        let rem = desc.dims[0].run_remaining(i);
        prop_assert!(rem >= 1);
        prop_assert!(rem <= n - i);
    }

    /// Simple scheduling covers every iteration exactly once.
    #[test]
    fn simple_schedule_exact_cover(
        lb in -50i64..50,
        len in 0i64..100,
        step in 1i64..7,
        n in 1usize..9,
    ) {
        let ub = lb + len;
        let parts = partition_simple(lb, ub, step, n);
        let mut seen = std::collections::BTreeSet::new();
        for chunks in &parts {
            for c in chunks {
                let mut i = c.lb;
                while i <= c.ub {
                    prop_assert!(seen.insert(i), "duplicate iteration {}", i);
                    i += c.step;
                }
            }
        }
        let mut expect = std::collections::BTreeSet::new();
        let mut i = lb;
        while i <= ub {
            expect.insert(i);
            i += step;
        }
        prop_assert_eq!(seen, expect);
    }

    /// Interleaved scheduling covers every iteration exactly once.
    #[test]
    fn interleave_schedule_exact_cover(
        len in 0i64..100,
        n in 1usize..9,
        k in 1u64..9,
    ) {
        let parts = partition_interleave(1, len, 1, n, k);
        let total: u64 = parts.iter().flatten().map(|c| c.len()).sum();
        prop_assert_eq!(total as i64, len.max(0));
    }

    /// Affinity scheduling covers every iteration exactly once and agrees
    /// with element ownership for in-range elements.
    #[test]
    fn affinity_schedule_cover_and_ownership(
        n in 1u64..120,
        d in prop_oneof![Just(Dist::Block), (1u64..5).prop_map(Dist::Cyclic)],
        nprocs in 1usize..9,
        scale in 1i64..4,
        offset in -3i64..4,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        // Loop range chosen so most elements are in range.
        let lb = 1i64;
        let ub = (n as i64 - offset) / scale;
        prop_assume!(ub >= lb);
        let parts = partition_affinity(lb, ub, 1, &desc.dims[0], scale, offset);
        let mut count = 0u64;
        for (coord, chunks) in parts.iter().enumerate() {
            for c in chunks {
                let mut i = c.lb;
                while i <= c.ub {
                    count += 1;
                    let elem = scale * i + offset;
                    if elem >= 1 && elem <= n as i64 {
                        prop_assert_eq!(
                            desc.dims[0].owner((elem - 1) as u64) as usize,
                            coord,
                            "iteration {} scheduled off its element's owner", i
                        );
                    }
                    i += 1;
                }
            }
        }
        prop_assert_eq!(count as i64, ub - lb + 1);
    }
}

/// Build a distributed array on a fresh machine, ready to redistribute.
fn redist_fixture(extent: u64, dist: Dist, nprocs: usize) -> (Machine, PoolSet, RtArray) {
    let mut m = Machine::new(MachineConfig::small_test(nprocs));
    let mut pools = PoolSet::new(nprocs, 4096);
    let a = RtArray::instantiate(
        &mut m,
        &mut pools,
        "a",
        &[extent],
        Some(&Distribution::new(vec![dist])),
        DistKind::Regular,
        nprocs,
    );
    (m, pools, a)
}

proptest! {
    /// A redistribution schedule moves each page at most once, and within
    /// every round no node sources or sinks more pages than the fan
    /// bound allows.
    #[test]
    fn schedule_moves_each_page_once_within_fan_bounds(
        extent in 64u64..4096,
        d0 in prop_oneof![Just(Dist::Block), (1u64..65).prop_map(Dist::Cyclic)],
        d1 in prop_oneof![Just(Dist::Block), (1u64..65).prop_map(Dist::Cyclic)],
        nprocs in 1usize..9,
        fan in 1usize..4,
    ) {
        let (m, _pools, mut a) = redist_fixture(extent, d0, nprocs);
        a.desc = DistDescriptor::new(&[extent], &Distribution::new(vec![d1]), nprocs);
        let ArrayLayout::Contiguous { base } = a.layout else { unreachable!() };
        let sched = plan_schedule(
            &m,
            base,
            extent * a.elem_bytes,
            &a.desc,
            a.elem_bytes,
            fan,
        );
        prop_assert_eq!(sched.fan, fan);
        let mut seen = std::collections::HashSet::new();
        let n_nodes = m.config().n_nodes;
        for round in &sched.rounds {
            let mut fan_out = vec![0usize; n_nodes];
            let mut fan_in = vec![0usize; n_nodes];
            for mv in round {
                prop_assert!(seen.insert(mv.vpage), "page {} moved twice", mv.vpage);
                fan_out[mv.from.0] += 1;
                fan_in[mv.to.0] += 1;
            }
            prop_assert!(fan_out.iter().all(|&c| c <= fan), "fan-out bound exceeded");
            prop_assert!(fan_in.iter().all(|&c| c <= fan), "fan-in bound exceeded");
        }
        prop_assert!(seen.len() as u64 <= sched.pages_scanned);
    }

    /// The scheduled mover leaves every page on exactly the node the
    /// naive per-page walker would choose, for any block/cyclic(k) →
    /// block/cyclic(k′) conversion, and the node page census matches.
    #[test]
    fn scheduled_and_naive_movers_agree_on_final_homes(
        extent in 64u64..4096,
        d0 in prop_oneof![Just(Dist::Block), (1u64..65).prop_map(Dist::Cyclic)],
        d1 in prop_oneof![Just(Dist::Block), (1u64..65).prop_map(Dist::Cyclic)],
        nprocs in 1usize..9,
    ) {
        let (mut m_s, _p_s, mut a_s) = redist_fixture(extent, d0, nprocs);
        let (mut m_n, _p_n, mut a_n) = redist_fixture(extent, d0, nprocs);
        let dist = Distribution::new(vec![d1]);
        a_s.redistribute_scheduled(&mut m_s, ProcId(0), &dist, nprocs).unwrap();
        a_n.redistribute(&mut m_n, ProcId(0), &dist, nprocs).unwrap();
        for i in 0..extent {
            prop_assert_eq!(
                m_s.home_of(a_s.addr_of(&[i])),
                m_n.home_of(a_n.addr_of(&[i])),
                "element {} home diverges between movers", i
            );
        }
        prop_assert_eq!(m_s.pages_per_node(), m_n.pages_per_node());
    }

    /// Team resizing moves only delta pages and both movers land the
    /// same homes; an immediate resize back restores every page to a
    /// home of the original chunking.
    #[test]
    fn resize_team_delta_only_and_mover_agreement(
        extent in 64u64..4096,
        d0 in prop_oneof![Just(Dist::Block), (1u64..65).prop_map(Dist::Cyclic)],
        nprocs in 1usize..9,
        new_team in 1usize..9,
    ) {
        let (mut m_s, _p_s, mut a_s) = redist_fixture(extent, d0, nprocs);
        let (mut m_n, _p_n, mut a_n) = redist_fixture(extent, d0, nprocs);
        let sched_moved = a_s.resize_team(&mut m_s, ProcId(0), new_team, true).unwrap();
        let naive_moved = a_n.resize_team(&mut m_n, ProcId(0), new_team, false).unwrap();
        // The naive mover remaps the full page span; the scheduler only
        // the delta.
        prop_assert!(sched_moved <= naive_moved);
        for i in 0..extent {
            prop_assert_eq!(
                m_s.home_of(a_s.addr_of(&[i])),
                m_n.home_of(a_n.addr_of(&[i])),
                "element {} home diverges after resize", i
            );
        }
        prop_assert_eq!(m_s.pages_per_node(), m_n.pages_per_node());
        // Round trip: resizing back to the original team is delta-only
        // as well and restores the original chunk owners.
        let reference = {
            let (mut m_r, _p_r, mut a_r) = redist_fixture(extent, d0, nprocs);
            a_r.resize_team(&mut m_r, ProcId(0), nprocs, true).unwrap();
            (0..extent).map(|i| m_r.home_of(a_r.addr_of(&[i]))).collect::<Vec<_>>()
        };
        a_s.resize_team(&mut m_s, ProcId(0), nprocs, true).unwrap();
        for (i, want) in reference.iter().enumerate() {
            prop_assert_eq!(
                &m_s.home_of(a_s.addr_of(&[i as u64])), want,
                "element {} not restored by the round trip", i
            );
        }
    }
}
