//! Property-based tests of the distribution runtime's core invariants.

use dsm_ir::{Dist, Distribution};
use dsm_runtime::sched::{partition_affinity, partition_interleave, partition_simple};
use dsm_runtime::DistDescriptor;
use proptest::prelude::*;

fn arb_dist() -> impl Strategy<Value = Dist> {
    prop_oneof![
        Just(Dist::Block),
        (1u64..8).prop_map(Dist::Cyclic),
        Just(Dist::Star),
    ]
}

proptest! {
    /// Every element is owned by exactly one processor, and the portion
    /// lengths sum to the array size.
    #[test]
    fn portions_partition_any_array(
        extents in prop::collection::vec(1u64..40, 1..4),
        dists in prop::collection::vec(arb_dist(), 1..4),
        nprocs in 1usize..17,
    ) {
        let rank = extents.len().min(dists.len());
        let extents = &extents[..rank];
        let dists = dists[..rank].to_vec();
        let desc = DistDescriptor::new(extents, &Distribution::new(dists), nprocs);
        let total: u64 = (0..desc.grid_size()).map(|p| desc.portion_len(p)).sum();
        prop_assert_eq!(total, desc.total_len());
    }

    /// `local_linear` is a bijection from a processor's elements onto
    /// `0..portion_len` (dense packing of reshaped portions).
    #[test]
    fn local_linear_is_dense(
        n0 in 1u64..30,
        n1 in 1u64..30,
        d0 in arb_dist(),
        d1 in arb_dist(),
        nprocs in 1usize..10,
    ) {
        let desc = DistDescriptor::new(&[n0, n1], &Distribution::new(vec![d0, d1]), nprocs);
        let mut seen = vec![std::collections::HashSet::new(); desc.grid_size()];
        for i in 0..n0 {
            for j in 0..n1 {
                let p = desc.owner_proc(&[i, j]);
                let off = desc.local_linear(&[i, j]);
                prop_assert!(off < desc.portion_len(p), "offset beyond portion");
                prop_assert!(seen[p].insert(off), "duplicate local offset");
            }
        }
        for (p, s) in seen.iter().enumerate() {
            prop_assert_eq!(s.len() as u64, desc.portion_len(p));
        }
    }

    /// Owner coordinates are always inside the processor grid.
    #[test]
    fn owners_within_grid(
        n in 1u64..200,
        d in arb_dist(),
        nprocs in 1usize..33,
        probe in 0u64..200,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        let i = probe % n;
        let p = desc.owner_proc(&[i]);
        prop_assert!(p < desc.grid_size());
    }

    /// `run_remaining` never exceeds the distance to the array end and is
    /// positive inside the array.
    #[test]
    fn run_remaining_bounds(
        n in 1u64..200,
        d in arb_dist(),
        nprocs in 1usize..9,
        probe in 0u64..200,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        let i = probe % n;
        let rem = desc.dims[0].run_remaining(i);
        prop_assert!(rem >= 1);
        prop_assert!(rem <= n - i);
    }

    /// Simple scheduling covers every iteration exactly once.
    #[test]
    fn simple_schedule_exact_cover(
        lb in -50i64..50,
        len in 0i64..100,
        step in 1i64..7,
        n in 1usize..9,
    ) {
        let ub = lb + len;
        let parts = partition_simple(lb, ub, step, n);
        let mut seen = std::collections::BTreeSet::new();
        for chunks in &parts {
            for c in chunks {
                let mut i = c.lb;
                while i <= c.ub {
                    prop_assert!(seen.insert(i), "duplicate iteration {}", i);
                    i += c.step;
                }
            }
        }
        let mut expect = std::collections::BTreeSet::new();
        let mut i = lb;
        while i <= ub {
            expect.insert(i);
            i += step;
        }
        prop_assert_eq!(seen, expect);
    }

    /// Interleaved scheduling covers every iteration exactly once.
    #[test]
    fn interleave_schedule_exact_cover(
        len in 0i64..100,
        n in 1usize..9,
        k in 1u64..9,
    ) {
        let parts = partition_interleave(1, len, 1, n, k);
        let total: u64 = parts.iter().flatten().map(|c| c.len()).sum();
        prop_assert_eq!(total as i64, len.max(0));
    }

    /// Affinity scheduling covers every iteration exactly once and agrees
    /// with element ownership for in-range elements.
    #[test]
    fn affinity_schedule_cover_and_ownership(
        n in 1u64..120,
        d in prop_oneof![Just(Dist::Block), (1u64..5).prop_map(Dist::Cyclic)],
        nprocs in 1usize..9,
        scale in 1i64..4,
        offset in -3i64..4,
    ) {
        let desc = DistDescriptor::new(&[n], &Distribution::new(vec![d]), nprocs);
        // Loop range chosen so most elements are in range.
        let lb = 1i64;
        let ub = (n as i64 - offset) / scale;
        prop_assume!(ub >= lb);
        let parts = partition_affinity(lb, ub, 1, &desc.dims[0], scale, offset);
        let mut count = 0u64;
        for (coord, chunks) in parts.iter().enumerate() {
            for c in chunks {
                let mut i = c.lb;
                while i <= c.ub {
                    count += 1;
                    let elem = scale * i + offset;
                    if elem >= 1 && elem <= n as i64 {
                        prop_assert_eq!(
                            desc.dims[0].owner((elem - 1) as u64) as usize,
                            coord,
                            "iteration {} scheduled off its element's owner", i
                        );
                    }
                    i += 1;
                }
            }
        }
        prop_assert_eq!(count as i64, ub - lb + 1);
    }
}
