//! Iteration scheduling for `doacross` loops.
//!
//! Implements the `schedtype` policies of the MIPSpro directives plus
//! runtime affinity scheduling — the fallback used when the compiler has
//! not lowered an `affinity` clause into Figure-2 processor-tile loops.

use dsm_ir::{Distribution, SchedType};

use crate::descriptor::{DimDesc, DistDescriptor};

/// A contiguous run of iterations `lb, lb+step, …, ≤ ub` (Fortran
/// inclusive bounds). Empty when `ub < lb` for positive step, and when
/// `lb < ub` for negative step (the bounds are in iteration order, so a
/// downward chunk has `lb >= ub`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration value.
    pub lb: i64,
    /// Last iteration value (inclusive).
    pub ub: i64,
    /// Step (non-zero).
    pub step: i64,
}

impl Chunk {
    /// Number of iterations in this chunk.
    pub fn len(&self) -> u64 {
        if self.step > 0 {
            if self.ub < self.lb {
                0
            } else {
                ((self.ub - self.lb) / self.step + 1) as u64
            }
        } else if self.lb < self.ub {
            0
        } else {
            ((self.lb - self.ub) / (-self.step) + 1) as u64
        }
    }

    /// True when the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Grid axis a proc-tile member reads its coordinate from.
///
/// The compiler bakes `grid_dim` — the rank of the tiled dimension among
/// the affinity array's distributed dimensions — into
/// [`SchedType::ProcTile`] under the array's *declared* distribution. A
/// `c$redistribute` or `c$resize_team` executed before the loop can move
/// that dimension to a different grid axis (or collapse/grow the grid),
/// so the axis must be re-resolved before use: recover the array
/// dimension `grid_dim` named under `decl`, then find that dimension's
/// rank among the dimensions the *live* descriptor actually distributes.
/// When the dimension is no longer distributed (its Figure-2 tile bounds
/// then cover the full extent for coordinate 0 and are empty elsewhere),
/// fall back to the compile-time axis clamped to the live grid.
pub fn proctile_axis(desc: &DistDescriptor, decl: Option<&Distribution>, grid_dim: usize) -> usize {
    let dim = decl.and_then(|d| {
        d.dims
            .iter()
            .enumerate()
            .filter(|(_, x)| x.is_distributed())
            .nth(grid_dim)
            .map(|(i, _)| i)
    });
    dim.and_then(|d| desc.distributed.iter().position(|&dd| dd == d))
        .unwrap_or_else(|| grid_dim.min(desc.grid.len().saturating_sub(1)))
}

/// Partition `lb..=ub:step` across `n` workers under `sched`.
///
/// Returns one chunk list per worker. [`SchedType::RuntimeAffinity`] and
/// [`SchedType::ProcTile`] cannot be partitioned here (they need a
/// distribution descriptor / are handled by the executor) — use
/// [`partition_affinity`] for the former.
///
/// # Panics
///
/// Panics if `step == 0`, `n == 0`, or `sched` is an affinity/proc-tile
/// policy.
pub fn partition(sched: SchedType, lb: i64, ub: i64, step: i64, n: usize) -> Vec<Vec<Chunk>> {
    assert!(step != 0, "zero loop step");
    assert!(n > 0, "no workers");
    match sched {
        SchedType::Simple => partition_simple(lb, ub, step, n),
        SchedType::Interleave(k) | SchedType::Dynamic(k) => {
            partition_interleave(lb, ub, step, n, k.max(1))
        }
        SchedType::RuntimeAffinity | SchedType::ProcTile { .. } => {
            panic!("affinity/proc-tile schedules need a distribution descriptor")
        }
    }
}

/// Fault-injection switch for the conformance harness: when the
/// `DSM_INJECT_CHUNK_BUG` environment variable is set at process start,
/// [`partition_simple`] drops the last iteration of every non-final chunk
/// (an off-by-one chunk bound). `dsmfuzz` runs itself under this variable
/// to prove the differential oracle catches and shrinks real scheduler
/// bugs; nothing in the workspace sets it otherwise.
fn inject_chunk_bug() -> bool {
    static BUG: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *BUG.get_or_init(|| std::env::var_os("DSM_INJECT_CHUNK_BUG").is_some())
}

/// `simple` scheduling: `n` contiguous chunks of `ceil(N/n)` iterations.
pub fn partition_simple(lb: i64, ub: i64, step: i64, n: usize) -> Vec<Vec<Chunk>> {
    let total = Chunk { lb, ub, step }.len();
    let per = total.div_ceil(n as u64).max(1);
    (0..n as u64)
        .map(|w| {
            let first = w * per;
            if first >= total {
                return Vec::new();
            }
            let mut last = ((w + 1) * per - 1).min(total - 1);
            if inject_chunk_bug() && last > first && last < total - 1 {
                last -= 1;
            }
            vec![Chunk {
                lb: lb + first as i64 * step,
                ub: lb + last as i64 * step,
                step,
            }]
        })
        .collect()
}

/// `interleave(k)` scheduling: chunks of `k` iterations dealt round-robin.
pub fn partition_interleave(lb: i64, ub: i64, step: i64, n: usize, k: u64) -> Vec<Vec<Chunk>> {
    let total = Chunk { lb, ub, step }.len();
    let mut out = vec![Vec::new(); n];
    let mut start = 0u64;
    let mut w = 0usize;
    while start < total {
        let end = (start + k - 1).min(total - 1);
        out[w].push(Chunk {
            lb: lb + start as i64 * step,
            ub: lb + end as i64 * step,
            step,
        });
        start += k;
        w = (w + 1) % n;
    }
    out
}

/// Runtime affinity scheduling (`affinity(i) = data(A(scale*i+offset))`):
/// iteration `i` is assigned to the *grid coordinate* owning element
/// `scale*i + offset` (1-based) of the distributed dimension `dim`.
///
/// Returns one chunk list per coordinate `0..dim.nprocs`. Iterations whose
/// affinity element falls outside the array are clamped to the nearest
/// coordinate (matching the permissive behaviour of the real runtime).
pub fn partition_affinity(
    lb: i64,
    ub: i64,
    step: i64,
    dim: &DimDesc,
    scale: i64,
    offset: i64,
) -> Vec<Vec<Chunk>> {
    assert!(step != 0, "zero loop step");
    let ncoords = dim.nprocs as usize;
    let mut out = vec![Vec::new(); ncoords];
    let mut cur: Option<(u64, Chunk)> = None;
    let mut i = lb;
    loop {
        if (step > 0 && i > ub) || (step < 0 && i < ub) {
            break;
        }
        let elem1 = scale * i + offset; // 1-based element index
        let elem0 = (elem1 - 1).clamp(0, dim.extent as i64 - 1) as u64;
        let coord = dim.owner(elem0);
        match &mut cur {
            Some((c, ch)) if *c == coord => ch.ub = i,
            _ => {
                if let Some((c, ch)) = cur.take() {
                    out[c as usize].push(ch);
                }
                cur = Some((coord, Chunk { lb: i, ub: i, step }));
            }
        }
        i += step;
    }
    if let Some((c, ch)) = cur {
        out[c as usize].push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_ir::{Dist, Distribution};

    use crate::descriptor::DistDescriptor;

    fn coverage(parts: &[Vec<Chunk>], lb: i64, ub: i64, step: i64) {
        let mut seen = std::collections::BTreeSet::new();
        for chunks in parts {
            for c in chunks {
                let mut i = c.lb;
                while (c.step > 0 && i <= c.ub) || (c.step < 0 && i >= c.ub) {
                    assert!(seen.insert(i), "iteration {i} assigned twice");
                    i += c.step;
                }
            }
        }
        let expect: std::collections::BTreeSet<i64> = {
            let mut s = std::collections::BTreeSet::new();
            let mut i = lb;
            while (step > 0 && i <= ub) || (step < 0 && i >= ub) {
                s.insert(i);
                i += step;
            }
            s
        };
        assert_eq!(seen, expect, "iterations lost or invented");
    }

    #[test]
    fn chunk_len_cases() {
        assert_eq!(
            Chunk {
                lb: 1,
                ub: 10,
                step: 1
            }
            .len(),
            10
        );
        assert_eq!(
            Chunk {
                lb: 1,
                ub: 10,
                step: 3
            }
            .len(),
            4
        );
        assert_eq!(
            Chunk {
                lb: 10,
                ub: 1,
                step: -2
            }
            .len(),
            5
        );
        assert!(Chunk {
            lb: 5,
            ub: 4,
            step: 1
        }
        .is_empty());
    }

    #[test]
    fn chunk_len_negative_step() {
        // Downward chunks run lb, lb+step, …, ≥ ub.
        assert_eq!(
            Chunk {
                lb: 9,
                ub: 1,
                step: -4
            }
            .len(),
            3
        ); // 9, 5, 1
        assert_eq!(
            Chunk {
                lb: 0,
                ub: -10,
                step: -3
            }
            .len(),
            4
        ); // 0, -3, -6, -9
           // `lb < ub` with negative step is empty (iteration-order bounds).
        assert!(Chunk {
            lb: 1,
            ub: 10,
            step: -1
        }
        .is_empty());
        assert_eq!(
            Chunk {
                lb: 1,
                ub: 10,
                step: -1
            }
            .len(),
            0
        );
    }

    #[test]
    fn chunk_len_single_iteration() {
        assert_eq!(
            Chunk {
                lb: 7,
                ub: 7,
                step: 1
            }
            .len(),
            1
        );
        assert_eq!(
            Chunk {
                lb: 7,
                ub: 7,
                step: -3
            }
            .len(),
            1
        );
        // Step overshoots ub: only lb executes.
        assert_eq!(
            Chunk {
                lb: 1,
                ub: 4,
                step: 10
            }
            .len(),
            1
        );
        assert_eq!(
            Chunk {
                lb: 4,
                ub: 1,
                step: -10
            }
            .len(),
            1
        );
    }

    #[test]
    fn simple_covers_exactly() {
        for n in [1, 2, 3, 5, 8] {
            let p = partition(SchedType::Simple, 1, 20, 1, n);
            assert_eq!(p.len(), n);
            coverage(&p, 1, 20, 1);
        }
    }

    #[test]
    fn simple_is_blockwise() {
        let p = partition(SchedType::Simple, 1, 100, 1, 4);
        assert_eq!(
            p[0],
            vec![Chunk {
                lb: 1,
                ub: 25,
                step: 1
            }]
        );
        assert_eq!(
            p[3],
            vec![Chunk {
                lb: 76,
                ub: 100,
                step: 1
            }]
        );
    }

    #[test]
    fn simple_more_workers_than_iterations() {
        let p = partition(SchedType::Simple, 1, 3, 1, 8);
        coverage(&p, 1, 3, 1);
        assert!(p[7].is_empty());
    }

    #[test]
    fn simple_with_stride_and_negative() {
        let p = partition(SchedType::Simple, 1, 19, 3, 2);
        coverage(&p, 1, 19, 3);
        let p = partition(SchedType::Simple, 10, 1, -1, 3);
        coverage(&p, 10, 1, -1);
    }

    #[test]
    fn interleave_deals_round_robin() {
        let p = partition(SchedType::Interleave(2), 1, 8, 1, 2);
        coverage(&p, 1, 8, 1);
        assert_eq!(
            p[0],
            vec![
                Chunk {
                    lb: 1,
                    ub: 2,
                    step: 1
                },
                Chunk {
                    lb: 5,
                    ub: 6,
                    step: 1
                }
            ]
        );
        assert_eq!(
            p[1],
            vec![
                Chunk {
                    lb: 3,
                    ub: 4,
                    step: 1
                },
                Chunk {
                    lb: 7,
                    ub: 8,
                    step: 1
                }
            ]
        );
    }

    #[test]
    fn dynamic_behaves_like_interleave_deterministically() {
        let a = partition(SchedType::Dynamic(3), 1, 17, 1, 4);
        let b = partition(SchedType::Interleave(3), 1, 17, 1, 4);
        assert_eq!(a, b);
        coverage(&a, 1, 17, 1);
    }

    #[test]
    fn affinity_block_matches_ownership() {
        let desc = DistDescriptor::new(&[100], &Distribution::new(vec![Dist::Block]), 4);
        let p = partition_affinity(1, 100, 1, &desc.dims[0], 1, 0);
        coverage(&p, 1, 100, 1);
        // b = 25: coordinate 0 gets iterations 1..=25 (elements 1..=25).
        assert_eq!(
            p[0],
            vec![Chunk {
                lb: 1,
                ub: 25,
                step: 1
            }]
        );
        assert_eq!(
            p[3],
            vec![Chunk {
                lb: 76,
                ub: 100,
                step: 1
            }]
        );
    }

    #[test]
    fn affinity_cyclic_produces_interleaved_chunks() {
        let desc = DistDescriptor::new(&[12], &Distribution::new(vec![Dist::Cyclic(1)]), 3);
        let p = partition_affinity(1, 12, 1, &desc.dims[0], 1, 0);
        coverage(&p, 1, 12, 1);
        assert_eq!(p[0].len(), 4, "cyclic over 3 procs: every third iteration");
        assert!(p[0].iter().all(|c| c.len() == 1));
    }

    #[test]
    fn affinity_with_scale_and_offset() {
        // affinity(i) = data(A(2*i + 1)), A(100) block over 2 procs, b=50.
        let desc = DistDescriptor::new(&[100], &Distribution::new(vec![Dist::Block]), 2);
        let p = partition_affinity(1, 40, 1, &desc.dims[0], 2, 1);
        coverage(&p, 1, 40, 1);
        // Element 2i+1 <= 50  =>  i <= 24 goes to coord 0.
        assert_eq!(
            p[0],
            vec![Chunk {
                lb: 1,
                ub: 24,
                step: 1
            }]
        );
        assert_eq!(
            p[1],
            vec![Chunk {
                lb: 25,
                ub: 40,
                step: 1
            }]
        );
    }

    #[test]
    fn affinity_clamps_out_of_range_elements() {
        let desc = DistDescriptor::new(&[10], &Distribution::new(vec![Dist::Block]), 2);
        // Elements 11..20 are out of range; clamp to the last coordinate.
        let p = partition_affinity(1, 20, 1, &desc.dims[0], 1, 0);
        coverage(&p, 1, 20, 1);
        assert!(p[1].iter().any(|c| c.ub == 20));
    }

    #[test]
    #[should_panic(expected = "zero loop step")]
    fn zero_step_rejected() {
        let _ = partition(SchedType::Simple, 1, 10, 0, 2);
    }
}
