//! Portion-traversal intrinsics.
//!
//! The paper (Section 3.2.1) points to "a rich set of intrinsics for
//! traversing the individual portions of a distributed array" \[SGI96\].
//! These are the query functions programs (and our examples) use to walk
//! their own portion of a distributed array: the MIPSpro runtime exposes
//! them as `dsm_numthreads`, `dsm_this_startingindex`, `dsm_this_size`,
//! `dsm_distribution_block` and friends; we expose the equivalent
//! operations over a [`DistDescriptor`].

use dsm_ir::Dist;

use crate::descriptor::DistDescriptor;

/// Number of processors assigned to dimension `dim` of the array
/// (`dsm_numthreads`). 1 for undistributed dimensions.
pub fn numthreads(desc: &DistDescriptor, dim: usize) -> u64 {
    desc.dims[dim].nprocs
}

/// Distribution format of dimension `dim` (`dsm_distribution_*`).
pub fn distribution(desc: &DistDescriptor, dim: usize) -> Dist {
    desc.dims[dim].dist
}

/// 1-based starting index of the `n`-th contiguous run owned by grid
/// coordinate `coord` along `dim` (`dsm_this_startingindex`), or `None`
/// when no such run exists.
pub fn this_starting_index(desc: &DistDescriptor, dim: usize, coord: u64, n: u64) -> Option<i64> {
    desc.dims[dim].run(coord, n).map(|(s, _)| s as i64 + 1)
}

/// Length of the `n`-th contiguous run owned by `coord` along `dim`
/// (`dsm_this_size`).
pub fn this_size(desc: &DistDescriptor, dim: usize, coord: u64, n: u64) -> Option<u64> {
    desc.dims[dim].run(coord, n).map(|(s, e)| e - s)
}

/// Total number of elements owned by `coord` along `dim`.
pub fn portion_total(desc: &DistDescriptor, dim: usize, coord: u64) -> u64 {
    desc.dims[dim].portion_extent(coord)
}

/// 1-based (inclusive) index range of `coord`'s single block for a
/// `block` distribution (`dsm_this_blocksize` companion).
///
/// # Panics
///
/// Panics if `dim` is not block-distributed.
pub fn block_bounds(desc: &DistDescriptor, dim: usize, coord: u64) -> (i64, i64) {
    let d = &desc.dims[dim];
    assert_eq!(d.dist, Dist::Block, "block_bounds on non-block dimension");
    let (s, e) = d.run(coord, 0).unwrap_or((0, 0));
    (s as i64 + 1, e as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_ir::Distribution;

    fn desc() -> DistDescriptor {
        DistDescriptor::new(&[100], &Distribution::new(vec![Dist::Block]), 4)
    }

    #[test]
    fn numthreads_and_distribution() {
        let d = desc();
        assert_eq!(numthreads(&d, 0), 4);
        assert_eq!(distribution(&d, 0), Dist::Block);
    }

    #[test]
    fn block_runs_and_bounds() {
        let d = desc();
        assert_eq!(this_starting_index(&d, 0, 0, 0), Some(1));
        assert_eq!(this_size(&d, 0, 0, 0), Some(25));
        assert_eq!(this_starting_index(&d, 0, 0, 1), None, "block has one run");
        assert_eq!(block_bounds(&d, 0, 2), (51, 75));
        assert_eq!(portion_total(&d, 0, 3), 25);
    }

    #[test]
    fn cyclic_runs_walk_the_portion() {
        let d = DistDescriptor::new(&[20], &Distribution::new(vec![Dist::Cyclic(3)]), 2);
        // coord 0 owns [0,3), [6,9), [12,15), [18,20).
        assert_eq!(this_starting_index(&d, 0, 0, 0), Some(1));
        assert_eq!(this_starting_index(&d, 0, 0, 1), Some(7));
        assert_eq!(
            this_size(&d, 0, 0, 3),
            Some(2),
            "tail run truncated by extent"
        );
        assert_eq!(this_starting_index(&d, 0, 0, 4), None);
        let total: u64 = (0..4).filter_map(|n| this_size(&d, 0, 0, n)).sum();
        assert_eq!(total, portion_total(&d, 0, 0));
    }

    #[test]
    #[should_panic(expected = "non-block")]
    fn block_bounds_rejects_cyclic() {
        let d = DistDescriptor::new(&[20], &Distribution::new(vec![Dist::Cyclic(1)]), 2);
        let _ = block_bounds(&d, 0, 0);
    }
}
