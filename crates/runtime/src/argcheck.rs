//! Runtime argument-consistency checks for reshaped arrays (Section 6).
//!
//! At every call that passes a reshaped array (or an element of one) the
//! generated code inserts the actual's address into a hash table together
//! with its shape information; on subroutine entry, each array formal's
//! incoming address is looked up, and a mismatch between the stored
//! information and the declared formal raises a runtime error — the
//! paper's defence against errors that are "otherwise extremely difficult
//! to detect, since they are not easily distinguished from other
//! algorithmic or coding errors".

use std::collections::HashMap;

use dsm_machine::VAddr;

/// What was passed at the call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgInfo {
    /// The whole reshaped array: shape and size must match the formal
    /// exactly (Section 3.2.1, first rule).
    WholeArray {
        /// Array name (for diagnostics).
        name: String,
        /// Declared extents.
        shape: Vec<u64>,
    },
    /// An element of a reshaped array, i.e. the containing portion: the
    /// formal may declare at most `portion_len` elements.
    Portion {
        /// Array name (for diagnostics).
        name: String,
        /// Elements from the passed address to the end of the portion.
        portion_len: u64,
    },
}

/// A failed runtime check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgCheckError {
    /// Callee subroutine.
    pub callee: String,
    /// Formal parameter position (0-based).
    pub position: usize,
    /// Description of the mismatch.
    pub msg: String,
}

impl std::fmt::Display for ArgCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "runtime check failed in `{}`, argument {}: {}",
            self.callee,
            self.position + 1,
            self.msg
        )
    }
}

impl std::error::Error for ArgCheckError {}

/// The runtime hash table of live reshaped actuals.
///
/// Entries are pushed at calls and popped on return; recursive calls that
/// pass the same address nest correctly because entries stack.
#[derive(Debug, Default)]
pub struct ArgChecker {
    table: HashMap<VAddr, Vec<ArgInfo>>,
    lookups: u64,
    inserts: u64,
}

impl ArgChecker {
    /// An empty checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `info` was passed with base address `addr`.
    pub fn register(&mut self, addr: VAddr, info: ArgInfo) {
        self.inserts += 1;
        self.table.entry(addr).or_default().push(info);
    }

    /// Remove the most recent registration for `addr` (subroutine return).
    pub fn unregister(&mut self, addr: VAddr) {
        if let Some(v) = self.table.get_mut(&addr) {
            v.pop();
            if v.is_empty() {
                self.table.remove(&addr);
            }
        }
    }

    /// Validate a formal array parameter of `callee` at `position` that
    /// arrived with base address `addr` and declared extents `declared`.
    ///
    /// Addresses with no entry pass trivially (the actual was not a
    /// reshaped array — an ordinary Fortran argument).
    ///
    /// # Errors
    ///
    /// Returns an [`ArgCheckError`] describing a rank/extent mismatch for
    /// whole arrays, or a formal larger than the passed portion.
    pub fn check_formal(
        &mut self,
        callee: &str,
        position: usize,
        addr: VAddr,
        declared: &[u64],
    ) -> Result<(), ArgCheckError> {
        self.lookups += 1;
        let Some(info) = self.table.get(&addr).and_then(|v| v.last()) else {
            return Ok(());
        };
        match info {
            ArgInfo::WholeArray { name, shape } => {
                if shape.len() != declared.len() {
                    return Err(ArgCheckError {
                        callee: callee.into(),
                        position,
                        msg: format!(
                            "reshaped array `{name}` has rank {}, formal declares rank {}",
                            shape.len(),
                            declared.len()
                        ),
                    });
                }
                if shape != declared {
                    return Err(ArgCheckError {
                        callee: callee.into(),
                        position,
                        msg: format!(
                            "reshaped array `{name}` has shape {shape:?}, formal declares {declared:?}"
                        ),
                    });
                }
                Ok(())
            }
            ArgInfo::Portion { name, portion_len } => {
                let formal_len: u64 = declared.iter().product();
                if formal_len > *portion_len {
                    return Err(ArgCheckError {
                        callee: callee.into(),
                        position,
                        msg: format!(
                            "formal declares {formal_len} elements but the passed portion of \
                             reshaped array `{name}` holds only {portion_len}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// (hash-table inserts, lookups) — the overhead the paper accounts for.
    pub fn stats(&self) -> (u64, u64) {
        (self.inserts, self.lookups)
    }

    /// Number of live entries (should be zero between top-level calls).
    pub fn live(&self) -> usize {
        self.table.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_address_passes() {
        let mut c = ArgChecker::new();
        assert!(c.check_formal("sub", 0, 0x1000, &[5]).is_ok());
    }

    #[test]
    fn whole_array_exact_match_required() {
        let mut c = ArgChecker::new();
        c.register(
            0x1000,
            ArgInfo::WholeArray {
                name: "a".into(),
                shape: vec![10, 20],
            },
        );
        assert!(c.check_formal("sub", 0, 0x1000, &[10, 20]).is_ok());
        let err = c.check_formal("sub", 0, 0x1000, &[20, 10]).unwrap_err();
        assert!(err.msg.contains("shape"), "{err}");
        let err = c.check_formal("sub", 0, 0x1000, &[200]).unwrap_err();
        assert!(err.msg.contains("rank"), "{err}");
    }

    #[test]
    fn portion_bounds_formal_size() {
        let mut c = ArgChecker::new();
        // The paper's example: A(1000) cyclic(5); call mysub(A(i)) passes a
        // 5-element portion; X may declare at most 5 elements.
        c.register(
            0x2000,
            ArgInfo::Portion {
                name: "a".into(),
                portion_len: 5,
            },
        );
        assert!(c.check_formal("mysub", 0, 0x2000, &[5]).is_ok());
        assert!(c.check_formal("mysub", 0, 0x2000, &[3]).is_ok());
        let err = c.check_formal("mysub", 0, 0x2000, &[6]).unwrap_err();
        assert!(err.msg.contains("portion"), "{err}");
    }

    #[test]
    fn unregister_restores_innocence() {
        let mut c = ArgChecker::new();
        c.register(
            0x3000,
            ArgInfo::Portion {
                name: "a".into(),
                portion_len: 1,
            },
        );
        assert!(c.check_formal("s", 0, 0x3000, &[9]).is_err());
        c.unregister(0x3000);
        assert!(c.check_formal("s", 0, 0x3000, &[9]).is_ok());
        assert_eq!(c.live(), 0);
    }

    #[test]
    fn entries_stack_for_recursion() {
        let mut c = ArgChecker::new();
        c.register(
            0x4000,
            ArgInfo::Portion {
                name: "a".into(),
                portion_len: 10,
            },
        );
        c.register(
            0x4000,
            ArgInfo::Portion {
                name: "a".into(),
                portion_len: 4,
            },
        );
        // Innermost registration wins.
        assert!(c.check_formal("s", 0, 0x4000, &[5]).is_err());
        c.unregister(0x4000);
        assert!(c.check_formal("s", 0, 0x4000, &[5]).is_ok());
    }

    #[test]
    fn stats_count_traffic() {
        let mut c = ArgChecker::new();
        c.register(
            1,
            ArgInfo::Portion {
                name: "a".into(),
                portion_len: 1,
            },
        );
        let _ = c.check_formal("s", 0, 1, &[1]);
        let _ = c.check_formal("s", 0, 2, &[1]);
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ArgCheckError {
            callee: "mysub".into(),
            position: 1,
            msg: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("mysub") && s.contains("argument 2") && s.contains("boom"));
    }
}
