//! Scheduler-side epoch boundaries for the reactive page-migration
//! daemon.
//!
//! The machine's migration engine ([`Machine::migration_epoch`]) only
//! runs with the whole machine in hand — team shards merely bump the
//! lock-free reference counters while they execute.  The natural
//! whole-machine moments during a parallel program are the `doacross`
//! join points, so the scheduler owns the cadence: an [`EpochClock`]
//! decides which joins are epoch boundaries, and [`join_epoch`] fires
//! the daemon there (after the team's invalidation mail has drained).
//!
//! Serial stretches between regions are covered independently by the
//! machine's own access-count epochs
//! (`MachineConfig::migration_epoch`).

use dsm_machine::Machine;

/// Counts team joins and marks every `every`-th one as a migration
/// epoch boundary.
#[derive(Debug, Clone)]
pub struct EpochClock {
    every: u32,
    joins: u32,
}

impl EpochClock {
    /// An epoch boundary every `every` joins (`0` is treated as `1`:
    /// every join is a boundary — the default cadence).
    pub fn new(every: u32) -> Self {
        EpochClock {
            every: every.max(1),
            joins: 0,
        }
    }

    /// Record one join; `true` when it closes an epoch.
    pub fn tick(&mut self) -> bool {
        self.joins += 1;
        if self.joins >= self.every {
            self.joins = 0;
            true
        } else {
            false
        }
    }
}

impl Default for EpochClock {
    fn default() -> Self {
        EpochClock::new(1)
    }
}

/// Team-join hook: advance `clock` and run a migration epoch on the
/// boundary. Call after the join barrier has drained invalidation mail,
/// so the daemon sees settled directory state. A no-op machine-side
/// when migration is off.
pub fn join_epoch(m: &mut Machine, clock: &mut EpochClock) {
    if clock.tick() {
        m.migration_epoch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_machine::{AccessKind, MachineConfig, MigrationPolicy, ProcId};

    #[test]
    fn clock_ticks_every_nth_join() {
        let mut c = EpochClock::new(3);
        assert!(!c.tick());
        assert!(!c.tick());
        assert!(c.tick());
        assert!(!c.tick());
        let mut every = EpochClock::default();
        assert!(every.tick());
        assert!(every.tick());
    }

    #[test]
    fn join_epoch_drives_the_daemon() {
        let mut cfg = MachineConfig::small_test(4);
        cfg.migration = MigrationPolicy::threshold(4);
        // Keep the serial access-count epoch out of the way: this test
        // exercises the join-driven path only.
        cfg.migration_epoch = u64::MAX;
        cfg.l2 = dsm_machine::CacheConfig::new(256, 64, 2);
        cfg.l1 = dsm_machine::CacheConfig::new(128, 32, 2);
        let mut m = Machine::new(cfg);
        let a = m.alloc_pages(1024);
        // First touch on node 0 (explicit placement would pin the page
        // against the daemon).
        for off in (0..1024).step_by(64) {
            m.access(ProcId(0), a + off, AccessKind::Read);
        }
        for _ in 0..8 {
            for off in (0..1024).step_by(64) {
                m.access(ProcId(2), a + off, AccessKind::Read);
            }
        }
        assert_eq!(m.migrations(), 0, "no epoch boundary yet");
        let mut clock = EpochClock::default();
        join_epoch(&mut m, &mut clock);
        assert!(m.migrations() >= 1, "join boundary must run the daemon");
    }
}
