//! Array storage layouts: regular (contiguous) vs reshaped.
//!
//! * **Regular** (`c$distribute`, Section 4.2): the array keeps its
//!   standard Fortran column-major layout; the runtime only issues the
//!   page-placement system call so that each page lands on the node owning
//!   (most of) its elements.  Page-granularity false sharing is *not*
//!   avoided — that is the point of the paper's comparison.
//!
//! * **Reshaped** (`c$distribute_reshape`, Section 4.3 / Figure 3): the
//!   array becomes a *processor array* of portion pointers; each
//!   processor's portion is allocated from that processor's pool (pages
//!   local, no page padding).  The portion-pointer table is real simulated
//!   memory, so the indirect loads the compiler worries about in
//!   Section 7.2 hit the simulated cache hierarchy.

use dsm_ir::{DistKind, Distribution};
use dsm_machine::{Machine, NodeId, ProcId, VAddr};

use crate::descriptor::DistDescriptor;
use crate::pool::PoolSet;

/// Where an array's elements live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrayLayout {
    /// Standard column-major storage at `base`.
    Contiguous {
        /// First element's virtual address.
        base: VAddr,
    },
    /// Figure-3 layout: a table of per-processor portion pointers plus the
    /// portions themselves.
    Reshaped {
        /// Address of the portion-pointer table (8 bytes per grid proc).
        ptr_table: VAddr,
        /// Portion base addresses, indexed by linearized grid processor.
        portions: Vec<VAddr>,
    },
}

/// A live array instance bound to simulated storage.
#[derive(Debug, Clone)]
pub struct RtArray {
    /// Source name (diagnostics).
    pub name: String,
    /// Symbol interned in the machine ([`Machine::intern_symbol`]) for
    /// access-tag attribution.
    pub sym: u32,
    /// Resolved distribution geometry.
    pub desc: DistDescriptor,
    /// Which directive governs this array.
    pub kind: DistKind,
    /// Storage layout.
    pub layout: ArrayLayout,
    /// Bytes per element.
    pub elem_bytes: u64,
}

impl RtArray {
    /// Allocate and place an array instance.
    ///
    /// `nprocs` is the executing processor count used to resolve the
    /// distribution. Reshaped arrays draw their portions from `pools`.
    ///
    /// # Panics
    ///
    /// Panics if a distribution is supplied with mismatched rank, or if
    /// `kind` names a distribution but `dist` is `None`.
    pub fn instantiate(
        m: &mut Machine,
        pools: &mut PoolSet,
        name: &str,
        extents: &[u64],
        dist: Option<&Distribution>,
        kind: DistKind,
        nprocs: usize,
    ) -> RtArray {
        let elem_bytes = 8u64;
        let sym = m.intern_symbol(name);
        match kind {
            DistKind::None => {
                let desc = DistDescriptor::undistributed(extents);
                let bytes = (desc.total_len() * elem_bytes) as usize;
                let base = m.alloc(bytes, 8);
                RtArray {
                    name: name.into(),
                    sym,
                    desc,
                    kind,
                    layout: ArrayLayout::Contiguous { base },
                    elem_bytes,
                }
            }
            DistKind::Regular => {
                let dist = dist.expect("regular distribution requires a Distribution");
                let desc = DistDescriptor::new(extents, dist, nprocs);
                let bytes = (desc.total_len() * elem_bytes) as usize;
                let base = m.alloc_pages(bytes);
                let arr = RtArray {
                    name: name.into(),
                    sym,
                    desc,
                    kind,
                    layout: ArrayLayout::Contiguous { base },
                    elem_bytes,
                };
                arr.place_regular(m);
                arr
            }
            DistKind::Reshaped => {
                let dist = dist.expect("reshaped distribution requires a Distribution");
                let desc = DistDescriptor::new(extents, dist, nprocs);
                let gs = desc.grid_size();
                let mut portions = Vec::with_capacity(gs);
                for p in 0..gs {
                    let bytes = (desc.portion_len(p) * elem_bytes) as usize;
                    let node = node_of_grid_proc(m, p);
                    let base = pools.alloc(m, p, node, bytes.max(8));
                    portions.push(base);
                }
                let ptr_table = m.alloc(gs * 8, 8);
                for (p, &b) in portions.iter().enumerate() {
                    m.poke_i64(ptr_table + (p * 8) as u64, b as i64);
                }
                RtArray {
                    name: name.into(),
                    sym,
                    desc,
                    kind,
                    layout: ArrayLayout::Reshaped {
                        ptr_table,
                        portions,
                    },
                    elem_bytes,
                }
            }
        }
    }

    /// Virtual address of the element at 0-based `indices` (exact for both
    /// layouts; no cycles are charged here).
    pub fn addr_of(&self, indices: &[u64]) -> VAddr {
        match &self.layout {
            ArrayLayout::Contiguous { base } => {
                base + self.desc.global_linear(indices) * self.elem_bytes
            }
            ArrayLayout::Reshaped { portions, .. } => {
                let owner = self.desc.owner_proc(indices);
                portions[owner] + self.desc.local_linear(indices) * self.elem_bytes
            }
        }
    }

    /// Address of the portion-pointer slot for grid processor `p`
    /// (the target of the per-access indirect load in the raw/tiled
    /// addressing modes). `None` for contiguous layouts.
    pub fn ptr_slot_addr(&self, p: usize) -> Option<VAddr> {
        match &self.layout {
            ArrayLayout::Reshaped { ptr_table, .. } => Some(ptr_table + (p * 8) as u64),
            ArrayLayout::Contiguous { .. } => None,
        }
    }

    /// Base address of grid processor `p`'s portion (reshaped only).
    pub fn portion_base(&self, p: usize) -> Option<VAddr> {
        match &self.layout {
            ArrayLayout::Reshaped { portions, .. } => portions.get(p).copied(),
            ArrayLayout::Contiguous { .. } => None,
        }
    }

    /// Issue the placement system call for a regular distribution.
    ///
    /// Each processor's portion requests the pages its elements lie on;
    /// a page requested by several processors ends up on the node of the
    /// **last** requester (the behaviour the paper observes in
    /// Section 8.2 — for a `(block, *)` matrix whose contiguous runs are
    /// much smaller than a page, most pages land on a couple of nodes).
    /// Equivalently: each page goes to the highest-numbered processor
    /// owning any element in it.
    pub fn place_regular(&self, m: &mut Machine) {
        let ArrayLayout::Contiguous { base } = &self.layout else {
            return;
        };
        let page = m.config().page_size as u64;
        let total_bytes = self.desc.total_len() * self.elem_bytes;
        let mut off = 0;
        while off < total_bytes {
            let len = page.min(total_bytes - off);
            let owner = self.page_last_owner(off, len);
            let node = node_of_grid_proc(m, owner);
            m.place_range(base + off, len as usize, node);
            off += page;
        }
    }

    /// Highest grid processor owning any element in `[off, off+len)`
    /// bytes of the contiguous layout (the "last requester" of the page).
    fn page_last_owner(&self, off: u64, len: u64) -> usize {
        let first = off / self.elem_bytes;
        let last = (off + len - 1) / self.elem_bytes;
        let mut owner = 0;
        let mut e = first;
        while e <= last.min(self.desc.total_len().saturating_sub(1)) {
            owner = owner.max(self.desc.owner_proc(&self.delinearize(e)));
            e += 1;
        }
        owner
    }

    /// Dynamically redistribute a regular array (`c$redistribute`,
    /// Section 3.3): rebind the descriptor and remap every page, charging
    /// the remap cost to `caller`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::RuntimeError::RedistributeReshaped`] when invoked
    /// on a reshaped array — the paper forbids dynamic reshaping.
    pub fn redistribute(
        &mut self,
        m: &mut Machine,
        caller: ProcId,
        new_dist: &Distribution,
        nprocs: usize,
    ) -> Result<usize, crate::RuntimeError> {
        if self.kind == DistKind::Reshaped {
            return Err(crate::RuntimeError::RedistributeReshaped {
                array: self.name.clone(),
            });
        }
        let extents: Vec<u64> = self.desc.dims.iter().map(|d| d.extent).collect();
        self.desc = DistDescriptor::new(&extents, new_dist, nprocs);
        let ArrayLayout::Contiguous { base } = self.layout else {
            unreachable!("non-reshaped arrays are contiguous")
        };
        let page = m.config().page_size as u64;
        let total_bytes = self.desc.total_len() * self.elem_bytes;
        let desc = self.desc.clone();
        let elem_bytes = self.elem_bytes;
        let procs_per_node = m.config().procs_per_node;
        let pages = m.remap_range(caller, base, total_bytes as usize, |page_idx| {
            // Same "last requester wins" rule as initial placement.
            let off = page_idx * page;
            let first = off / elem_bytes;
            let last = ((off + page - 1).min(total_bytes - 1)) / elem_bytes;
            let mut owner = 0;
            for e in first..=last.min(desc.total_len().saturating_sub(1)) {
                let mut rest = e;
                let mut idx = Vec::with_capacity(desc.dims.len());
                for d in &desc.dims {
                    idx.push(rest % d.extent);
                    rest /= d.extent;
                }
                owner = owner.max(desc.owner_proc(&idx));
            }
            NodeId(owner / procs_per_node)
        });
        Ok(pages)
    }

    /// Inverse of the global column-major linearization.
    fn delinearize(&self, linear: u64) -> Vec<u64> {
        let mut rest = linear.min(self.desc.total_len().saturating_sub(1));
        self.desc
            .dims
            .iter()
            .map(|d| {
                let i = rest % d.extent;
                rest /= d.extent;
                i
            })
            .collect()
    }
}

/// Node hosting linearized grid processor `p` (grid processors map
/// one-to-one onto machine processors in numbering order).
pub fn node_of_grid_proc(m: &Machine, p: usize) -> NodeId {
    let p = p.min(m.nprocs() - 1);
    m.node_of(ProcId(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_ir::Dist;
    use dsm_machine::MachineConfig;

    fn setup(nprocs: usize) -> (Machine, PoolSet) {
        let m = Machine::new(MachineConfig::small_test(nprocs));
        let pools = PoolSet::new(nprocs, 4096);
        (m, pools)
    }

    #[test]
    fn plain_array_is_column_major() {
        let (mut m, mut pools) = setup(2);
        let a = RtArray::instantiate(&mut m, &mut pools, "a", &[4, 4], None, DistKind::None, 2);
        let base = a.addr_of(&[0, 0]);
        assert_eq!(a.addr_of(&[1, 0]), base + 8);
        assert_eq!(a.addr_of(&[0, 1]), base + 32);
    }

    #[test]
    fn regular_block_places_pages_by_owner() {
        let (mut m, mut pools) = setup(4); // 2 nodes, page 1024 = 128 elements
                                           // 512 elements block-distributed over 4 procs: 128 each = 1 page each.
        let dist = Distribution::new(vec![Dist::Block]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[512],
            Some(&dist),
            DistKind::Regular,
            4,
        );
        // Element 0 owned by proc 0 (node 0); element 511 by proc 3 (node 1).
        assert_eq!(m.home_of(a.addr_of(&[0])), Some(NodeId(0)));
        assert_eq!(m.home_of(a.addr_of(&[511])), Some(NodeId(1)));
    }

    #[test]
    fn regular_layout_unchanged_by_distribution() {
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[64],
            Some(&dist),
            DistKind::Regular,
            4,
        );
        let base = a.addr_of(&[0]);
        for i in 0..64u64 {
            assert_eq!(
                a.addr_of(&[i]),
                base + i * 8,
                "regular keeps column-major layout"
            );
        }
    }

    #[test]
    fn reshaped_portions_are_local_and_contiguous() {
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[100],
            Some(&dist),
            DistKind::Reshaped,
            4,
        );
        // b = 25. Each portion contiguous, placed on the owner's node.
        for p in 0..4usize {
            let first = a.addr_of(&[p as u64 * 25]);
            let last = a.addr_of(&[p as u64 * 25 + 24]);
            assert_eq!(last - first, 24 * 8, "portion {p} not contiguous");
            assert_eq!(
                m.home_of(first),
                Some(NodeId(p / 2)),
                "portion {p} on wrong node"
            );
        }
    }

    #[test]
    fn reshaped_block_star_makes_rows_contiguous() {
        // The paper's motivating case: A(n, n) distributed (block, *) has
        // tiny contiguous runs per processor in column-major order; after
        // reshaping each processor's portion is one contiguous slab.
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block, Dist::Star]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[32, 32],
            Some(&dist),
            DistKind::Reshaped,
            4,
        );
        // Proc 1 owns rows 8..16; its portion must be one contiguous run
        // in column-major portion order.
        let base = a.addr_of(&[8, 0]);
        let mut expect = base;
        for j in 0..32u64 {
            for i in 8..16u64 {
                assert_eq!(a.addr_of(&[i, j]), expect);
                expect += 8;
            }
        }
    }

    #[test]
    fn ptr_table_holds_portion_bases() {
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[100],
            Some(&dist),
            DistKind::Reshaped,
            4,
        );
        for p in 0..4 {
            let slot = a.ptr_slot_addr(p).unwrap();
            assert_eq!(m.peek_i64(slot) as u64, a.portion_base(p).unwrap());
        }
    }

    #[test]
    fn redistribute_moves_pages() {
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block]);
        let mut a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[512],
            Some(&dist),
            DistKind::Regular,
            4,
        );
        let elem300 = a.addr_of(&[300]);
        let before = m.home_of(elem300);
        // Redistribute cyclically by pages' midpoints — ownership changes.
        let pages = a
            .redistribute(
                &mut m,
                ProcId(0),
                &Distribution::new(vec![Dist::Cyclic(64)]),
                4,
            )
            .unwrap();
        assert_eq!(pages, 4);
        // Element 300: cyclic(64) over 4 procs => chunk 4 (256..320) on proc 0.
        assert_eq!(a.desc.dims[0].owner(300), 0);
        let _ = before;
        assert_eq!(m.home_of(elem300), Some(NodeId(0)));
    }

    #[test]
    fn redistribute_reshaped_is_rejected() {
        let (mut m, mut pools) = setup(2);
        let dist = Distribution::new(vec![Dist::Block]);
        let mut a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[64],
            Some(&dist),
            DistKind::Reshaped,
            2,
        );
        let err = a
            .redistribute(
                &mut m,
                ProcId(0),
                &Distribution::new(vec![Dist::Cyclic(1)]),
                2,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            crate::RuntimeError::RedistributeReshaped { .. }
        ));
    }

    #[test]
    fn reshaped_cyclic_interleaves_ownership() {
        let (mut m, mut pools) = setup(2);
        let dist = Distribution::new(vec![Dist::Cyclic(5)]);
        let a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[1000],
            Some(&dist),
            DistKind::Reshaped,
            2,
        );
        // The paper's Section 3.2.1 example: portions of 5 elements.
        // Elements 0..5 proc 0, 5..10 proc 1, 10..15 proc 0 again.
        assert_eq!(a.desc.owner_proc(&[0]), 0);
        assert_eq!(a.desc.owner_proc(&[7]), 1);
        assert_eq!(a.desc.owner_proc(&[12]), 0);
        // Within proc 0, element 10 follows element 4 contiguously.
        assert_eq!(a.addr_of(&[10]), a.addr_of(&[4]) + 8);
    }
}
