//! Runtime distribution descriptors.
//!
//! A [`DistDescriptor`] resolves a symbolic [`Distribution`] against the
//! actual array extents and processor count at program start-up — the
//! paper's "number of processors in each distributed dimension is
//! determined at program start-up time, which enables the same executable
//! to run with different numbers of processors" (Section 3.2).
//!
//! The descriptor answers the ownership questions of Table 1:
//! for each distributed dimension, *which processor coordinate owns index
//! i* and *at which local offset* — for `block`, `cyclic` and `cyclic(k)`.

use dsm_ir::{Dist, Distribution};

/// Resolved geometry of one array dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimDesc {
    /// Extent (number of elements).
    pub extent: u64,
    /// Distribution format.
    pub dist: Dist,
    /// Processors assigned to this dimension (1 for `*`).
    pub nprocs: u64,
    /// `block`: portion size `b = ceil(extent / nprocs)`;
    /// `cyclic(k)`: the chunk size `k`; `*`: the whole extent.
    pub chunk: u64,
}

impl DimDesc {
    /// Processor coordinate (0-based) owning 0-based index `i`.
    pub fn owner(&self, i: u64) -> u64 {
        match self.dist {
            Dist::Star => 0,
            Dist::Block => (i / self.chunk).min(self.nprocs - 1),
            Dist::Cyclic(k) => (i / k) % self.nprocs,
        }
    }

    /// Offset of 0-based index `i` within its owner's portion.
    pub fn local_offset(&self, i: u64) -> u64 {
        match self.dist {
            Dist::Star => i,
            Dist::Block => i - self.owner(i) * self.chunk,
            Dist::Cyclic(k) => (i / (k * self.nprocs)) * k + i % k,
        }
    }

    /// Number of elements owned by processor coordinate `p` along this
    /// dimension.
    pub fn portion_extent(&self, p: u64) -> u64 {
        match self.dist {
            Dist::Star => self.extent,
            Dist::Block => {
                let lo = p * self.chunk;
                if lo >= self.extent {
                    0
                } else {
                    (self.extent - lo).min(self.chunk)
                }
            }
            Dist::Cyclic(k) => {
                // Elements i with (i/k) % P == p.
                let full_rounds = self.extent / (k * self.nprocs);
                let rem = self.extent - full_rounds * k * self.nprocs;
                let extra = rem.saturating_sub(p * k).min(k);
                full_rounds * k + extra
            }
        }
    }

    /// Maximum portion extent over all coordinates (allocation size).
    pub fn max_portion_extent(&self) -> u64 {
        (0..self.nprocs)
            .map(|p| self.portion_extent(p))
            .max()
            .unwrap_or(0)
    }

    /// Elements remaining in the contiguous run containing 0-based index
    /// `i`, from `i` to the run's end (clamped by the extent).  This is
    /// the "portion" size of the paper's element-passing rule: for
    /// `cyclic(5)`, passing element 0 passes a 5-element portion.
    pub fn run_remaining(&self, i: u64) -> u64 {
        match self.dist {
            Dist::Star => self.extent - i,
            Dist::Block => ((self.owner(i) + 1) * self.chunk).min(self.extent) - i,
            Dist::Cyclic(k) => (k - i % k).min(self.extent - i),
        }
    }

    /// Global 0-based index range `[start, end)` of the `n`-th contiguous
    /// run owned by coordinate `p` (for `block` there is exactly one run;
    /// for `cyclic(k)` run `n` starts at `(n*P + p) * k`). Returns `None`
    /// when the run is beyond the extent.
    pub fn run(&self, p: u64, n: u64) -> Option<(u64, u64)> {
        let (start, len) = match self.dist {
            Dist::Star => {
                if n > 0 {
                    return None;
                }
                (0, self.extent)
            }
            Dist::Block => {
                if n > 0 {
                    return None;
                }
                (p * self.chunk, self.chunk)
            }
            Dist::Cyclic(k) => ((n * self.nprocs + p) * k, k),
        };
        if start >= self.extent {
            None
        } else {
            Some((start, (start + len).min(self.extent)))
        }
    }
}

/// Resolved distribution of a whole array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistDescriptor {
    /// Per-dimension geometry, declaration order.
    pub dims: Vec<DimDesc>,
    /// Indices of the distributed dimensions.
    pub distributed: Vec<usize>,
    /// Processor-grid extents, one per distributed dimension
    /// (product ≤ total processors).
    pub grid: Vec<usize>,
}

impl DistDescriptor {
    /// Resolve `dist` for an array of the given `extents` on `nprocs`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if ranks mismatch or any extent is zero.
    pub fn new(extents: &[u64], dist: &Distribution, nprocs: usize) -> Self {
        assert_eq!(extents.len(), dist.dims.len(), "distribution rank mismatch");
        assert!(extents.iter().all(|&e| e > 0), "zero-extent array");
        let grid = dist.factor_grid(nprocs);
        let distributed = dist.distributed_dims();
        let mut gi = 0;
        let dims = extents
            .iter()
            .zip(&dist.dims)
            .map(|(&extent, &d)| {
                let nprocs = if d.is_distributed() {
                    let p = grid[gi] as u64;
                    gi += 1;
                    p
                } else {
                    1
                };
                let chunk = match d {
                    Dist::Star => extent,
                    Dist::Block => extent.div_ceil(nprocs),
                    Dist::Cyclic(k) => k.max(1),
                };
                DimDesc {
                    extent,
                    dist: d,
                    nprocs,
                    chunk,
                }
            })
            .collect();
        DistDescriptor {
            dims,
            distributed,
            grid,
        }
    }

    /// A descriptor for an undistributed array (all dims `*`).
    pub fn undistributed(extents: &[u64]) -> Self {
        let dist = Distribution::new(vec![Dist::Star; extents.len()]);
        Self::new(extents, &dist, 1)
    }

    /// Total processors used by the grid (product of grid extents; 1 when
    /// nothing is distributed).
    pub fn grid_size(&self) -> usize {
        self.grid.iter().product::<usize>().max(1)
    }

    /// Owning grid coordinates (one per distributed dim) of the element at
    /// the given 0-based `indices`.
    pub fn owner_coords(&self, indices: &[u64]) -> Vec<u64> {
        self.distributed
            .iter()
            .map(|&d| self.dims[d].owner(indices[d]))
            .collect()
    }

    /// Linearize grid coordinates into a processor number in
    /// `0..grid_size()` (first distributed dimension fastest-varying,
    /// matching Fortran column-major convention).
    pub fn linearize_coords(&self, coords: &[u64]) -> usize {
        let mut proc = 0u64;
        for (i, &c) in coords.iter().enumerate().rev() {
            proc = proc * self.grid[i] as u64 + c;
        }
        proc as usize
    }

    /// Grid coordinates of linearized processor `p`.
    pub fn delinearize_proc(&self, p: usize) -> Vec<u64> {
        let mut rest = p as u64;
        self.grid
            .iter()
            .map(|&g| {
                let c = rest % g as u64;
                rest /= g as u64;
                c
            })
            .collect()
    }

    /// Processor number (in `0..grid_size()`) owning the element at
    /// 0-based `indices`.
    pub fn owner_proc(&self, indices: &[u64]) -> usize {
        self.linearize_coords(&self.owner_coords(indices))
    }

    /// Element count of the portion owned by linearized processor `p`.
    pub fn portion_len(&self, p: usize) -> u64 {
        let coords = self.delinearize_proc(p);
        let mut gi = 0;
        self.dims
            .iter()
            .map(|d| {
                if d.dist.is_distributed() {
                    let e = d.portion_extent(coords[gi]);
                    gi += 1;
                    e
                } else {
                    d.extent
                }
            })
            .product()
    }

    /// Column-major offset of 0-based `indices` *within* the owner's
    /// portion (using that portion's own extents).
    pub fn local_linear(&self, indices: &[u64]) -> u64 {
        let coords = self.owner_coords(indices);
        let mut gi_of_dim = vec![usize::MAX; self.dims.len()];
        for (gi, &d) in self.distributed.iter().enumerate() {
            gi_of_dim[d] = gi;
        }
        let mut off = 0u64;
        for di in (0..self.dims.len()).rev() {
            let d = &self.dims[di];
            let (local_idx, local_ext) = if d.dist.is_distributed() {
                let c = coords[gi_of_dim[di]];
                (d.local_offset(indices[di]), d.portion_extent(c))
            } else {
                (indices[di], d.extent)
            };
            off = off * local_ext + local_idx;
        }
        off
    }

    /// Column-major offset of 0-based `indices` in the *undistributed*
    /// (standard Fortran) layout.
    pub fn global_linear(&self, indices: &[u64]) -> u64 {
        let mut off = 0u64;
        for di in (0..self.dims.len()).rev() {
            off = off * self.dims[di].extent + indices[di];
        }
        off
    }

    /// Total number of elements.
    pub fn total_len(&self) -> u64 {
        self.dims.iter().map(|d| d.extent).product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block_desc(n: u64, p: usize) -> DimDesc {
        let d = DistDescriptor::new(&[n], &Distribution::new(vec![Dist::Block]), p);
        d.dims[0]
    }

    #[test]
    fn block_ownership_and_offsets() {
        let d = block_desc(10, 4); // b = 3
        assert_eq!(d.chunk, 3);
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(2), 0);
        assert_eq!(d.owner(3), 1);
        assert_eq!(d.owner(9), 3);
        assert_eq!(d.local_offset(4), 1);
        assert_eq!(d.portion_extent(0), 3);
        assert_eq!(d.portion_extent(3), 1); // last gets the remainder
    }

    #[test]
    fn block_portions_cover_extent() {
        for n in [1u64, 7, 16, 100, 1000] {
            for p in [1usize, 2, 3, 7, 8] {
                let d = block_desc(n, p);
                let total: u64 = (0..p as u64).map(|c| d.portion_extent(c)).sum();
                assert_eq!(total, n, "n={n} p={p}");
            }
        }
    }

    #[test]
    fn cyclic_ownership() {
        let desc = DistDescriptor::new(&[10], &Distribution::new(vec![Dist::Cyclic(1)]), 3);
        let d = desc.dims[0];
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(1), 1);
        assert_eq!(d.owner(2), 2);
        assert_eq!(d.owner(3), 0);
        assert_eq!(d.local_offset(3), 1);
        assert_eq!(d.local_offset(9), 3);
        assert_eq!(d.portion_extent(0), 4); // 0,3,6,9
        assert_eq!(d.portion_extent(1), 3);
    }

    #[test]
    fn block_cyclic_ownership() {
        let desc = DistDescriptor::new(&[1000], &Distribution::new(vec![Dist::Cyclic(5)]), 4);
        let d = desc.dims[0];
        // Elements 0..5 on p0, 5..10 on p1, ...
        assert_eq!(d.owner(0), 0);
        assert_eq!(d.owner(4), 0);
        assert_eq!(d.owner(5), 1);
        assert_eq!(d.owner(19), 3);
        assert_eq!(d.owner(20), 0);
        assert_eq!(d.local_offset(20), 5);
        assert_eq!(d.local_offset(24), 9);
        let total: u64 = (0..4).map(|c| d.portion_extent(c)).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn cyclic_runs_enumerate_ownership() {
        let desc = DistDescriptor::new(&[23], &Distribution::new(vec![Dist::Cyclic(4)]), 3);
        let d = desc.dims[0];
        let mut owned = vec![];
        let mut n = 0;
        while let Some((s, e)) = d.run(1, n) {
            owned.extend(s..e);
            n += 1;
        }
        let expect: Vec<u64> = (0..23).filter(|&i| d.owner(i) == 1).collect();
        assert_eq!(owned, expect);
    }

    #[test]
    fn two_dim_block_block_grid() {
        let dist = Distribution::new(vec![Dist::Block, Dist::Block]);
        let desc = DistDescriptor::new(&[100, 100], &dist, 16);
        assert_eq!(desc.grid, vec![4, 4]);
        assert_eq!(desc.grid_size(), 16);
        // Element (0,0) owned by proc 0, (99,99) by the last proc.
        assert_eq!(desc.owner_proc(&[0, 0]), 0);
        assert_eq!(desc.owner_proc(&[99, 99]), 15);
        // Coordinates linearize column-major.
        assert_eq!(desc.linearize_coords(&[1, 0]), 1);
        assert_eq!(desc.linearize_coords(&[0, 1]), 4);
        assert_eq!(desc.delinearize_proc(6), vec![2, 1]);
    }

    #[test]
    fn star_block_only_distributes_second_dim() {
        let dist = Distribution::new(vec![Dist::Star, Dist::Block]);
        let desc = DistDescriptor::new(&[8, 100], &dist, 4);
        assert_eq!(desc.grid, vec![4]);
        assert_eq!(desc.owner_proc(&[3, 0]), 0);
        assert_eq!(desc.owner_proc(&[3, 99]), 3);
        assert_eq!(desc.portion_len(0), 8 * 25);
    }

    #[test]
    fn portions_partition_the_array() {
        let dist = Distribution::new(vec![Dist::Block, Dist::Cyclic(3)]);
        let desc = DistDescriptor::new(&[17, 29], &dist, 6);
        let total: u64 = (0..desc.grid_size()).map(|p| desc.portion_len(p)).sum();
        assert_eq!(total, 17 * 29);
    }

    #[test]
    fn local_linear_is_dense_and_unique_per_portion() {
        let dist = Distribution::new(vec![Dist::Block, Dist::Block]);
        let desc = DistDescriptor::new(&[10, 10], &dist, 4);
        for p in 0..desc.grid_size() {
            let mut seen = std::collections::HashSet::new();
            for i in 0..10u64 {
                for j in 0..10u64 {
                    if desc.owner_proc(&[i, j]) == p {
                        let off = desc.local_linear(&[i, j]);
                        assert!(off < desc.portion_len(p));
                        assert!(seen.insert(off), "duplicate offset {off} in portion {p}");
                    }
                }
            }
            assert_eq!(seen.len() as u64, desc.portion_len(p));
        }
    }

    #[test]
    fn global_linear_is_column_major() {
        let desc = DistDescriptor::undistributed(&[3, 4]);
        assert_eq!(desc.global_linear(&[0, 0]), 0);
        assert_eq!(desc.global_linear(&[1, 0]), 1);
        assert_eq!(desc.global_linear(&[0, 1]), 3);
        assert_eq!(desc.global_linear(&[2, 3]), 11);
        assert_eq!(desc.total_len(), 12);
    }

    #[test]
    fn undistributed_has_trivial_grid() {
        let desc = DistDescriptor::undistributed(&[5, 5]);
        assert_eq!(desc.grid_size(), 1);
        assert_eq!(desc.owner_proc(&[4, 4]), 0);
        assert_eq!(desc.local_linear(&[2, 2]), desc.global_linear(&[2, 2]));
    }
}
