//! Scheduled redistribution: plan page moves as contention-bounded
//! rounds instead of walking pages home-by-home.
//!
//! The naive mover ([`RtArray::redistribute`]) visits every page of the
//! array, recomputes its owner element-by-element and remaps it on the
//! spot, charging a flat fault + shootdown price per page to the calling
//! processor. This module replaces that loop with a three-step engine in
//! the spirit of Sudarsan & Ribbens' scheduled redistribution for
//! resizable computations:
//!
//! 1. **Plan** — compute each page's new home directly from the target
//!    descriptor, stepping by *chunk runs* (the contiguous same-owner
//!    runs of the fastest-varying dimension) rather than per element, so
//!    a block-cyclic(k) → block-cyclic(k′) conversion costs O(chunks)
//!    per page, with no materialized intermediate copy. Only pages whose
//!    home actually changes become moves (delta-only — the heart of
//!    cheap team resize).
//! 2. **Schedule** — pack the moves into rounds such that within a round
//!    no node sources more than `fan` pages (fan-out) or sinks more than
//!    `fan` pages (fan-in). Transfers inside a round are node-disjoint
//!    up to the bound, so they can overlap on the interconnect.
//! 3. **Execute** — apply each round through
//!    [`Machine::apply_redist_round`], which prices the round at its
//!    longest hop-aware bulk transfer plus one coalesced TLB shootdown
//!    and records the work in the machine's redistribution counters.
//!
//! The naive mover stays available as the differential oracle: both
//! engines must produce identical final homes (they share the
//! "last requester wins" owner rule), and since neither touches array
//! *data*, captures are bit-identical by construction — the conformance
//! matrix asserts both.

use dsm_ir::{DistKind, Distribution};
use dsm_machine::{Machine, NodeId, ProcId, VAddr};

use crate::descriptor::DistDescriptor;
use crate::layout::{ArrayLayout, RtArray};
use crate::RuntimeError;

/// Default per-round per-node fan-in/fan-out bound.
pub const DEFAULT_FAN: usize = 1;

/// One planned page transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMove {
    /// Virtual page number being moved.
    pub vpage: u64,
    /// Current home node.
    pub from: NodeId,
    /// New home node.
    pub to: NodeId,
}

/// A complete redistribution schedule: rounds of contention-bounded
/// moves.
#[derive(Debug, Clone, Default)]
pub struct RedistSchedule {
    /// Rounds in execution order; every move within a round respects the
    /// fan bound.
    pub rounds: Vec<Vec<PageMove>>,
    /// The per-round per-node fan-in/fan-out bound the rounds satisfy.
    pub fan: usize,
    /// Pages examined by the planner (the array's full page span).
    pub pages_scanned: u64,
}

impl RedistSchedule {
    /// Total pages the schedule moves (Σ rounds).
    pub fn pages_moved(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Iterate every move in execution order.
    pub fn moves(&self) -> impl Iterator<Item = &PageMove> {
        self.rounds.iter().flatten()
    }
}

/// The "last requester wins" page-owner rule shared with the naive
/// mover: the highest-numbered grid processor owning any element of the
/// page. Computed by stepping over the contiguous same-owner runs of
/// the fastest-varying dimension (a run's elements share every index
/// but the first, so they share an owner), which makes the scan
/// O(chunks-in-page) instead of O(elements-in-page).
fn page_last_owner_chunked(desc: &DistDescriptor, first: u64, last: u64) -> usize {
    let total = desc.total_len();
    if total == 0 {
        return 0;
    }
    let last = last.min(total - 1);
    let dim0 = &desc.dims[0];
    let mut owner = 0usize;
    let mut idx: Vec<u64> = Vec::with_capacity(desc.dims.len());
    let mut e = first.min(last);
    while e <= last {
        idx.clear();
        let mut rest = e;
        for d in &desc.dims {
            idx.push(rest % d.extent);
            rest /= d.extent;
        }
        owner = owner.max(desc.owner_proc(&idx));
        // Jump to the end of the current dim-0 run (clamped to the
        // column boundary): every element in between shares this owner.
        let step = dim0.run_remaining(idx[0]).min(dim0.extent - idx[0]).max(1);
        e += step;
    }
    owner
}

/// Plan the delta moves for remapping the contiguous range
/// `[base, base + total_bytes)` to the owners described by `desc`, then
/// pack them into fan-bounded rounds.
///
/// Unmapped pages (never touched or placed) are planned as `from == to`
/// self-moves so they get mapped and pinned like the naive mover would.
pub fn plan_schedule(
    m: &Machine,
    base: VAddr,
    total_bytes: u64,
    desc: &DistDescriptor,
    elem_bytes: u64,
    fan: usize,
) -> RedistSchedule {
    let fan = fan.max(1);
    let page = m.config().page_size as u64;
    let procs_per_node = m.config().procs_per_node;
    let n_nodes = m.config().n_nodes;
    let mut moves: Vec<PageMove> = Vec::new();
    let mut pages_scanned = 0u64;
    let mut off = 0u64;
    while off < total_bytes {
        pages_scanned += 1;
        let len = page.min(total_bytes - off);
        let first = off / elem_bytes;
        let last = (off + len - 1) / elem_bytes;
        let owner = page_last_owner_chunked(desc, first, last);
        let to = NodeId(owner / procs_per_node);
        let vpage = (base + off) / page;
        match m.home_of(base + off) {
            Some(from) if from == to => {} // already home: no move
            Some(from) => moves.push(PageMove { vpage, from, to }),
            // Never mapped: a self-move maps and pins it like the naive
            // mover would, at local-transfer cost.
            None => moves.push(PageMove { vpage, from: to, to }),
        }
        off += page;
    }
    // Greedy round packing in ascending page order (deterministic): a
    // move lands in the earliest round where both endpoints still have
    // fan budget. Per-node cursors remember the first round with budget
    // left, so each placement scans O(1) rounds in the common uniform
    // case instead of restarting from round zero.
    let mut rounds: Vec<Vec<PageMove>> = Vec::new();
    let mut fan_out: Vec<Vec<usize>> = Vec::new(); // per round, per node
    let mut fan_in: Vec<Vec<usize>> = Vec::new();
    let mut first_out = vec![0usize; n_nodes]; // first round with fan-out budget
    let mut first_in = vec![0usize; n_nodes];
    for mv in moves {
        // Rounds below either cursor are full for that endpoint, so the
        // earliest feasible round is at or after their max.
        let mut r = first_out[mv.from.0].max(first_in[mv.to.0]);
        while r < rounds.len() && (fan_out[r][mv.from.0] >= fan || fan_in[r][mv.to.0] >= fan) {
            r += 1;
        }
        if r == rounds.len() {
            rounds.push(Vec::new());
            fan_out.push(vec![0; n_nodes]);
            fan_in.push(vec![0; n_nodes]);
        }
        fan_out[r][mv.from.0] += 1;
        fan_in[r][mv.to.0] += 1;
        rounds[r].push(mv);
        while first_out[mv.from.0] < rounds.len() && fan_out[first_out[mv.from.0]][mv.from.0] >= fan
        {
            first_out[mv.from.0] += 1;
        }
        while first_in[mv.to.0] < rounds.len() && fan_in[first_in[mv.to.0]][mv.to.0] >= fan {
            first_in[mv.to.0] += 1;
        }
    }
    RedistSchedule {
        rounds,
        fan,
        pages_scanned,
    }
}

/// Execute a schedule: apply each round through the machine, which
/// remaps + re-pins the pages, charges the round's cost to the whole
/// team and accumulates the `redist_{pages,cycles}` counters. Returns
/// the pages moved.
pub fn execute_schedule(m: &mut Machine, sched: &RedistSchedule) -> usize {
    let mut moved = 0;
    for round in &sched.rounds {
        let tuples: Vec<(u64, NodeId, NodeId)> =
            round.iter().map(|mv| (mv.vpage, mv.from, mv.to)).collect();
        m.apply_redist_round(&tuples);
        moved += round.len();
    }
    moved
}

impl RtArray {
    /// Dynamically redistribute a regular array with the scheduled
    /// engine: rebind the descriptor, plan the delta page moves, pack
    /// them into fan-bounded rounds and execute them. Data-identical to
    /// the naive [`RtArray::redistribute`] (same final homes, array
    /// contents untouched); only the cycle accounting differs.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::RedistributeReshaped`] when invoked on a
    /// reshaped array — the paper forbids dynamic reshaping, and the
    /// scheduler enforces it independently of the naive path.
    pub fn redistribute_scheduled(
        &mut self,
        m: &mut Machine,
        _caller: ProcId,
        new_dist: &Distribution,
        nprocs: usize,
    ) -> Result<usize, RuntimeError> {
        if self.kind == DistKind::Reshaped {
            return Err(RuntimeError::RedistributeReshaped {
                array: self.name.clone(),
            });
        }
        let extents: Vec<u64> = self.desc.dims.iter().map(|d| d.extent).collect();
        self.desc = DistDescriptor::new(&extents, new_dist, nprocs);
        let ArrayLayout::Contiguous { base } = self.layout else {
            unreachable!("non-reshaped arrays are contiguous")
        };
        let total_bytes = self.desc.total_len() * self.elem_bytes;
        let sched = plan_schedule(m, base, total_bytes, &self.desc, self.elem_bytes, DEFAULT_FAN);
        Ok(execute_schedule(m, &sched))
    }

    /// Re-chunk this array for a new team size (`c$resize_team`),
    /// moving only the delta pages: the descriptor is re-resolved with
    /// the same per-dimension formats against `new_nprocs` (clamped to
    /// the machine's processor count — page homes are node addresses, so
    /// a team cannot outgrow the machine), and the scheduler plans moves
    /// only for pages whose home changes under the new chunking.
    ///
    /// Undistributed arrays are untouched. `scheduled` selects the
    /// scheduled or naive mover (the naive leg is the differential
    /// oracle).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ResizeWithReshaped`] for reshaped arrays:
    /// their portions are bound to the old processor grid and cannot be
    /// re-chunked without reshaping, which the paper forbids at runtime.
    pub fn resize_team(
        &mut self,
        m: &mut Machine,
        caller: ProcId,
        new_nprocs: usize,
        scheduled: bool,
    ) -> Result<usize, RuntimeError> {
        match self.kind {
            DistKind::None => Ok(0),
            DistKind::Reshaped => Err(RuntimeError::ResizeWithReshaped {
                array: self.name.clone(),
            }),
            DistKind::Regular => {
                let new_nprocs = new_nprocs.clamp(1, m.nprocs());
                let dist = Distribution::new(self.desc.dims.iter().map(|d| d.dist).collect());
                if scheduled {
                    self.redistribute_scheduled(m, caller, &dist, new_nprocs)
                } else {
                    self.redistribute(m, caller, &dist, new_nprocs)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolSet;
    use dsm_ir::Dist;
    use dsm_machine::MachineConfig;

    fn setup(nprocs: usize) -> (Machine, PoolSet) {
        let m = Machine::new(MachineConfig::small_test(nprocs));
        let pools = PoolSet::new(nprocs, 4096);
        (m, pools)
    }

    fn regular(m: &mut Machine, pools: &mut PoolSet, extents: &[u64], dists: Vec<Dist>, p: usize) -> RtArray {
        RtArray::instantiate(
            m,
            pools,
            "a",
            extents,
            Some(&Distribution::new(dists)),
            DistKind::Regular,
            p,
        )
    }

    #[test]
    fn chunked_owner_matches_per_element_walk() {
        for (extents, dists, p) in [
            (vec![512u64], vec![Dist::Block], 4usize),
            (vec![512], vec![Dist::Cyclic(7)], 4),
            (vec![96, 40], vec![Dist::Block, Dist::Cyclic(3)], 8),
            (vec![33, 33], vec![Dist::Star, Dist::Block], 4),
        ] {
            let desc = DistDescriptor::new(&extents, &Distribution::new(dists), p);
            let total = desc.total_len();
            for (first, last) in [(0, 127), (100, 300), (total - 5, total + 40)] {
                let last_clamped = last.min(total - 1);
                let mut expect = 0;
                for e in first..=last_clamped {
                    let mut rest = e;
                    let idx: Vec<u64> = desc
                        .dims
                        .iter()
                        .map(|d| {
                            let i = rest % d.extent;
                            rest /= d.extent;
                            i
                        })
                        .collect();
                    expect = expect.max(desc.owner_proc(&idx));
                }
                assert_eq!(
                    page_last_owner_chunked(&desc, first, last),
                    expect,
                    "range {first}..={last}"
                );
            }
        }
    }

    #[test]
    fn schedule_respects_fan_bounds_and_uniqueness() {
        let (mut m, mut pools) = setup(8);
        let mut a = regular(&mut m, &mut pools, &[4096], vec![Dist::Block], 8);
        a.desc = DistDescriptor::new(&[4096], &Distribution::new(vec![Dist::Cyclic(64)]), 8);
        let ArrayLayout::Contiguous { base } = a.layout else {
            unreachable!()
        };
        let sched = plan_schedule(&m, base, 4096 * 8, &a.desc, 8, DEFAULT_FAN);
        let n_nodes = m.config().n_nodes;
        let mut seen = std::collections::HashSet::new();
        for round in &sched.rounds {
            let mut out = vec![0usize; n_nodes];
            let mut inn = vec![0usize; n_nodes];
            for mv in round {
                assert!(seen.insert(mv.vpage), "page {} moved twice", mv.vpage);
                out[mv.from.0] += 1;
                inn[mv.to.0] += 1;
            }
            assert!(out.iter().all(|&c| c <= sched.fan), "fan-out exceeded");
            assert!(inn.iter().all(|&c| c <= sched.fan), "fan-in exceeded");
        }
    }

    #[test]
    fn scheduled_and_naive_agree_on_homes() {
        for (new_dists, p) in [
            (vec![Dist::Cyclic(64)], 4usize),
            (vec![Dist::Cyclic(13)], 8),
            (vec![Dist::Block], 8),
        ] {
            let (mut m_s, mut pools_s) = setup(p);
            let (mut m_n, mut pools_n) = setup(p);
            let mut a_s = regular(&mut m_s, &mut pools_s, &[2048], vec![Dist::Block], p);
            let mut a_n = regular(&mut m_n, &mut pools_n, &[2048], vec![Dist::Block], p);
            let dist = Distribution::new(new_dists);
            a_s.redistribute_scheduled(&mut m_s, ProcId(0), &dist, p)
                .unwrap();
            a_n.redistribute(&mut m_n, ProcId(0), &dist, p).unwrap();
            for i in (0..2048u64).step_by(64) {
                assert_eq!(
                    m_s.home_of(a_s.addr_of(&[i])),
                    m_n.home_of(a_n.addr_of(&[i])),
                    "element {i} home diverges"
                );
            }
            assert_eq!(m_s.pages_per_node(), m_n.pages_per_node());
        }
    }

    #[test]
    fn scheduled_moves_only_the_delta() {
        let (mut m, mut pools) = setup(4);
        let mut a = regular(&mut m, &mut pools, &[512], vec![Dist::Block], 4);
        // Identity redistribution: no page changes home, no moves, no
        // cycles — while the naive mover would remap all 4 pages.
        let before = m.redist_pages();
        let moved = a
            .redistribute_scheduled(&mut m, ProcId(0), &Distribution::new(vec![Dist::Block]), 4)
            .unwrap();
        assert_eq!(moved, 0, "identity redistribution must move nothing");
        assert_eq!(m.redist_pages(), before);
        assert_eq!(m.redist_cycles(), 0);
    }

    #[test]
    fn scheduled_counters_accumulate() {
        let (mut m, mut pools) = setup(4);
        let mut a = regular(&mut m, &mut pools, &[512], vec![Dist::Block], 4);
        let moved = a
            .redistribute_scheduled(
                &mut m,
                ProcId(0),
                &Distribution::new(vec![Dist::Cyclic(64)]),
                4,
            )
            .unwrap();
        assert!(moved > 0);
        assert_eq!(m.redist_pages(), moved as u64);
        assert!(m.redist_cycles() > 0, "rounds must be priced");
        assert!(m.redist_rounds() > 0);
    }

    #[test]
    fn redistribute_scheduled_reshaped_is_rejected() {
        let (mut m, mut pools) = setup(2);
        let dist = Distribution::new(vec![Dist::Block]);
        let mut a = RtArray::instantiate(
            &mut m,
            &mut pools,
            "a",
            &[64],
            Some(&dist),
            DistKind::Reshaped,
            2,
        );
        let err = a
            .redistribute_scheduled(&mut m, ProcId(0), &Distribution::new(vec![Dist::Cyclic(1)]), 2)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::RedistributeReshaped { .. }));
    }

    #[test]
    fn resize_rejects_reshaped_and_ignores_undistributed() {
        let (mut m, mut pools) = setup(4);
        let dist = Distribution::new(vec![Dist::Block]);
        let mut r = RtArray::instantiate(
            &mut m,
            &mut pools,
            "r",
            &[64],
            Some(&dist),
            DistKind::Reshaped,
            4,
        );
        assert!(matches!(
            r.resize_team(&mut m, ProcId(0), 2, true).unwrap_err(),
            RuntimeError::ResizeWithReshaped { .. }
        ));
        let mut u = RtArray::instantiate(&mut m, &mut pools, "u", &[64], None, DistKind::None, 4);
        assert_eq!(u.resize_team(&mut m, ProcId(0), 2, true).unwrap(), 0);
    }

    #[test]
    fn resize_moves_only_delta_pages() {
        // 8 pages block over 4 procs (2 nodes): pages 0-3 node 0, 4-7
        // node 1. Shrinking to 2 procs (both on node 0) must move only
        // the 4 pages that change home.
        let (mut m, mut pools) = setup(4);
        let mut a = regular(&mut m, &mut pools, &[1024], vec![Dist::Block], 4);
        let moved = a.resize_team(&mut m, ProcId(0), 2, true).unwrap();
        assert_eq!(moved, 4, "only the upper half changes home");
        assert_eq!(a.desc.dims[0].nprocs, 2);
        for i in 0..1024u64 {
            assert_eq!(m.home_of(a.addr_of(&[i])), Some(NodeId(0)));
        }
    }

    #[test]
    fn redistributed_pages_stay_pinned_against_migration() {
        // Pinned-page interaction: pages move under redistribution and
        // are pinned again afterwards, so the reactive daemon still
        // leaves them alone.
        let (mut m, mut pools) = setup(4);
        let mut a = regular(&mut m, &mut pools, &[512], vec![Dist::Block], 4);
        let ArrayLayout::Contiguous { base } = a.layout else {
            unreachable!()
        };
        let page = m.config().page_size as u64;
        for i in 0..4u64 {
            assert!(m.page_pinned((base + i * page) / page), "pre-pin missing");
        }
        a.redistribute_scheduled(
            &mut m,
            ProcId(0),
            &Distribution::new(vec![Dist::Cyclic(64)]),
            4,
        )
        .unwrap();
        for i in 0..4u64 {
            assert!(
                m.page_pinned((base + i * page) / page),
                "page {i} lost its pin across scheduled redistribution"
            );
        }
    }
}
