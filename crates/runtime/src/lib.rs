//! # dsm-runtime
//!
//! The runtime system underneath the data-distribution directives
//! (Section 4 of Chandra et al., PLDI 1997): runtime descriptors for
//! distributed arrays, the two storage layouts (regular and reshaped), the
//! page-placement "system call", per-processor memory pools, dynamic
//! redistribution, iteration scheduling for `doacross` loops, the runtime
//! argument-consistency checker (Section 6), and the portion-traversal
//! intrinsics of the MIPSpro Fortran manual.
//!
//! The runtime is deliberately machine-facing: everything here manipulates
//! a [`dsm_machine::Machine`] — allocating simulated memory, placing
//! simulated pages — so that the executor on top observes real NUMA,
//! cache and TLB behaviour.

pub mod argcheck;
pub mod descriptor;
pub mod epoch;
pub mod intrinsics;
pub mod layout;
pub mod pool;
pub mod redist;
pub mod sched;

pub use argcheck::{ArgCheckError, ArgChecker, ArgInfo};
pub use descriptor::{DimDesc, DistDescriptor};
pub use epoch::{join_epoch, EpochClock};
pub use layout::{ArrayLayout, RtArray};
pub use pool::PoolSet;
pub use redist::{plan_schedule, RedistSchedule, PageMove, DEFAULT_FAN};
pub use sched::{partition, proctile_axis, Chunk};

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A runtime argument-consistency check failed (Section 6).
    ArgCheck(ArgCheckError),
    /// A `redistribute` was applied to a reshaped array.
    RedistributeReshaped {
        /// Offending array name.
        array: String,
    },
    /// A `resize_team` was attempted while a reshaped array is live —
    /// reshaped portions are bound to the old processor grid and cannot
    /// be re-chunked without dynamic reshaping, which the paper forbids.
    ResizeWithReshaped {
        /// Offending array name.
        array: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ArgCheck(e) => write!(f, "{e}"),
            RuntimeError::RedistributeReshaped { array } => {
                write!(f, "runtime error: redistribute of reshaped array `{array}`")
            }
            RuntimeError::ResizeWithReshaped { array } => {
                write!(
                    f,
                    "runtime error: resize_team while reshaped array `{array}` is live"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ArgCheckError> for RuntimeError {
    fn from(e: ArgCheckError) -> Self {
        RuntimeError::ArgCheck(e)
    }
}
