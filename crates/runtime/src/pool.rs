//! Per-processor memory pools for reshaped portions.
//!
//! Section 4.3: "each processor allocates a pool of storage from the
//! shared heap, maps the pages for this pool of storage from within its
//! local memory, and allocates its portion of each reshaped array from
//! this pool of memory.  We can therefore avoid padding the ends of each
//! portion up to a page boundary."

use dsm_machine::{Machine, NodeId, VAddr};

/// One processor's pool: page-aligned slabs placed on the owning node,
/// bump-allocated.
#[derive(Debug, Clone, Default)]
struct Pool {
    cursor: VAddr,
    end: VAddr,
}

/// A pool per processor.
#[derive(Debug, Clone)]
pub struct PoolSet {
    pools: Vec<Pool>,
    slab_bytes: usize,
}

impl PoolSet {
    /// Create pools for `nprocs` processors. `slab_bytes` is the minimum
    /// slab grabbed from the shared heap when a pool runs dry (rounded up
    /// to whole pages by the machine allocator).
    pub fn new(nprocs: usize, slab_bytes: usize) -> Self {
        PoolSet {
            pools: vec![Pool::default(); nprocs],
            slab_bytes: slab_bytes.max(1),
        }
    }

    /// Allocate `bytes` for `proc` (8-byte aligned), with the backing pages
    /// placed on `node`. Portions of different arrays share slabs — no
    /// page-boundary padding.
    pub fn alloc(&mut self, m: &mut Machine, proc: usize, node: NodeId, bytes: usize) -> VAddr {
        let bytes = (bytes + 7) & !7;
        let pool = &mut self.pools[proc];
        if pool.cursor + bytes as u64 > pool.end {
            let slab = self.slab_bytes.max(bytes);
            let page = m.config().page_size;
            let slab = slab.div_ceil(page) * page;
            let base = m.alloc_pages(slab);
            m.place_range(base, slab, node);
            // Pre-map the slab's pages on the home node so first-touch
            // cannot steal them later.
            pool.cursor = base;
            pool.end = base + slab as u64;
        }
        let addr = pool.cursor;
        pool.cursor += bytes as u64;
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_machine::MachineConfig;

    #[test]
    fn allocations_are_disjoint_and_aligned() {
        let mut m = Machine::new(MachineConfig::small_test(4));
        let mut ps = PoolSet::new(4, 4096);
        let a = ps.alloc(&mut m, 0, NodeId(0), 100);
        let b = ps.alloc(&mut m, 0, NodeId(0), 100);
        assert_eq!(a % 8, 0);
        assert!(b >= a + 100);
        assert!(b < a + 4096, "second allocation reuses the same slab");
    }

    #[test]
    fn pages_land_on_requested_node() {
        let mut m = Machine::new(MachineConfig::small_test(4));
        let mut ps = PoolSet::new(4, 4096);
        let a = ps.alloc(&mut m, 2, NodeId(1), 64);
        assert_eq!(m.home_of(a), Some(NodeId(1)));
    }

    #[test]
    fn different_procs_use_different_slabs() {
        let mut m = Machine::new(MachineConfig::small_test(4));
        let mut ps = PoolSet::new(4, 4096);
        let a = ps.alloc(&mut m, 0, NodeId(0), 64);
        let b = ps.alloc(&mut m, 1, NodeId(0), 64);
        assert!(
            a.abs_diff(b) >= 1024,
            "slabs must not interleave within a page"
        );
    }

    #[test]
    fn oversized_request_gets_own_slab() {
        let mut m = Machine::new(MachineConfig::small_test(2));
        let mut ps = PoolSet::new(2, 1024);
        let a = ps.alloc(&mut m, 0, NodeId(0), 10 * 1024);
        let b = ps.alloc(&mut m, 0, NodeId(0), 8);
        assert!(b > a);
    }

    #[test]
    fn no_padding_between_small_portions() {
        let mut m = Machine::new(MachineConfig::small_test(2));
        let mut ps = PoolSet::new(2, 8192);
        let a = ps.alloc(&mut m, 0, NodeId(0), 24);
        let b = ps.alloc(&mut m, 0, NodeId(0), 24);
        assert_eq!(b - a, 24, "portions must pack without page padding");
    }
}
