//! Advisor × conformance fuzz smoke: over seeded generated programs
//! (directives stripped), the advisor must produce a plan whose annotated
//! program still passes the differential oracle bit-identically. The
//! advisor is allowed to find nothing better than the baseline — it is
//! NOT allowed to emit a plan that changes results.

use dsm_advisor::{advise, AdvisorConfig};
use dsm_compile::OptConfig;
use dsm_conformance::{check_sources, generate_with, GenOptions, Matrix};

fn smoke_cfg() -> AdvisorConfig {
    AdvisorConfig {
        nprocs: 4,
        scale: 64,
        budget: 6,
        threads: 2,
        // The explicit oracle check below is the point of the test;
        // skip the advisor's own (identical) verification pass.
        verify: false,
        ..AdvisorConfig::default()
    }
}

fn oracle_matrix() -> Matrix {
    Matrix {
        procs: vec![1, 4],
        opt_variants: vec![("default", OptConfig::default())],
        modes: vec![(true, false, false), (false, false, false)],
        policies: vec![dsm_machine::MigrationPolicy::Off],
        // Plan checking targets placement semantics; the sampling axis
        // is exercised by dsmfuzz and sampling_bounds.
        sampling: vec![],
    }
}

#[test]
fn advisor_plans_pass_the_differential_oracle_on_seeded_programs() {
    let cfg = smoke_cfg();
    let opts = GenOptions {
        strip_directives: true,
    };
    let mut planned_something = 0usize;
    for seed in 0..50 {
        let spec = generate_with(seed, &opts);
        let sources = spec.render();
        let captures = spec.capture_names();
        let advice = match advise(&sources, &cfg) {
            Ok(a) => a,
            Err(e) => panic!("seed {seed}: advise failed: {e}"),
        };
        if !advice.plan.dists.is_empty() || !advice.plan.loops.is_empty() {
            planned_something += 1;
        }
        assert!(
            advice.best.total_cycles <= advice.baseline.total_cycles,
            "seed {seed}: winner slower than baseline"
        );
        if let Err(d) = check_sources(&advice.annotated, &captures, &oracle_matrix()) {
            panic!(
                "seed {seed}: advisor plan diverges from the oracle: {d}\nplan: {:#?}\nannotated:\n{}",
                advice.plan, advice.annotated[0].1
            );
        }
    }
    // The search must actually be doing something across the corpus, not
    // just returning 50 empty plans.
    assert!(
        planned_something >= 10,
        "only {planned_something}/50 seeds produced a non-empty plan"
    );
}
