//! The plan model: a candidate assignment of directives, its rendering
//! back into Fortran (via `dsm_frontend::splice`) and its JSON form.

use dsm_frontend::ast::{AExpr, AffinityDir, DistItem, DistributeDir, DoacrossDir, SchedSpec};
use dsm_frontend::splice::{
    render_distribute, render_doacross, render_redistribute, render_resize_team,
    splice_directives, Splice,
};
use dsm_frontend::Span;

use crate::analyze::Analysis;

/// One per-dimension distribution choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Di {
    /// `block`
    Block,
    /// `cyclic(k)`
    Cyclic(i64),
    /// `*`
    Star,
}

impl Di {
    fn to_item(self) -> DistItem {
        match self {
            Di::Block => DistItem::Block,
            Di::Cyclic(k) => DistItem::Cyclic(Some(AExpr::Int(k))),
            Di::Star => DistItem::Star,
        }
    }

    fn json(self) -> String {
        match self {
            Di::Block => "\"block\"".into(),
            Di::Cyclic(k) => format!("\"cyclic({k})\""),
            Di::Star => "\"*\"".into(),
        }
    }
}

/// Block on one slot, `*` elsewhere.
pub fn block_at(slot: usize, rank: usize) -> Vec<Di> {
    (0..rank)
        .map(|d| if d == slot { Di::Block } else { Di::Star })
        .collect()
}

/// A `c$distribute`/`c$distribute_reshape` choice for one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanDist {
    /// Array name.
    pub array: String,
    /// Per-dimension items.
    pub items: Vec<Di>,
    /// `c$distribute_reshape` instead of `c$distribute`.
    pub reshape: bool,
    /// `onto` grid ratios (empty = none).
    pub onto: Vec<i64>,
}

/// A `c$doacross` choice for one analyzed loop site.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanLoop {
    /// Index into [`Analysis::sites`].
    pub site: usize,
    /// `affinity(v) = data(array(1, …, v@slot, …, 1))`.
    pub affinity: Option<(String, usize)>,
    /// Use `nest(v, w)` (requires the site's perfect nest).
    pub nest: bool,
    /// Explicit `schedtype` (None = the default schedule).
    pub sched: Option<SchedSpec>,
}

/// A `c$redistribute` inserted before a top-level statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRedist {
    /// Array name (must be regular-distributed by the plan).
    pub array: String,
    /// 1-based line of the stripped main file to insert before.
    pub before_line: usize,
    /// New per-dimension items.
    pub items: Vec<Di>,
}

/// A `c$resize_team` point inserted before a top-level statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanResize {
    /// 1-based line of the stripped main file to insert before.
    pub before_line: usize,
    /// New team width.
    pub team: usize,
}

/// A complete candidate: distributions + parallel loops + redistributes
/// + resize points. The empty plan is the unannotated baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Plan {
    /// Distribution directives (at most one per array).
    pub dists: Vec<PlanDist>,
    /// Loops annotated `c$doacross`.
    pub loops: Vec<PlanLoop>,
    /// Mid-program redistributions.
    pub redists: Vec<PlanRedist>,
    /// Mid-program team resizes.
    pub resizes: Vec<PlanResize>,
}

impl Plan {
    /// The plan's distribution for `array`, if any.
    pub fn dist_of(&self, array: &str) -> Option<&PlanDist> {
        self.dists.iter().find(|d| d.array == array)
    }

    /// Copy with `array`'s distribution replaced (or removed when
    /// `dist` is `None`). Redistributes of the array are dropped — they
    /// are only meaningful relative to the initial distribution.
    #[must_use]
    pub fn with_dist(&self, array: &str, dist: Option<PlanDist>) -> Plan {
        let mut p = self.clone();
        p.dists.retain(|d| d.array != array);
        p.redists.retain(|r| r.array != array);
        if let Some(d) = dist {
            p.dists.push(d);
        }
        p
    }

    /// Copy with the given loop choice replacing any choice for the same
    /// site (or removing it when `choice` is `None`).
    #[must_use]
    pub fn with_loop(&self, site: usize, choice: Option<PlanLoop>) -> Plan {
        let mut p = self.clone();
        p.loops.retain(|l| l.site != site);
        if let Some(l) = choice {
            p.loops.push(l);
        }
        p
    }

    /// Copy with a redistribute appended.
    #[must_use]
    pub fn with_redist(&self, r: PlanRedist) -> Plan {
        let mut p = self.clone();
        p.redists
            .retain(|x| x.array != r.array || x.before_line != r.before_line);
        p.redists.push(r);
        p
    }

    /// Copy with a resize point appended (replacing any resize at the
    /// same line — two teams cannot coexist at one point).
    #[must_use]
    pub fn with_resize(&self, r: PlanResize) -> Plan {
        let mut p = self.clone();
        p.resizes.retain(|x| x.before_line != r.before_line);
        p.resizes.push(r);
        p
    }

    /// The directive lines of this plan, in splice order (for display).
    pub fn directives(&self, an: &Analysis) -> Vec<String> {
        self.splices(an)
            .into_iter()
            .flat_map(|(_, v)| v)
            .map(|s| s.text)
            .collect()
    }

    fn splices(&self, an: &Analysis) -> Vec<(usize, Vec<Splice>)> {
        let mut per_file: Vec<(usize, Vec<Splice>)> =
            (0..an.stripped.len()).map(|i| (i, Vec::new())).collect();
        for d in &self.dists {
            per_file[an.main_file].1.push(Splice {
                before_line: an.decl_insert_line,
                text: render_distribute(&DistributeDir {
                    span: Span::default(),
                    array: d.array.clone(),
                    dists: d.items.iter().map(|i| i.to_item()).collect(),
                    onto: d.onto.clone(),
                    reshape: d.reshape,
                }),
            });
        }
        for l in &self.loops {
            let site = &an.sites[l.site];
            let affinity = l.affinity.as_ref().map(|(arr, slot)| {
                let rank = an.array(arr).map_or(slot + 1, |a| a.dims.len());
                AffinityDir {
                    loop_vars: vec![site.var.clone()],
                    array: arr.clone(),
                    indices: (0..rank)
                        .map(|d| {
                            if d == *slot {
                                AExpr::Name(site.var.clone())
                            } else {
                                AExpr::Int(1)
                            }
                        })
                        .collect(),
                }
            });
            let nest = if l.nest {
                match &site.nest {
                    Some(inner) => vec![site.var.clone(), inner.clone()],
                    None => Vec::new(),
                }
            } else {
                Vec::new()
            };
            per_file[site.file].1.push(Splice {
                before_line: site.line,
                text: render_doacross(&DoacrossDir {
                    span: Span::default(),
                    nest,
                    locals: site.locals.clone(),
                    shareds: Vec::new(),
                    affinity,
                    sched: l.sched.clone(),
                }),
            });
        }
        for r in &self.redists {
            per_file[an.main_file].1.push(Splice {
                before_line: r.before_line,
                text: render_redistribute(
                    &r.array,
                    &r.items.iter().map(|i| i.to_item()).collect::<Vec<_>>(),
                ),
            });
        }
        for r in &self.resizes {
            per_file[an.main_file].1.push(Splice {
                before_line: r.before_line,
                text: render_resize_team(r.team),
            });
        }
        per_file
    }

    /// Splice the plan into the stripped sources: the annotated program.
    pub fn annotate(&self, an: &Analysis) -> Vec<(String, String)> {
        let per_file = self.splices(an);
        an.stripped
            .iter()
            .zip(per_file)
            .map(|((name, text), (_, inserts))| (name.clone(), splice_directives(text, &inserts)))
            .collect()
    }

    /// Hand-rolled JSON object (the workspace carries no serde).
    pub fn to_json(&self, an: &Analysis) -> String {
        let mut s = String::from("{\n    \"distributes\": [");
        for (i, d) in self.dists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"array\": \"{}\", \"items\": [{}], \"reshape\": {}, \"onto\": [{}]}}",
                d.array,
                d.items
                    .iter()
                    .map(|i| i.json())
                    .collect::<Vec<_>>()
                    .join(", "),
                d.reshape,
                d.onto
                    .iter()
                    .map(i64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        s.push_str("\n    ],\n    \"loops\": [");
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let site = &an.sites[l.site];
            let aff = match &l.affinity {
                Some((arr, slot)) => format!("{{\"array\": \"{arr}\", \"slot\": {slot}}}"),
                None => "null".into(),
            };
            let sched = match &l.sched {
                Some(SchedSpec::Simple) => "\"simple\"".to_string(),
                Some(SchedSpec::Interleave(k)) => format!("\"interleave({k})\""),
                Some(SchedSpec::Dynamic(k)) => format!("\"dynamic({k})\""),
                None => "null".into(),
            };
            s.push_str(&format!(
                "\n      {{\"file\": \"{}\", \"line\": {}, \"var\": \"{}\", \
                 \"affinity\": {aff}, \"nest\": {}, \"sched\": {sched}}}",
                an.stripped[site.file].0, site.line, site.var, l.nest
            ));
        }
        s.push_str("\n    ],\n    \"redistributes\": [");
        for (i, r) in self.redists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"array\": \"{}\", \"before_line\": {}, \"items\": [{}]}}",
                r.array,
                r.before_line,
                r.items
                    .iter()
                    .map(|i| i.json())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        s.push_str("\n    ],\n    \"resizes\": [");
        for (i, r) in self.resizes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n      {{\"before_line\": {}, \"team\": {}}}",
                r.before_line, r.team
            ));
        }
        s.push_str("\n    ]\n  }");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;

    #[test]
    fn annotate_produces_a_compilable_program() {
        let src = "\
      program p
      integer i, j
      real*8 a(16, 16)
      do j = 1, 16
        do i = 1, 16
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, 16
        do j = 1, 16
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
";
        let an = analyze(&[("p.f".to_string(), src.to_string())]).unwrap();
        let plan = Plan {
            dists: vec![PlanDist {
                array: "a".into(),
                items: vec![Di::Star, Di::Block],
                reshape: false,
                onto: vec![],
            }],
            loops: vec![
                PlanLoop {
                    site: 0,
                    affinity: Some(("a".into(), 1)),
                    nest: false,
                    sched: None,
                },
                PlanLoop {
                    site: 1,
                    affinity: Some(("a".into(), 0)),
                    nest: false,
                    sched: None,
                },
            ],
            redists: vec![PlanRedist {
                array: "a".into(),
                before_line: an.sites[1].line,
                items: vec![Di::Block, Di::Star],
            }],
            resizes: vec![PlanResize {
                before_line: an.sites[1].line,
                team: 4,
            }],
        };
        let annotated = plan.annotate(&an);
        let text = &annotated[0].1;
        assert!(text.contains("c$distribute a(*, block)"), "{text}");
        assert!(text.contains("c$redistribute a(block, *)"), "{text}");
        assert!(text.contains("c$resize_team(4)"), "{text}");
        assert!(
            text.contains("c$doacross local(j, i) affinity(j) = data(a(1, j))"),
            "{text}"
        );
        let compiled = dsm_compile::compile_strings(
            &[("p.f", text.as_str())],
            &dsm_compile::OptConfig::default(),
        );
        assert!(compiled.is_ok(), "{compiled:?}\n{text}");
        let j = plan.to_json(&an);
        assert!(j.contains("\"redistributes\""), "{j}");
        assert!(j.contains("\"resizes\""), "{j}");
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }
}
