//! `dsmtune` — the standalone auto-distribution planner CLI.
//!
//! Strips any directives from the input program, searches for the best
//! distribution plan on the simulated machine, verifies it against the
//! conformance oracle, and prints the chosen directives. `--plan-json`
//! writes the machine-readable plan; `--emit` writes the annotated
//! Fortran.

use std::process::ExitCode;

use dsm_advisor::{advise, migration_baselines, AdvisorConfig, MigrationRow};
use dsm_machine::MigrationPolicy;

const USAGE: &str = "usage: dsmtune [options] file.f [file.f ...]
  -p, --procs N      processors (default 8)
      --scale N      machine scale divisor (default 64)
      --budget N     max candidate simulations (default 48)
      --threads N    concurrent evaluations (default: host cores)
      --plan-json F  write the machine-readable plan to F
      --emit F       write the annotated Fortran main file to F
      --no-verify    skip oracle verification of the winner
      --baseline=migrate  also run the plan's loops with no placement
                     under off/threshold/competitive migration and print
                     the directive-vs-migration comparison table
";

fn num_arg(args: &mut std::env::Args, flag: &str) -> Result<usize, String> {
    args.next()
        .filter(|v| !v.starts_with('-'))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("dsmtune: {flag} requires a number"))
}

fn path_arg(args: &mut std::env::Args, flag: &str) -> Result<String, String> {
    args.next()
        .filter(|v| !v.starts_with('-'))
        .ok_or_else(|| format!("dsmtune: {flag} requires an output path"))
}

fn run() -> Result<(), String> {
    let mut cfg = AdvisorConfig::default();
    let mut plan_json: Option<String> = None;
    let mut emit: Option<String> = None;
    let mut baseline_migrate = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args();
    args.next();
    while let Some(a) = args.next() {
        match a.as_str() {
            "-p" | "--procs" => cfg.nprocs = num_arg(&mut args, &a)?,
            "--scale" => cfg.scale = num_arg(&mut args, &a)?,
            "--budget" => cfg.budget = num_arg(&mut args, &a)?,
            "--threads" => cfg.threads = num_arg(&mut args, &a)?,
            "--plan-json" => plan_json = Some(path_arg(&mut args, &a)?),
            "--emit" => emit = Some(path_arg(&mut args, &a)?),
            "--no-verify" => cfg.verify = false,
            "--baseline=migrate" => baseline_migrate = true,
            "--baseline" => match args.next().as_deref() {
                Some("migrate") => baseline_migrate = true,
                other => {
                    return Err(format!(
                        "dsmtune: unknown --baseline mode {other:?} (try migrate)\n{USAGE}"
                    ))
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(());
            }
            _ if a.starts_with('-') => return Err(format!("dsmtune: unknown option {a}\n{USAGE}")),
            _ => files.push(a),
        }
    }
    if files.is_empty() {
        return Err(format!("dsmtune: no input files\n{USAGE}"));
    }
    let sources = dsm_compile::load_sources(&files).map_err(|e| format!("dsmtune: {e}"))?;

    let advice = advise(&sources, &cfg).map_err(|e| format!("dsmtune: {e}"))?;

    println!(
        "auto: baseline {} cycles ({} remote misses)",
        advice.baseline.total_cycles, advice.baseline.remote_misses
    );
    println!(
        "auto: best     {} cycles ({} remote misses), speedup {:.2}x",
        advice.best.total_cycles,
        advice.best.remote_misses,
        advice.speedup()
    );
    println!(
        "auto: searched {} candidates ({} pruned, {} rejected) in {:?} ({:?} serial)",
        advice.evaluated,
        advice.pruned,
        advice.rejected,
        advice.search_wall,
        advice.serial_eval_wall
    );
    if advice.verified_runs > 0 {
        println!(
            "auto: winner verified against the oracle ({} runs)",
            advice.verified_runs
        );
    }
    for d in advice.directives() {
        println!("auto:   {d}");
    }
    if baseline_migrate {
        let policies = [
            MigrationPolicy::Off,
            MigrationPolicy::threshold(4),
            MigrationPolicy::competitive(4),
        ];
        let rows = migration_baselines(&advice, &cfg, &policies)
            .map_err(|e| format!("dsmtune: --baseline=migrate: {e}"))?;
        print_migration_table(&rows, &advice);
    }
    if let Some(p) = &plan_json {
        std::fs::write(p, advice.plan_json())
            .map_err(|e| format!("dsmtune: cannot write {p}: {e}"))?;
        println!("auto: plan written to {p}");
    }
    if let Some(p) = &emit {
        std::fs::write(p, advice.emitted())
            .map_err(|e| format!("dsmtune: cannot write {p}: {e}"))?;
        println!("auto: annotated Fortran written to {p}");
    }
    Ok(())
}

/// The directive-vs-migration table: the plan's loops under first-touch
/// placement and each migration policy, then the full directive plan.
fn print_migration_table(rows: &[MigrationRow], advice: &dsm_advisor::Advice) {
    println!("=== directive plan vs reactive migration ===");
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10}",
        "policy", "total-cycles", "kernel-cycles", "remote-misses", "pages-mig"
    );
    for r in rows {
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>10}",
            r.policy.to_string(),
            r.measure.total_cycles,
            r.measure.kernel_cycles,
            r.measure.remote_misses,
            r.pages_migrated
        );
    }
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>10}",
        "plan", advice.best.total_cycles, advice.best.kernel_cycles, advice.best.remote_misses, 0
    );
    if let Some(best) = rows
        .iter()
        .filter(|r| !r.policy.is_off())
        .min_by_key(|r| r.measure.kernel_cycles)
    {
        let speedup = best.measure.kernel_cycles as f64 / advice.best.kernel_cycles.max(1) as f64;
        println!(
            "plan speedup over best migration policy ({}): {:.2}x kernel cycles",
            best.policy, speedup
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
