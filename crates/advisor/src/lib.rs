//! # dsm-advisor
//!
//! The auto-distribution planner: a feedback-directed search engine that
//! picks the data-distribution directives for you.
//!
//! Given an (optionally annotated) Fortran program, the advisor
//!
//! 1. strips any existing placement directives and runs the program
//!    instrumented, consuming the profiler's structured attribution
//!    (per-array remote fills, misplaced pages, per-region flips) to
//!    seed a candidate space: regular vs reshaped distributions,
//!    `block`/`cyclic(k)`/`*` per dimension, `onto` grids, per-loop
//!    `doacross`/`affinity`/`nest` choices, and `redistribute` points
//!    between phases;
//! 2. prunes candidates with a static cost model over the machine's
//!    hop/latency configuration ([`dsm_machine::CostModel`]) and
//!    evaluates the survivors concurrently on host threads under a
//!    search budget;
//! 3. verifies the winning plan bit-identically against the
//!    differential conformance oracle;
//! 4. emits both a machine-readable JSON plan and the rewritten Fortran
//!    with the chosen directives spliced in.
//!
//! Entry points: [`advise`] as a library, `dsmtune` as a CLI, and
//! `dsmfc --auto` in `dsm-core`.

pub mod analyze;
pub mod cost;
pub mod plan;
pub mod search;
pub mod verify;

use std::time::Duration;

use dsm_compile::OptConfig;
use dsm_exec::Profile;
use dsm_machine::MigrationPolicy;

pub use analyze::{analyze, Analysis, ArrayInfo, LoopSite};
pub use plan::{Di, Plan, PlanDist, PlanLoop, PlanRedist, PlanResize};
pub use search::{Eval, SearchOutcome};

/// Search knobs.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Processors of the simulated machine (and the `doacross` width).
    pub nprocs: usize,
    /// `MachineConfig::scaled_origin2000` divisor.
    pub scale: usize,
    /// Maximum candidate simulations (the baseline is free).
    pub budget: usize,
    /// Host threads evaluating candidates concurrently.
    pub threads: usize,
    /// Verify the winner against the conformance oracle.
    pub verify: bool,
    /// Compiler configuration used for every run.
    pub opt: OptConfig,
    /// Interpreter step cap per candidate (hang protection).
    pub max_steps: u64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            nprocs: 8,
            scale: 64,
            budget: 48,
            threads: std::thread::available_parallelism().map_or(4, usize::from),
            verify: true,
            opt: OptConfig::default(),
            max_steps: 500_000_000,
        }
    }
}

/// What went wrong.
#[derive(Debug)]
pub enum AdvisorError {
    /// The input program did not parse/analyze.
    Analyze(Vec<dsm_frontend::CompileError>),
    /// The stripped baseline did not compile or run.
    Baseline(String),
    /// No evaluated plan passed oracle verification.
    Verify(String),
}

impl std::fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdvisorError::Analyze(es) => {
                write!(f, "analysis failed")?;
                for e in es {
                    write!(f, "\n  {}:{}: {}", e.file_name, e.span.line, e.msg)?;
                }
                Ok(())
            }
            AdvisorError::Baseline(m) => write!(f, "baseline failed: {m}"),
            AdvisorError::Verify(m) => write!(f, "no plan verified: {m}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

/// One measurement triple reported for the baseline and the winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measure {
    /// Simulated wall-clock cycles.
    pub total_cycles: u64,
    /// Parallel-region cycles (total when none).
    pub kernel_cycles: u64,
    /// Remote memory fills.
    pub remote_misses: u64,
}

impl From<&Eval> for Measure {
    fn from(e: &Eval) -> Self {
        Measure {
            total_cycles: e.total_cycles,
            kernel_cycles: e.kernel_cycles,
            remote_misses: e.remote_misses,
        }
    }
}

/// The advisor's output: the winning plan, the annotated program, and
/// the evidence trail.
#[derive(Debug)]
pub struct Advice {
    /// Program analysis the plan indexes into.
    pub analysis: Analysis,
    /// The winning plan.
    pub plan: Plan,
    /// The stripped sources with the winning directives spliced in.
    pub annotated: Vec<(String, String)>,
    /// Baseline (stripped, unannotated) measurement.
    pub baseline: Measure,
    /// Winner measurement.
    pub best: Measure,
    /// Profile of the winning plan's run.
    pub profile: Option<Box<Profile>>,
    /// Candidate simulations performed.
    pub evaluated: usize,
    /// Candidates dropped by the static cost model or budget.
    pub pruned: usize,
    /// Candidates rejected (compile/run failure or capture mismatch).
    pub rejected: usize,
    /// Oracle runs that agreed with the winner (0 when verification was
    /// disabled).
    pub verified_runs: usize,
    /// Host wall-clock of the whole search.
    pub search_wall: Duration,
    /// Sum of individual candidate run times (serial cost of the same
    /// search).
    pub serial_eval_wall: Duration,
}

impl Advice {
    /// Winner speedup over the baseline in simulated cycles.
    pub fn speedup(&self) -> f64 {
        if self.best.total_cycles == 0 {
            return 1.0;
        }
        self.baseline.total_cycles as f64 / self.best.total_cycles as f64
    }

    /// The chosen directive lines, in splice order.
    pub fn directives(&self) -> Vec<String> {
        self.plan.directives(&self.analysis)
    }

    /// Machine-readable plan report.
    pub fn plan_json(&self) -> String {
        let dirs = self
            .directives()
            .into_iter()
            .map(|d| format!("\"{}\"", d.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"baseline\": {{\"total_cycles\": {}, \"kernel_cycles\": {}, \"remote_misses\": {}}},\n  \
             \"best\": {{\"total_cycles\": {}, \"kernel_cycles\": {}, \"remote_misses\": {}}},\n  \
             \"speedup\": {:.4},\n  \"evaluated\": {},\n  \"pruned\": {},\n  \"rejected\": {},\n  \
             \"verified_runs\": {},\n  \"search_wall_ms\": {},\n  \"serial_eval_wall_ms\": {},\n  \
             \"plan\": {},\n  \"directives\": [{}]\n}}\n",
            self.baseline.total_cycles,
            self.baseline.kernel_cycles,
            self.baseline.remote_misses,
            self.best.total_cycles,
            self.best.kernel_cycles,
            self.best.remote_misses,
            self.speedup(),
            self.evaluated,
            self.pruned,
            self.rejected,
            self.verified_runs,
            self.search_wall.as_millis(),
            self.serial_eval_wall.as_millis(),
            self.plan.to_json(&self.analysis),
            dirs
        )
    }

    /// The annotated main-file text (what `--emit-fortran` writes).
    pub fn emitted(&self) -> &str {
        &self.annotated[self.analysis.main_file].1
    }
}

/// Run the full advisor pipeline over `sources`.
///
/// Existing directives in `sources` are stripped first — the advisor
/// starts from the bare program, so it can be compared against (or
/// replace) hand annotations.
///
/// # Errors
///
/// [`AdvisorError`] on parse failure, a broken baseline, or — when
/// `cfg.verify` is on — no evaluated plan passing the oracle.
pub fn advise(sources: &[(String, String)], cfg: &AdvisorConfig) -> Result<Advice, AdvisorError> {
    let an = analyze(sources).map_err(AdvisorError::Analyze)?;
    let outcome = search::search(&an, cfg).map_err(AdvisorError::Baseline)?;
    let captures: Vec<String> = an.arrays.iter().map(|a| a.name.clone()).collect();

    // Best-first: verify the winner, fall back to the next-best plan if
    // the oracle disagrees (it should not, but the search only checked
    // one machine configuration).
    let mut chosen: Option<(Eval, usize)> = None;
    let mut last_err = String::new();
    for eval in outcome.ranked.iter().take(if cfg.verify { 3 } else { 1 }) {
        if !cfg.verify {
            chosen = Some((eval.clone(), 0));
            break;
        }
        let annotated = eval.plan.annotate(&an);
        match verify::verify(&annotated, &captures, cfg.nprocs) {
            Ok(runs) => {
                chosen = Some((eval.clone(), runs));
                break;
            }
            Err(e) => last_err = e,
        }
    }
    let Some((winner, verified_runs)) = chosen else {
        return Err(AdvisorError::Verify(last_err));
    };

    let annotated = winner.plan.annotate(&an);
    // Re-run the winner with profiling on: the emitted plan ships with
    // the attribution evidence that justifies it.
    let ctx_profile = {
        let rerun_cfg = cfg.clone();
        let ctx_an = an.clone();
        profile_plan(&winner.plan, &ctx_an, &rerun_cfg)
    };

    Ok(Advice {
        plan: winner.plan.clone(),
        annotated,
        baseline: Measure::from(&outcome.baseline),
        best: Measure::from(&winner),
        profile: ctx_profile,
        evaluated: outcome.evaluated,
        pruned: outcome.pruned,
        rejected: outcome.rejected,
        verified_runs,
        search_wall: outcome.search_wall,
        serial_eval_wall: outcome.serial_eval_wall,
        analysis: an,
    })
}

/// One row of the directive-vs-migration comparison printed by
/// `dsmtune --baseline=migrate`: the winning plan's parallel loops with
/// every placement directive (and affinity clause) removed — i.e. the
/// program a placement-oblivious compiler would run, placed by first
/// touch — executed under one reactive page-migration policy.
#[derive(Debug, Clone)]
pub struct MigrationRow {
    /// The policy this row ran under.
    pub policy: MigrationPolicy,
    /// The run's measurement triple.
    pub measure: Measure,
    /// Pages the daemon moved.
    pub pages_migrated: u64,
    /// Cycles the daemon charged for copies and shootdowns.
    pub migration_cycles: u64,
}

/// Measure the migration alternative to the chosen plan: strip the plan
/// down to its parallel loops (no distributions, no affinity, no
/// redistributes) and run that first-touch program under each of
/// `policies` on the same machine configuration the search used.
///
/// # Errors
///
/// [`AdvisorError::Baseline`] when the stripped-loop program fails to
/// compile or run — which the search's own baseline makes unlikely.
pub fn migration_baselines(
    advice: &Advice,
    cfg: &AdvisorConfig,
    policies: &[MigrationPolicy],
) -> Result<Vec<MigrationRow>, AdvisorError> {
    use dsm_machine::{Machine, MachineConfig};
    let loops_only = Plan {
        dists: Vec::new(),
        redists: Vec::new(),
        resizes: Vec::new(),
        loops: advice
            .plan
            .loops
            .iter()
            .map(|l| PlanLoop {
                affinity: None,
                ..l.clone()
            })
            .collect(),
    };
    let annotated = loops_only.annotate(&advice.analysis);
    let compiled = dsm_compile::compile_sources(&annotated, &cfg.opt)
        .map_err(|e| AdvisorError::Baseline(format!("loops-only program: {e:?}")))?;
    let mut rows = Vec::with_capacity(policies.len());
    for &policy in policies {
        let mut machine = Machine::new(MachineConfig::scaled_origin2000(cfg.nprocs, cfg.scale));
        // Threaded teams, unlike the advisor's serial-replay search runs:
        // the migration daemon's behaviour depends on reference counters
        // accumulating from all members concurrently, and serial replay
        // distorts that sampling (one member at a time dominates).
        let opts = dsm_exec::ExecOptions::new(cfg.nprocs)
            .max_steps(cfg.max_steps)
            .migration(policy);
        let report = dsm_exec::run_outcome(&mut machine, &compiled.program, &opts)
            .map_err(|e| AdvisorError::Baseline(format!("migrate={policy}: {e}")))?
            .report;
        rows.push(MigrationRow {
            policy,
            measure: Measure {
                total_cycles: report.total_cycles,
                kernel_cycles: report.kernel_cycles(),
                remote_misses: report.total.remote_misses,
            },
            pages_migrated: report.pages_migrated,
            migration_cycles: report.migration_cycles,
        });
    }
    Ok(rows)
}

fn profile_plan(plan: &Plan, an: &Analysis, cfg: &AdvisorConfig) -> Option<Box<Profile>> {
    use dsm_machine::{Machine, MachineConfig};
    let annotated = plan.annotate(an);
    let compiled = dsm_compile::compile_sources(&annotated, &cfg.opt).ok()?;
    let mut machine = Machine::new(MachineConfig::scaled_origin2000(cfg.nprocs, cfg.scale));
    let opts = dsm_exec::ExecOptions::new(cfg.nprocs)
        .serial_team(true)
        .profile(true)
        .max_steps(cfg.max_steps);
    dsm_exec::run_outcome(&mut machine, &compiled.program, &opts)
        .ok()?
        .report
        .profile
}
