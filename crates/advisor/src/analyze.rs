//! Static analysis of an unannotated program: which arrays exist, which
//! loops are *statically confluent* (safe to annotate `c$doacross`), and
//! where the program's phases sit — everything the planner needs to
//! enumerate candidate directive plans.
//!
//! The confluence rule mirrors the conformance generator's
//! by-construction safety invariant (crates/conformance/src/gen.rs):
//! inside a candidate parallel loop over `v`,
//!
//! * every assignment targets an array element whose index carries `v`
//!   bare in some slot (distinct `v` ⇒ distinct elements, so iterations
//!   never write the same location),
//! * no scalar assignments, calls, redistributes or barriers occur,
//! * arrays written by the loop are read only at index forms identical
//!   to one of their writes (`a(i) = a(i) * 0.5` is fine; any other read
//!   could observe another iteration's write),
//! * loop bounds reference no arrays.
//!
//! Any loop passing these checks computes the same values under any
//! schedule, which is exactly what lets the planner flip it parallel and
//! rely on bit-identical captures.

use std::collections::HashMap;

use dsm_frontend::ast::{ABinOp, AExpr, AStmt, AUnOp, UnitKind};
use dsm_frontend::{parse_source, strip_directives, CompileError, ErrorKind, Span};

/// One main-program array eligible for distribution directives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayInfo {
    /// Declared name.
    pub name: String,
    /// Constant extents (column-major; element size is 8 bytes).
    pub dims: Vec<i64>,
}

impl ArrayInfo {
    /// Total element count.
    pub fn elems(&self) -> i64 {
        self.dims.iter().product()
    }
}

/// One statically-confluent loop: a legal `c$doacross` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSite {
    /// Source file index (into the stripped source list).
    pub file: usize,
    /// 1-based line of the `do` statement in the stripped source.
    pub line: usize,
    /// Pre-order position among all statements (phase ordering).
    pub order: usize,
    /// Direct child of the main program body (a redistribute can be
    /// inserted immediately before it).
    pub top_level: bool,
    /// Parallel loop variable.
    pub var: String,
    /// Arrays written, with the index slot carrying `var` bare.
    pub writes: Vec<(String, usize)>,
    /// Declared arrays read, with the slot carrying `var` bare (if any).
    pub reads: Vec<(String, Option<usize>)>,
    /// Loop variables of the nest (the `local(...)` clause).
    pub locals: Vec<String>,
    /// Inner loop variable when the body is a perfect 2-deep nest whose
    /// inner bounds do not depend on `var` (a `nest(v, w)` candidate).
    pub nest: Option<String>,
}

/// Everything the planner knows about one program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The directive-stripped sources the plan will be spliced into.
    pub stripped: Vec<(String, String)>,
    /// Main-program arrays with constant shapes.
    pub arrays: Vec<ArrayInfo>,
    /// Statically-confluent loops, in program order.
    pub sites: Vec<LoopSite>,
    /// File index of the main program unit.
    pub main_file: usize,
    /// Line (in the stripped main file) before which `c$distribute`
    /// directives are inserted — the first executable statement.
    pub decl_insert_line: usize,
}

impl Analysis {
    /// Shape of a named array, if known.
    pub fn array(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

/// Strip directives from `sources` and analyze the result.
///
/// # Errors
///
/// Returns parse errors, or a synthesized error when no `program` unit
/// exists.
pub fn analyze(sources: &[(String, String)]) -> Result<Analysis, Vec<CompileError>> {
    let stripped: Vec<(String, String)> = sources
        .iter()
        .map(|(n, t)| (n.clone(), strip_directives(t)))
        .collect();
    let mut units = Vec::new();
    for (idx, (name, text)) in stripped.iter().enumerate() {
        units.extend(parse_source(idx, name, text)?);
    }
    let Some(main) = units.iter().find(|u| u.kind == UnitKind::Program) else {
        return Err(vec![CompileError {
            span: Span::new(0, 1),
            kind: ErrorKind::Sema,
            msg: "advisor needs a `program` unit".into(),
            file_name: stripped.first().map(|(n, _)| n.clone()).unwrap_or_default(),
        }]);
    };

    // Fold `parameter` constants so declared extents become numbers.
    let mut params: HashMap<String, i64> = HashMap::new();
    for (_, name, expr) in &main.parameters {
        if let Some(v) = const_eval(expr, &params) {
            params.insert(name.clone(), v);
        }
    }
    let arrays: Vec<ArrayInfo> = main
        .decls
        .iter()
        .filter(|d| !d.dims.is_empty())
        .filter_map(|d| {
            let dims: Option<Vec<i64>> = d.dims.iter().map(|e| const_eval(e, &params)).collect();
            dims.map(|dims| ArrayInfo {
                name: d.name.clone(),
                dims,
            })
        })
        .collect();
    let array_names: Vec<&str> = arrays.iter().map(|a| a.name.as_str()).collect();

    let decl_insert_line = main
        .body
        .first()
        .map(|s| stmt_span(s).line)
        .unwrap_or(main.span.line + 1);

    let mut sites = Vec::new();
    let mut order = 0usize;
    find_sites(
        &main.body,
        main.span.file,
        true,
        &array_names,
        &mut order,
        &mut sites,
    );

    Ok(Analysis {
        stripped,
        arrays,
        sites,
        main_file: main.file,
        decl_insert_line,
    })
}

fn stmt_span(s: &AStmt) -> Span {
    match s {
        AStmt::Assign { span, .. }
        | AStmt::Do { span, .. }
        | AStmt::If { span, .. }
        | AStmt::Call { span, .. }
        | AStmt::Redistribute { span, .. }
        | AStmt::ResizeTeam { span, .. }
        | AStmt::Barrier { span } => *span,
    }
}

fn const_eval(e: &AExpr, params: &HashMap<String, i64>) -> Option<i64> {
    match e {
        AExpr::Int(v) => Some(*v),
        AExpr::Name(n) => params.get(n).copied(),
        AExpr::Un(AUnOp::Neg, a) => Some(-const_eval(a, params)?),
        AExpr::Bin(op, a, b) => {
            let (a, b) = (const_eval(a, params)?, const_eval(b, params)?);
            match op {
                ABinOp::Add => Some(a + b),
                ABinOp::Sub => Some(a - b),
                ABinOp::Mul => Some(a * b),
                ABinOp::Div => (b != 0).then(|| a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

fn find_sites(
    stmts: &[AStmt],
    file: usize,
    top_level: bool,
    arrays: &[&str],
    order: &mut usize,
    sites: &mut Vec<LoopSite>,
) {
    for stmt in stmts {
        *order += 1;
        let my_order = *order;
        match stmt {
            AStmt::Do {
                span,
                var,
                lb,
                ub,
                step,
                body,
                ..
            } => {
                if let Some(site) = check_confluent(
                    *span, file, my_order, top_level, var, lb, ub, step, body, arrays,
                ) {
                    sites.push(site);
                    // A confluent loop is annotated as a whole; do not
                    // offer its inner loops as separate (nested doacross
                    // is illegal).
                } else {
                    find_sites(body, file, false, arrays, order, sites);
                }
            }
            AStmt::If {
                then_body,
                else_body,
                ..
            } => {
                find_sites(then_body, file, false, arrays, order, sites);
                find_sites(else_body, file, false, arrays, order, sites);
            }
            _ => {}
        }
    }
}

/// Collected facts about one loop body, built by [`scan_body`].
#[derive(Default)]
struct BodyFacts {
    /// (array, bare-var slot) per assignment.
    writes: Vec<(String, usize)>,
    /// Exact lhs index forms per written array (identity-read check).
    lhs_forms: Vec<(String, Vec<AExpr>)>,
    /// Every expression evaluated in a read position.
    read_exprs: Vec<AExpr>,
    /// Loop variables of inner serial loops.
    inner_vars: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn check_confluent(
    span: Span,
    file: usize,
    order: usize,
    top_level: bool,
    var: &str,
    lb: &AExpr,
    ub: &AExpr,
    step: &Option<AExpr>,
    body: &[AStmt],
    arrays: &[&str],
) -> Option<LoopSite> {
    if has_index(lb) || has_index(ub) || step.as_ref().is_some_and(has_index) {
        return None;
    }
    let mut facts = BodyFacts::default();
    scan_body(body, var, &mut facts)?;
    if facts.writes.is_empty() {
        return None; // nothing parallel about it
    }
    // Several assignments may target the same (array, slot); report one.
    let mut seen: Vec<(String, usize)> = Vec::new();
    facts.writes.retain(|w| {
        if seen.contains(w) {
            false
        } else {
            seen.push(w.clone());
            true
        }
    });
    // Reads of written arrays must match a write's exact index form.
    let written: Vec<&str> = facts.writes.iter().map(|(n, _)| n.as_str()).collect();
    for e in &facts.read_exprs {
        if !reads_ok(e, &written, &facts.lhs_forms) {
            return None;
        }
    }

    // Record which declared arrays are read (for the cost model).
    let mut reads: Vec<(String, Option<usize>)> = Vec::new();
    for e in &facts.read_exprs {
        collect_reads(e, arrays, var, &mut reads);
    }
    reads.retain(|(n, _)| !written.contains(&n.as_str()));

    let mut locals = vec![var.to_string()];
    for v in &facts.inner_vars {
        if !locals.contains(v) {
            locals.push(v.clone());
        }
    }
    let nest = match body {
        [AStmt::Do {
            var: inner,
            lb,
            ub,
            step,
            ..
        }] if !expr_mentions(lb, var)
            && !expr_mentions(ub, var)
            && !step.as_ref().is_some_and(|s| expr_mentions(s, var)) =>
        {
            Some(inner.clone())
        }
        _ => None,
    };
    Some(LoopSite {
        file,
        line: span.line,
        order,
        top_level,
        var: var.to_string(),
        writes: facts.writes,
        reads,
        locals,
        nest,
    })
}

/// Walk a candidate body collecting facts; `None` means an outright
/// disqualifier (scalar write, call, redistribute, barrier, bad write
/// index, inner loop reusing `var`).
fn scan_body(stmts: &[AStmt], var: &str, facts: &mut BodyFacts) -> Option<()> {
    for stmt in stmts {
        match stmt {
            AStmt::Assign {
                lhs,
                lhs_indices,
                rhs,
                ..
            } => {
                if lhs_indices.is_empty() {
                    return None; // scalar write races
                }
                let slot = lhs_indices
                    .iter()
                    .position(|e| matches!(e, AExpr::Name(n) if n == var))?;
                facts.writes.push((lhs.clone(), slot));
                facts.lhs_forms.push((lhs.clone(), lhs_indices.clone()));
                // Index expressions of the lhs are themselves reads.
                for e in lhs_indices {
                    facts.read_exprs.push(e.clone());
                }
                facts.read_exprs.push(rhs.clone());
            }
            AStmt::Do {
                var: w,
                lb,
                ub,
                step,
                body,
                ..
            } => {
                if w == var || has_index(lb) || has_index(ub) {
                    return None;
                }
                if let Some(s) = step {
                    if has_index(s) {
                        return None;
                    }
                }
                facts.read_exprs.push(lb.clone());
                facts.read_exprs.push(ub.clone());
                if !facts.inner_vars.contains(w) {
                    facts.inner_vars.push(w.clone());
                }
                scan_body(body, var, facts)?;
            }
            AStmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                facts.read_exprs.push(cond.clone());
                scan_body(then_body, var, facts)?;
                scan_body(else_body, var, facts)?;
            }
            AStmt::Call { .. }
            | AStmt::Redistribute { .. }
            | AStmt::ResizeTeam { .. }
            | AStmt::Barrier { .. } => return None,
        }
    }
    Some(())
}

/// Does the expression contain any `name(args)` reference?
fn has_index(e: &AExpr) -> bool {
    match e {
        AExpr::Index(..) => true,
        AExpr::Un(_, a) => has_index(a),
        AExpr::Bin(_, a, b) => has_index(a) || has_index(b),
        _ => false,
    }
}

fn expr_mentions(e: &AExpr, name: &str) -> bool {
    match e {
        AExpr::Name(n) => n == name,
        AExpr::Index(n, args) => n == name || args.iter().any(|a| expr_mentions(a, name)),
        AExpr::Un(_, a) => expr_mentions(a, name),
        AExpr::Bin(_, a, b) => expr_mentions(a, name) || expr_mentions(b, name),
        _ => false,
    }
}

/// Every reference to a written array must replicate one of its write
/// index forms exactly.
fn reads_ok(e: &AExpr, written: &[&str], lhs_forms: &[(String, Vec<AExpr>)]) -> bool {
    match e {
        AExpr::Index(name, args) => {
            if written.contains(&name.as_str())
                && !lhs_forms.iter().any(|(n, f)| n == name && f == args)
            {
                return false;
            }
            args.iter().all(|a| reads_ok(a, written, lhs_forms))
        }
        AExpr::Un(_, a) => reads_ok(a, written, lhs_forms),
        AExpr::Bin(_, a, b) => reads_ok(a, written, lhs_forms) && reads_ok(b, written, lhs_forms),
        _ => true,
    }
}

fn collect_reads(e: &AExpr, arrays: &[&str], var: &str, out: &mut Vec<(String, Option<usize>)>) {
    match e {
        AExpr::Index(name, args) => {
            if arrays.contains(&name.as_str()) {
                let slot = args
                    .iter()
                    .position(|a| matches!(a, AExpr::Name(n) if n == var));
                match out.iter_mut().find(|(n, _)| n == name) {
                    Some((_, s)) => {
                        if s.is_none() {
                            *s = slot;
                        }
                    }
                    None => out.push((name.clone(), slot)),
                }
            }
            for a in args {
                collect_reads(a, arrays, var, out);
            }
        }
        AExpr::Un(_, a) => collect_reads(a, arrays, var, out),
        AExpr::Bin(_, a, b) => {
            collect_reads(a, arrays, var, out);
            collect_reads(b, arrays, var, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAT: &str = "\
      program heat
      integer i, step, nsteps
      real*8 u(64), unew(64)
c$doacross local(i) affinity(i) = data(u(i))
      do i = 1, 64
        u(i) = 0.0
        if (i .ge. 20 .and. i .le. 30) u(i) = 100.0
      enddo
      nsteps = 3
      do step = 1, nsteps
        do i = 2, 63
          unew(i) = u(i) + 0.25 * (u(i-1) - 2.0*u(i) + u(i+1))
        enddo
        do i = 2, 63
          u(i) = unew(i)
        enddo
      enddo
      end
";

    fn an(src: &str) -> Analysis {
        analyze(&[("t.f".to_string(), src.to_string())]).expect("analyzes")
    }

    #[test]
    fn heat_finds_three_sites_not_the_step_loop() {
        let a = an(HEAT);
        assert_eq!(a.arrays.len(), 2);
        assert_eq!(a.array("u").unwrap().dims, vec![64]);
        assert_eq!(a.sites.len(), 3, "{:#?}", a.sites);
        // Init loop writes u at slot 0, is top level; the step loop is
        // not a site, its two inner loops are (not top level).
        assert_eq!(a.sites[0].writes, vec![("u".to_string(), 0)]);
        assert!(a.sites[0].top_level);
        assert!(!a.sites[1].top_level);
        assert_eq!(a.sites[1].writes, vec![("unew".to_string(), 0)]);
        assert_eq!(a.sites[1].reads, vec![("u".to_string(), Some(0))]);
        assert_eq!(a.sites[2].writes, vec![("u".to_string(), 0)]);
        // Directives were stripped before analysis.
        assert!(!a.stripped[0].1.contains("c$doacross"));
    }

    #[test]
    fn phases_sites_conflict_on_slots() {
        let src = "\
      program phases
      integer i, j
      real*8 a(16, 16)
      do j = 1, 16
        do i = 1, 16
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, 16
        do j = 1, 16
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
";
        let a = an(src);
        assert_eq!(a.sites.len(), 2);
        assert_eq!(a.sites[0].writes, vec![("a".to_string(), 1)]);
        assert_eq!(a.sites[1].writes, vec![("a".to_string(), 0)]);
        assert!(a.sites[0].top_level && a.sites[1].top_level);
        assert_eq!(a.sites[0].nest.as_deref(), Some("i"));
        assert_eq!(a.sites[0].locals, vec!["j".to_string(), "i".to_string()]);
    }

    #[test]
    fn unsafe_bodies_are_rejected() {
        // Scalar accumulation races; non-identity read of the written
        // array races; a loop writing nothing is not a site.
        let src = "\
      program bad
      integer i
      real*8 s, a(16)
      s = 0.0
      do i = 1, 16
        s = s + 1.0
      enddo
      do i = 2, 16
        a(i) = a(i-1) + 1.0
      enddo
      do i = 1, 16
        s = 2.0
      enddo
      end
";
        let a = an(src);
        assert!(a.sites.is_empty(), "{:#?}", a.sites);
    }

    #[test]
    fn writes_must_carry_the_loop_var_bare() {
        let src = "\
      program fixed
      integer i
      real*8 a(16)
      do i = 1, 16
        a(1) = 3.0
      enddo
      end
";
        assert!(an(src).sites.is_empty());
    }
}
