//! Static plan pruning: a closed-form memory-fill estimate over the
//! machine's [`CostModel`]. The estimate is deliberately coarse — it only
//! has to *rank* candidates well enough that obviously-bad plans never
//! reach the simulator, not predict cycles.

use dsm_machine::CostModel;

use crate::analyze::Analysis;
use crate::plan::{Di, Plan, PlanDist};

const ELEM_BYTES: u64 = 8;

/// Estimated memory-system cost of running the program under `plan`, in
/// arbitrary comparable units (cycles-ish).
pub fn estimate(plan: &Plan, an: &Analysis, cm: &CostModel, nprocs: usize) -> u64 {
    let line_elems = (cm.line_size as u64 / ELEM_BYTES).max(1);
    let mut total = 0u64;
    for (i, site) in an.sites.iter().enumerate() {
        let parallel = plan.loops.iter().any(|l| l.site == i);
        // The team width in effect at this site: the latest resize point
        // at or before its line, else the full machine.
        let width = plan
            .resizes
            .iter()
            .filter(|r| r.before_line <= site.line)
            .max_by_key(|r| r.before_line)
            .map_or(nprocs, |r| r.team.min(nprocs));
        let mut site_cost = 0u64;
        let accessed = site
            .writes
            .iter()
            .map(|(n, s)| (n.as_str(), Some(*s)))
            .chain(site.reads.iter().map(|(n, s)| (n.as_str(), *s)));
        for (name, slot) in accessed {
            let Some(info) = an.array(name) else { continue };
            let fills = (info.elems().max(1) as u64).div_ceil(line_elems);
            let per_fill = match plan.dist_of(name) {
                Some(d) if parallel => match slot {
                    Some(s) if blocked_on(d, s) && expressible(d, s, &info.dims, cm) => {
                        cm.local_fill
                    }
                    _ => cm.scattered_fill(),
                },
                // A distributed array accessed serially: one processor
                // walks blocks homed all over the machine.
                Some(_) => cm.scattered_fill(),
                // Undistributed + parallel: first touch homed the pages
                // wherever the (likely serial) initializer ran, so every
                // fill hammers one hot node.
                None if parallel => cm.hot_node_fill(),
                None => cm.local_fill,
            };
            site_cost += fills * per_fill;
        }
        if parallel {
            site_cost /= width.max(1) as u64;
        }
        total += site_cost;
    }
    for r in &plan.redists {
        if let Some(info) = an.array(&r.array) {
            let fills = (info.elems().max(1) as u64).div_ceil(line_elems);
            total += fills * cm.mean_remote_fill();
        }
    }
    // A resize re-homes only the delta pages of each distributed array
    // (the scheduled mover), so charge a fraction of a full move.
    for _ in &plan.resizes {
        for d in &plan.dists {
            if let Some(info) = an.array(&d.array) {
                let fills = (info.elems().max(1) as u64).div_ceil(line_elems);
                total += fills * cm.mean_remote_fill() / 2;
            }
        }
    }
    total
}

fn blocked_on(d: &PlanDist, slot: usize) -> bool {
    matches!(d.items.get(slot), Some(Di::Block | Di::Cyclic(_)))
}

/// Can this distribution be honored at page granularity? Reshape always
/// can; a regular distribution only when each node's run of elements
/// along the blocked dimension covers at least a page.
fn expressible(d: &PlanDist, slot: usize, dims: &[i64], cm: &CostModel) -> bool {
    if d.reshape {
        return true;
    }
    if matches!(d.items.get(slot), Some(Di::Cyclic(_))) {
        // Regular cyclic is never page-expressible for the small strides
        // the planner tries.
        return false;
    }
    let stride: u64 = dims[..slot].iter().map(|&d| d.max(1) as u64).product();
    let chunk = (dims[slot].max(1) as u64).div_ceil(cm.n_nodes as u64);
    stride * chunk * ELEM_BYTES >= cm.page_size as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::plan::{block_at, PlanLoop};
    use dsm_machine::MachineConfig;

    const PHASES: &str = "\
      program phases
      integer i, j
      real*8 a(256, 256)
      do j = 1, 256
        do i = 1, 256
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, 256
        do j = 1, 256
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
";

    fn setup() -> (Analysis, CostModel) {
        let an = analyze(&[("p.f".to_string(), PHASES.to_string())]).unwrap();
        (an, MachineConfig::small_test(8).cost_model())
    }

    fn both_parallel(p: Plan) -> Plan {
        p.with_loop(
            0,
            Some(PlanLoop {
                site: 0,
                affinity: None,
                nest: false,
                sched: None,
            }),
        )
        .with_loop(
            1,
            Some(PlanLoop {
                site: 1,
                affinity: None,
                nest: false,
                sched: None,
            }),
        )
    }

    #[test]
    fn matching_distribution_beats_baseline_and_mismatch() {
        let (an, cm) = setup();
        let baseline = estimate(&Plan::default(), &an, &cm, 8);
        // Parallel but undistributed: hot-node per-fill, divided by P.
        let parallel = estimate(&both_parallel(Plan::default()), &an, &cm, 8);
        // Site 0 iterates j (slot 1): (*, block) matches it.
        let good = both_parallel(Plan::default()).with_dist(
            "a",
            Some(PlanDist {
                array: "a".into(),
                items: block_at(1, 2),
                reshape: false,
                onto: vec![],
            }),
        );
        // (block, *) serves neither site well without a reshape: slot-0
        // runs are one column, far below a page.
        let bad = both_parallel(Plan::default()).with_dist(
            "a",
            Some(PlanDist {
                array: "a".into(),
                items: block_at(0, 2),
                reshape: false,
                onto: vec![],
            }),
        );
        let good_est = estimate(&good, &an, &cm, 8);
        let bad_est = estimate(&bad, &an, &cm, 8);
        assert!(good_est < bad_est, "{good_est} !< {bad_est}");
        assert!(good_est < parallel, "{good_est} !< {parallel}");
        assert!(parallel < baseline, "{parallel} !< {baseline}");
    }

    #[test]
    fn reshape_rescues_the_unaligned_slot() {
        let (an, cm) = setup();
        let regular = both_parallel(Plan::default()).with_dist(
            "a",
            Some(PlanDist {
                array: "a".into(),
                items: block_at(0, 2),
                reshape: false,
                onto: vec![],
            }),
        );
        let reshaped = both_parallel(Plan::default()).with_dist(
            "a",
            Some(PlanDist {
                array: "a".into(),
                items: block_at(0, 2),
                reshape: true,
                onto: vec![],
            }),
        );
        // Reshape makes the slot-0 distribution expressible, so site 1
        // (which iterates i) turns local.
        assert!(estimate(&reshaped, &an, &cm, 8) < estimate(&regular, &an, &cm, 8));
    }

    #[test]
    fn redistribute_charges_a_move() {
        let (an, cm) = setup();
        let base = both_parallel(Plan::default()).with_dist(
            "a",
            Some(PlanDist {
                array: "a".into(),
                items: block_at(1, 2),
                reshape: false,
                onto: vec![],
            }),
        );
        let with_move = base.with_redist(crate::plan::PlanRedist {
            array: "a".into(),
            before_line: an.sites[1].line,
            items: block_at(0, 2),
        });
        assert!(estimate(&with_move, &an, &cm, 8) > estimate(&base, &an, &cm, 8));
    }
}
