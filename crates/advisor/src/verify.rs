//! Winner verification: the search's best plan is only *advice* until
//! the differential conformance harness has checked the annotated
//! program bit-identically against the layout-oblivious oracle — across
//! processor counts and execution modes, not just the single
//! configuration the search measured.

use dsm_compile::OptConfig;
use dsm_conformance::{check_sources, Matrix};
use dsm_machine::MigrationPolicy;

/// The verification matrix: uniprocessor plus the search's processor
/// count, default optimization, the three quick modes, migration off
/// and threshold (plans must stay bit-identical when the daemon moves
/// their pages around underneath them).
fn matrix(nprocs: usize) -> Matrix {
    let mut procs = vec![1];
    let p = nprocs.clamp(2, 8);
    if !procs.contains(&p) {
        procs.push(p);
    }
    Matrix {
        procs,
        opt_variants: vec![("default", OptConfig::default())],
        modes: vec![
            (true, false, false),
            (false, false, false),
            (true, true, true),
        ],
        policies: vec![MigrationPolicy::Off, MigrationPolicy::threshold(4)],
        // Winner verification checks placement semantics, not cost
        // estimation; the sampling axis is covered by dsmfuzz.
        sampling: vec![],
    }
}

/// Check an annotated program against the oracle. `Ok(runs)` is the
/// number of executions that agreed; `Err` describes the divergence.
pub fn verify(
    annotated: &[(String, String)],
    captures: &[String],
    nprocs: usize,
) -> Result<usize, String> {
    match check_sources(annotated, captures, &matrix(nprocs)) {
        Ok(stats) => Ok(stats.runs),
        Err(d) => Err(d.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_always_includes_uniprocessor() {
        let m = matrix(8);
        assert_eq!(m.procs, vec![1, 8]);
        let m1 = matrix(1);
        assert_eq!(m1.procs, vec![1, 2]);
    }

    #[test]
    fn a_correct_annotated_program_verifies() {
        let src = "\
      program t
      integer i
      real*8 a(32)
c$distribute a(block)
c$doacross local(i) affinity(i) = data(a(i))
      do i = 1, 32
        a(i) = 2.0 * i
      enddo
      end
";
        let runs = verify(
            &[("t.f".to_string(), src.to_string())],
            &["a".to_string()],
            4,
        )
        .expect("verifies");
        assert!(runs > 0);
    }
}
