//! The feedback-directed search: evaluate candidate plans on the
//! simulated machine, concurrently, under a budget.
//!
//! The search is a sequence of greedy *waves*. Each wave enumerates
//! variants of the incumbent plan along one axis (parallelize loops,
//! distribute one array, refine one loop's clauses, insert a
//! redistribute), prunes them with the static cost estimate, evaluates
//! the survivors on host threads, and adopts the best strict improvement
//! as the new incumbent. Candidates must reproduce the baseline's
//! captured arrays bit-for-bit or they are rejected outright — the
//! planner never trades correctness for cycles.
//!
//! All candidate runs use `serial_team` mode, which is cycle-exact and
//! deterministic, so "fewer total cycles" is a meaningful comparison
//! rather than host-scheduling noise.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dsm_compile::compile_sources;
use dsm_exec::{run_outcome, ExecOptions, Profile};
use dsm_machine::{Machine, MachineConfig};

use crate::analyze::Analysis;
use crate::cost::estimate;
use crate::plan::{block_at, Di, Plan, PlanDist, PlanLoop, PlanRedist, PlanResize};
use crate::AdvisorConfig;

/// Candidates whose static estimate exceeds this multiple of the
/// cheapest estimate in their wave are pruned without simulation.
const PRUNE_FACTOR: u64 = 6;

/// One measured plan.
#[derive(Debug, Clone)]
pub struct Eval {
    /// The plan that was run.
    pub plan: Plan,
    /// Wall-clock simulated cycles (the search's score).
    pub total_cycles: u64,
    /// Parallel-region cycles (total when the run had none).
    pub kernel_cycles: u64,
    /// Machine-wide remote memory fills.
    pub remote_misses: u64,
    /// Host time this single evaluation took.
    pub wall: Duration,
}

/// Search statistics and the measured plans, best first.
#[derive(Debug)]
pub struct SearchOutcome {
    /// The unannotated program's measurement (with its profile).
    pub baseline: Eval,
    /// Baseline profile (feedback that seeded the candidate order).
    pub baseline_profile: Option<Box<Profile>>,
    /// Every measured candidate, sorted by `total_cycles` ascending.
    /// `ranked[0]` is the winner; later entries are verification
    /// fallbacks.
    pub ranked: Vec<Eval>,
    /// Candidate simulations performed (excludes the baseline).
    pub evaluated: usize,
    /// Candidates dropped by the static estimate or the budget.
    pub pruned: usize,
    /// Candidates that failed to compile, run, or reproduce the
    /// baseline captures.
    pub rejected: usize,
    /// Host wall-clock of the whole search.
    pub search_wall: Duration,
    /// Sum of individual candidate run times — what a serial search
    /// would have cost. `search_wall` beating this demonstrates the
    /// evaluation actually ran concurrently.
    pub serial_eval_wall: Duration,
}

/// A candidate that produced no measurement: compile error, runtime
/// error, or capture mismatch.
struct EvalFail;

struct Ctx<'a> {
    an: &'a Analysis,
    cfg: &'a AdvisorConfig,
    captures: Vec<String>,
    baseline_bits: Vec<Vec<u64>>,
}

impl Ctx<'_> {
    fn machine(&self) -> MachineConfig {
        MachineConfig::scaled_origin2000(self.cfg.nprocs, self.cfg.scale)
    }

    fn run(&self, plan: &Plan, profile: bool) -> Result<(Eval, Option<Box<Profile>>), EvalFail> {
        let start = Instant::now();
        let annotated = plan.annotate(self.an);
        let compiled = compile_sources(&annotated, &self.cfg.opt).map_err(|_| EvalFail)?;
        let mut machine = Machine::new(self.machine());
        let names: Vec<&str> = self.captures.iter().map(String::as_str).collect();
        let opts = ExecOptions::new(self.cfg.nprocs)
            .serial_team(true)
            .profile(profile)
            .max_steps(self.cfg.max_steps)
            .capture(&names);
        let mut out = run_outcome(&mut machine, &compiled.program, &opts).map_err(|_| EvalFail)?;
        let bits = capture_bits(&out.captures);
        if !self.baseline_bits.is_empty() && bits != self.baseline_bits {
            return Err(EvalFail);
        }
        let eval = Eval {
            plan: plan.clone(),
            total_cycles: out.report.total_cycles,
            kernel_cycles: out.report.kernel_cycles(),
            remote_misses: out.report.total.remote_misses,
            wall: start.elapsed(),
        };
        Ok((eval, out.report.profile.take()))
    }
}

fn capture_bits(captures: &[Vec<f64>]) -> Vec<Vec<u64>> {
    captures
        .iter()
        .map(|a| a.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Run the full search. The baseline (empty plan) is always measured
/// first, with profiling on, and its captures become the correctness
/// reference every candidate must reproduce.
pub fn search(an: &Analysis, cfg: &AdvisorConfig) -> Result<SearchOutcome, String> {
    let search_start = Instant::now();
    let mut ctx = Ctx {
        an,
        cfg,
        captures: an.arrays.iter().map(|a| a.name.clone()).collect(),
        baseline_bits: Vec::new(),
    };
    // Baseline: the stripped program as-is, profiled for feedback.
    let baseline_plan = Plan::default();
    let annotated = baseline_plan.annotate(an);
    let compiled = compile_sources(&annotated, &cfg.opt).map_err(|es| {
        format!(
            "baseline does not compile: {}",
            es.first().map(|e| e.msg.clone()).unwrap_or_default()
        )
    })?;
    let mut machine = Machine::new(ctx.machine());
    let names: Vec<&str> = ctx.captures.iter().map(String::as_str).collect();
    let opts = ExecOptions::new(cfg.nprocs)
        .serial_team(true)
        .profile(true)
        .max_steps(cfg.max_steps)
        .capture(&names);
    let base_start = Instant::now();
    let mut base_out = run_outcome(&mut machine, &compiled.program, &opts)
        .map_err(|e| format!("baseline run failed: {e}"))?;
    let baseline = Eval {
        plan: baseline_plan,
        total_cycles: base_out.report.total_cycles,
        kernel_cycles: base_out.report.kernel_cycles(),
        remote_misses: base_out.report.total.remote_misses,
        wall: base_start.elapsed(),
    };
    let baseline_profile = base_out.report.profile.take();
    ctx.baseline_bits = capture_bits(&base_out.captures);

    let cm = ctx.machine().cost_model();
    let mut state = State {
        incumbent: baseline.clone(),
        ranked: vec![baseline.clone()],
        evaluated: 0,
        pruned: 0,
        rejected: 0,
        serial_eval_wall: baseline.wall,
    };

    // Wave 1: flip every confluent loop parallel, with and without
    // write-affinity scheduling.
    let wave1 = parallelize_candidates(an);
    run_wave(&ctx, &cm, &mut state, wave1);

    // Wave 2: greedy per-array distribution, worst feedback first.
    for name in arrays_by_remote_misses(an, baseline_profile.as_deref()) {
        let cands = dist_candidates(an, &state.incumbent.plan, &name);
        run_wave(&ctx, &cm, &mut state, cands);
    }

    // Wave 3: per-site clause refinement (affinity target, schedule,
    // nest, or dropping the doacross entirely).
    for site in 0..an.sites.len() {
        let cands = refine_candidates(an, &state.incumbent.plan, site);
        run_wave(&ctx, &cm, &mut state, cands);
    }

    // Wave 4: redistribute between phases that want conflicting homes.
    let cands = redistribute_candidates(an, &state.incumbent.plan);
    run_wave(&ctx, &cm, &mut state, cands);

    // Wave 5: dynamic team resizing around the chosen phases.
    let cands = resize_candidates(an, &state.incumbent.plan, cfg.nprocs);
    run_wave(&ctx, &cm, &mut state, cands);

    state
        .ranked
        .sort_by_key(|e| (e.total_cycles, e.plan.dists.len() + e.plan.loops.len()));
    Ok(SearchOutcome {
        baseline,
        baseline_profile,
        ranked: state.ranked,
        evaluated: state.evaluated,
        pruned: state.pruned,
        rejected: state.rejected,
        search_wall: search_start.elapsed(),
        serial_eval_wall: state.serial_eval_wall,
    })
}

struct State {
    incumbent: Eval,
    ranked: Vec<Eval>,
    evaluated: usize,
    pruned: usize,
    rejected: usize,
    serial_eval_wall: Duration,
}

/// Evaluate one wave of candidates concurrently and fold the best strict
/// improvement into the incumbent.
fn run_wave(ctx: &Ctx<'_>, cm: &dsm_machine::CostModel, state: &mut State, cands: Vec<Plan>) {
    if cands.is_empty() {
        return;
    }
    // Static prune: drop candidates estimated far worse than the
    // cheapest of (wave ∪ incumbent).
    let ests: Vec<u64> = cands
        .iter()
        .map(|p| estimate(p, ctx.an, cm, ctx.cfg.nprocs))
        .collect();
    let floor = ests
        .iter()
        .copied()
        .chain([estimate(&state.incumbent.plan, ctx.an, cm, ctx.cfg.nprocs)])
        .min()
        .unwrap_or(0)
        .max(1);
    let mut survivors: Vec<Plan> = Vec::new();
    for (p, est) in cands.into_iter().zip(ests) {
        if p == state.incumbent.plan || state.ranked.iter().any(|e| e.plan == p) {
            continue; // already measured
        }
        if est / floor >= PRUNE_FACTOR {
            state.pruned += 1;
        } else {
            survivors.push(p);
        }
    }
    // Budget cutoff: never start more simulations than remain.
    let remaining = ctx.cfg.budget.saturating_sub(state.evaluated);
    if survivors.len() > remaining {
        state.pruned += survivors.len() - remaining;
        survivors.truncate(remaining);
    }
    if survivors.is_empty() {
        return;
    }

    let threads = ctx.cfg.threads.max(1).min(survivors.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, Result<Eval, EvalFail>)>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= survivors.len() {
                    break;
                }
                let r = ctx.run(&survivors[i], false).map(|(e, _)| e);
                results.lock().unwrap().push((i, r));
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|(i, _)| *i);
    for (_, r) in results {
        match r {
            Ok(eval) => {
                state.evaluated += 1;
                state.serial_eval_wall += eval.wall;
                if eval.total_cycles < state.incumbent.total_cycles {
                    state.incumbent = eval.clone();
                }
                state.ranked.push(eval);
            }
            Err(EvalFail) => {
                state.evaluated += 1;
                state.rejected += 1;
            }
        }
    }
}

/// Wave 1: all confluent sites parallel — plain, and with affinity to
/// each site's written array.
pub fn parallelize_candidates(an: &Analysis) -> Vec<Plan> {
    if an.sites.is_empty() {
        return Vec::new();
    }
    let plain = Plan {
        loops: (0..an.sites.len())
            .map(|site| PlanLoop {
                site,
                affinity: None,
                nest: false,
                sched: None,
            })
            .collect(),
        ..Plan::default()
    };
    let affine = Plan {
        loops: an
            .sites
            .iter()
            .enumerate()
            .map(|(site, s)| PlanLoop {
                site,
                affinity: s.writes.first().map(|(n, slot)| (n.clone(), *slot)),
                nest: false,
                sched: None,
            })
            .collect(),
        ..Plan::default()
    };
    vec![plain, affine]
}

/// Arrays ordered by the baseline profile's remote-miss attribution
/// (worst first); arrays the profiler never saw keep declaration order.
fn arrays_by_remote_misses(an: &Analysis, profile: Option<&Profile>) -> Vec<String> {
    let mut names: Vec<(u64, usize, String)> = an
        .arrays
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let remote = profile
                .map(|p| {
                    p.arrays
                        .iter()
                        .filter(|ap| ap.name == a.name)
                        .map(|ap| ap.stats.remote_misses + ap.stats.local_misses)
                        .sum()
                })
                .unwrap_or(0);
            (remote, i, a.name.clone())
        })
        .collect();
    names.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    names.into_iter().map(|(_, _, n)| n).collect()
}

/// Wave 2 candidates for one array: regular and reshaped block on each
/// dimension, reshaped cyclic on the first, and (for rank ≥ 2)
/// all-dimensions block with `onto` grids.
pub fn dist_candidates(an: &Analysis, incumbent: &Plan, name: &str) -> Vec<Plan> {
    let Some(info) = an.array(name) else {
        return Vec::new();
    };
    let rank = info.dims.len();
    let mut dists: Vec<PlanDist> = Vec::new();
    for reshape in [false, true] {
        for d in 0..rank {
            dists.push(PlanDist {
                array: name.to_string(),
                items: block_at(d, rank),
                reshape,
                onto: vec![],
            });
        }
    }
    dists.push(PlanDist {
        array: name.to_string(),
        items: (0..rank)
            .map(|d| if d == 0 { Di::Cyclic(4) } else { Di::Star })
            .collect(),
        reshape: true,
        onto: vec![],
    });
    if rank >= 2 {
        for onto in [vec![], vec![1, 2], vec![2, 1]] {
            dists.push(PlanDist {
                array: name.to_string(),
                items: vec![Di::Block; rank],
                reshape: true,
                onto,
            });
        }
    }
    dists
        .into_iter()
        .map(|d| incumbent.with_dist(name, Some(d)))
        .chain([incumbent.with_dist(name, None)])
        .collect()
}

/// Wave 3 candidates for one site: drop the doacross, retarget its
/// affinity at each accessed array, try the nest form, try explicit
/// schedules.
pub fn refine_candidates(an: &Analysis, incumbent: &Plan, site: usize) -> Vec<Plan> {
    let Some(current) = incumbent.loops.iter().find(|l| l.site == site).cloned() else {
        return Vec::new();
    };
    let s = &an.sites[site];
    let mut cands = vec![incumbent.with_loop(site, None)];
    let mut targets: Vec<(String, usize)> = s.writes.clone();
    for (n, slot) in &s.reads {
        if let Some(slot) = slot {
            if !targets.iter().any(|(t, _)| t == n) {
                targets.push((n.clone(), *slot));
            }
        }
    }
    for t in targets {
        cands.push(incumbent.with_loop(
            site,
            Some(PlanLoop {
                affinity: Some(t),
                ..current.clone()
            }),
        ));
    }
    cands.push(incumbent.with_loop(
        site,
        Some(PlanLoop {
            affinity: None,
            ..current.clone()
        }),
    ));
    if s.nest.is_some() {
        cands.push(incumbent.with_loop(
            site,
            Some(PlanLoop {
                affinity: None,
                nest: true,
                ..current.clone()
            }),
        ));
    }
    for sched in [
        dsm_frontend::ast::SchedSpec::Simple,
        dsm_frontend::ast::SchedSpec::Interleave(4),
    ] {
        cands.push(incumbent.with_loop(
            site,
            Some(PlanLoop {
                sched: Some(sched),
                ..current.clone()
            }),
        ));
    }
    cands
}

/// Wave 4: when two parallel phases write the same array along different
/// slots and the later phase is a top-level loop, try starting with the
/// early phase's regular distribution and redistributing to the late
/// phase's just before it (the paper's Section-5 phases pattern). Each
/// move is tried in two schedule variants — a plain `block` target and a
/// `cyclic(4)` target, which the scheduled mover converts chunk-run by
/// chunk-run without an intermediate copy.
pub fn redistribute_candidates(an: &Analysis, incumbent: &Plan) -> Vec<Plan> {
    let mut cands = Vec::new();
    let active: Vec<usize> = incumbent.loops.iter().map(|l| l.site).collect();
    for &i in &active {
        for &j in &active {
            let (si, sj) = (&an.sites[i], &an.sites[j]);
            if si.order >= sj.order || !sj.top_level {
                continue;
            }
            for (w, slot_i) in &si.writes {
                let Some((_, slot_j)) = sj.writes.iter().find(|(n, s)| n == w && s != slot_i)
                else {
                    continue;
                };
                let Some(info) = an.array(w) else { continue };
                let rank = info.dims.len();
                let base = incumbent.with_dist(
                    w,
                    Some(PlanDist {
                        array: w.clone(),
                        items: block_at(*slot_i, rank),
                        reshape: false,
                        onto: vec![],
                    }),
                );
                cands.push(base.with_redist(PlanRedist {
                    array: w.clone(),
                    before_line: sj.line,
                    items: block_at(*slot_j, rank),
                }));
                let mut cyclic = block_at(*slot_j, rank);
                cyclic[*slot_j] = Di::Cyclic(4);
                cands.push(base.with_redist(PlanRedist {
                    array: w.clone(),
                    before_line: sj.line,
                    items: cyclic,
                }));
            }
        }
    }
    cands
}

/// Wave 5: team-resize points. For every adjacent pair of top-level
/// parallel phases the incumbent runs, try shrinking the team to half
/// width for the earlier phase and restoring it just before the later
/// one, plus a variant that stays shrunk to the end. The scheduled
/// mover re-homes only the delta pages at each point, so a resize is
/// cheap where a phase scales poorly.
pub fn resize_candidates(an: &Analysis, incumbent: &Plan, nprocs: usize) -> Vec<Plan> {
    if nprocs < 2 {
        return Vec::new();
    }
    let half = (nprocs / 2).max(1);
    let mut sites: Vec<&crate::analyze::LoopSite> = incumbent
        .loops
        .iter()
        .map(|l| &an.sites[l.site])
        .filter(|s| s.top_level)
        .collect();
    sites.sort_by_key(|s| s.order);
    sites.dedup_by_key(|s| s.line);
    let mut cands = Vec::new();
    for (k, site) in sites.iter().enumerate() {
        // Shrink before this phase, and stay shrunk.
        let shrunk = incumbent.with_resize(PlanResize {
            before_line: site.line,
            team: half,
        });
        // Shrink for this phase only, restoring before the next one.
        if let Some(next) = sites.get(k + 1) {
            cands.push(shrunk.with_resize(PlanResize {
                before_line: next.line,
                team: nprocs,
            }));
        }
        cands.push(shrunk);
    }
    cands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;

    #[test]
    fn candidate_enumeration_covers_the_phases_pattern() {
        let src = "\
      program phases
      integer i, j
      real*8 a(64, 64)
      do j = 1, 64
        do i = 1, 64
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, 64
        do j = 1, 64
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
";
        let an = analyze(&[("p.f".to_string(), src.to_string())]).unwrap();
        let wave1 = parallelize_candidates(&an);
        assert_eq!(wave1.len(), 2);
        assert_eq!(wave1[1].loops[0].affinity, Some(("a".to_string(), 1)));

        let incumbent = wave1[1].clone();
        let dists = dist_candidates(&an, &incumbent, "a");
        assert!(dists.iter().any(|p| p
            .dist_of("a")
            .is_some_and(|d| d.reshape && d.items == vec![Di::Block, Di::Star])));

        let redists = redistribute_candidates(&an, &incumbent);
        assert_eq!(redists.len(), 2, "{redists:#?}");
        let p = &redists[0];
        assert_eq!(p.dist_of("a").unwrap().items, vec![Di::Star, Di::Block]);
        assert_eq!(p.redists[0].items, vec![Di::Block, Di::Star]);
        assert_eq!(p.redists[0].before_line, an.sites[1].line);
        // The schedule variant converts to a cyclic target instead.
        assert_eq!(redists[1].redists[0].items, vec![Di::Cyclic(4), Di::Star]);
    }

    #[test]
    fn resize_wave_offers_shrink_and_restore_points() {
        let src = "\
      program phases
      integer i, j
      real*8 a(64, 64)
      do j = 1, 64
        do i = 1, 64
          a(i, j) = i + j
        enddo
      enddo
      do i = 1, 64
        do j = 1, 64
          a(i, j) = a(i, j) * 0.5
        enddo
      enddo
      end
";
        let an = analyze(&[("p.f".to_string(), src.to_string())]).unwrap();
        let incumbent = parallelize_candidates(&an).remove(0);
        let cands = resize_candidates(&an, &incumbent, 8);
        // Two phases: shrink+restore and stay-shrunk around the first,
        // stay-shrunk before the second.
        assert_eq!(cands.len(), 3, "{cands:#?}");
        let restore = &cands[0];
        assert_eq!(restore.resizes.len(), 2);
        assert_eq!(restore.resizes[0].team, 4);
        assert_eq!(restore.resizes[0].before_line, an.sites[0].line);
        assert_eq!(restore.resizes[1].team, 8);
        assert_eq!(restore.resizes[1].before_line, an.sites[1].line);
        // Every candidate still compiles once annotated.
        for p in &cands {
            let annotated = p.annotate(&an);
            let text = &annotated[0].1;
            assert!(text.contains("c$resize_team(4)"), "{text}");
            let sources: Vec<(&str, &str)> = annotated
                .iter()
                .map(|(n, t)| (n.as_str(), t.as_str()))
                .collect();
            let compiled =
                dsm_compile::compile_strings(&sources, &dsm_compile::OptConfig::default());
            assert!(compiled.is_ok(), "{compiled:?}\n{text}");
        }
        // A one-proc machine has nothing to resize.
        assert!(resize_candidates(&an, &incumbent, 1).is_empty());
    }

    #[test]
    fn refinement_offers_dropping_and_retargeting() {
        let src = "\
      program t
      integer i
      real*8 a(64), b(64)
      do i = 1, 64
        a(i) = 1.0
      enddo
      do i = 1, 64
        b(i) = a(i) + 1.0
      enddo
      end
";
        let an = analyze(&[("t.f".to_string(), src.to_string())]).unwrap();
        let incumbent = parallelize_candidates(&an).remove(1);
        let cands = refine_candidates(&an, &incumbent, 1);
        // Drop, write-affinity (b), read-affinity (a), no-affinity, two
        // schedules.
        assert!(cands.len() >= 5, "{}", cands.len());
        assert!(cands[0].loops.iter().all(|l| l.site != 1));
        assert!(cands.iter().any(|p| p
            .loops
            .iter()
            .any(|l| l.site == 1 && l.affinity == Some(("a".to_string(), 0)))));
    }
}
