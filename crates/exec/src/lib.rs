//! # dsm-exec
//!
//! The executor: an interpreter that runs compiled `dsm-ir` programs
//! against the `dsm-machine` CC-NUMA model, producing the measurements
//! every experiment in this reproduction reports.
//!
//! Every array-element access goes through the machine's memory
//! hierarchy (TLB, L1, L2, directory, NUMA home), and every arithmetic
//! operation charges its R10000 cost — including the per-reference
//! addressing overhead selected by the compiler's
//! [`dsm_ir::AddrMode`]s (integer or FP-emulated div/mod, indirect
//! portion-pointer loads).  `doacross` loops fork a simulated team:
//! each member runs its iteration chunks with its own caches and its own
//! clock, and the implicit end-of-loop barrier advances everyone to the
//! slowest member (plus barrier cost), exactly how wall-clock time forms
//! on the real machine.
//!
//! The runtime argument checker of Section 6 can be switched on with
//! [`ExecOptions::runtime_checks`]; a failed check aborts execution with
//! [`ExecError::Runtime`].

pub mod bind;
pub mod engine;
pub mod interp;
pub mod profile;
pub mod report;
pub mod value;
pub mod wire;

pub use engine::Engine;
pub use interp::{run_outcome, ExecError, ExecOptions, RedistMode};
pub use profile::{
    ArrayProfile, CellProfile, DimSuggestion, HintEvidence, HotPage, PlacementHint, Profile,
    RegionProfile,
};
pub use report::{RunOutcome, RunReport};

#[cfg(test)]
mod tests {
    use dsm_compile::{compile_strings, OptConfig};
    use dsm_machine::{Machine, MachineConfig};

    use crate::{run_outcome, ExecOptions};

    /// End-to-end smoke test: the crate compiles and runs a program.
    #[test]
    fn smoke() {
        let c = compile_strings(
            &[(
                "t.f",
                "      program main\n      integer i\n      real*8 a(16)\n      do i = 1, 16\n        a(i) = 2*i\n      enddo\n      end\n",
            )],
            &OptConfig::default(),
        )
        .expect("compiles");
        let mut m = Machine::new(MachineConfig::small_test(2));
        let r = run_outcome(&mut m, &c.program, &ExecOptions::new(2))
            .expect("runs")
            .report;
        assert!(r.total_cycles > 0);
    }
}
