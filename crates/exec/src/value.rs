//! Runtime scalar values and frames.

use dsm_ir::{ScalarTy, Subroutine};

/// A scalar value (Fortran `integer` or `real*8`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer.
    I(i64),
    /// Double-precision real.
    F(f64),
}

impl Value {
    /// Integer view (truncates reals, Fortran `int()` semantics).
    pub fn as_i(self) -> i64 {
        match self {
            Value::I(v) => v,
            Value::F(v) => v as i64,
        }
    }

    /// Real view.
    pub fn as_f(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    /// Truthiness (non-zero).
    pub fn is_true(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    /// True when either operand is real (result promotes).
    pub fn promotes(self, other: Value) -> bool {
        matches!(self, Value::F(_)) || matches!(other, Value::F(_))
    }
}

/// A subroutine activation's scalar storage plus array bindings
/// (indices into the binder's arena).
#[derive(Debug, Clone)]
pub struct Frame {
    /// One value per [`dsm_ir::VarId`].
    pub scalars: Vec<Value>,
    /// One arena index per [`dsm_ir::ArrayId`] (`usize::MAX` = unbound).
    pub arrays: Vec<usize>,
}

impl Frame {
    /// Fresh frame for a subroutine: scalars zeroed, arrays unbound.
    pub fn new(sub: &Subroutine) -> Self {
        let scalars = sub
            .scalars
            .iter()
            .map(|s| match s.ty {
                ScalarTy::Int => Value::I(0),
                ScalarTy::Real => Value::F(0.0),
            })
            .collect();
        Frame {
            scalars,
            arrays: vec![usize::MAX; sub.arrays.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::F(2.9).as_i(), 2);
        assert_eq!(Value::I(3).as_f(), 3.0);
        assert!(Value::I(1).is_true());
        assert!(!Value::F(0.0).is_true());
        assert!(Value::I(1).promotes(Value::F(0.0)));
        assert!(!Value::I(1).promotes(Value::I(2)));
    }
}
