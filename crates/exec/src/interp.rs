//! The interpreter.
//!
//! Serial sections execute on processor 0; a `doacross` forks a simulated
//! team, runs each member's chunks against its own caches/clock, and
//! joins at the implicit barrier (everyone advances to the slowest
//! member plus barrier cost).  Processor-tile loops produced by the
//! compiler bind each member to its own grid coordinate — the executable
//! form of the paper's Figure-2 schedules.
//!
//! Team members are simulated on real host threads whenever the region
//! body is parallel-safe (no calls, no redistribution): each member runs
//! against a [`MachineShard`] — its own caches,
//! TLB and clock, plus thread-safe shared memory/page-table/directory
//! state.  [`ExecOptions::serial_team`] forces the old one-member-at-a-
//! time execution, which remains the fallback for unsafe bodies.

use std::sync::atomic::{AtomicU64, Ordering};

use dsm_ir::{
    ActualArg, AddrMode, AffIdx, BinOp, DistKind, Doacross, Expr, Intrinsic, LoopStmt, Program,
    RtExpr, ScalarTy, SchedType, Stmt, Subroutine, UnOp,
};
use dsm_machine::{
    AccessKind, AccessTag, Machine, MachineConfig, MachineShard, MigrationPolicy, ProcId,
    SamplingConfig, SERIAL_REGION,
};
use dsm_runtime::epoch::{join_epoch, EpochClock};
use dsm_runtime::{argcheck::ArgInfo, partition, sched, ArgChecker, RuntimeError};

use crate::bind::Binder;
use crate::engine::Engine;
use crate::report::{RunOutcome, RunReport};
use crate::value::{Frame, Value};

/// Which page mover implements `c$redistribute` and `c$resize_team`.
///
/// Both movers produce bit-identical data and final page homes; they
/// differ only in what the simulated move *costs*. The scheduler is the
/// production path; the naive mover is retained as the differential
/// oracle the conformance matrix compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedistMode {
    /// Round-based schedule: only the delta pages move, each round packs
    /// moves so no node sources or sinks more than one transfer, and the
    /// team pays one coalesced TLB shootdown per round.
    #[default]
    Scheduled,
    /// Page-at-a-time mover: every page of the array is re-placed and the
    /// caller pays a fault plus two TLB misses per page.
    Naive,
}

impl std::fmt::Display for RedistMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RedistMode::Scheduled => "scheduled",
            RedistMode::Naive => "naive",
        })
    }
}

impl std::str::FromStr for RedistMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scheduled" => Ok(RedistMode::Scheduled),
            "naive" => Ok(RedistMode::Naive),
            other => Err(format!(
                "unknown redistribution mode `{other}` (expected `scheduled` or `naive`)"
            )),
        }
    }
}

/// Execution options: a fluent builder consumed by [`run_outcome`].
///
/// ```
/// use dsm_exec::ExecOptions;
/// let opts = ExecOptions::new(8).with_checks(true).serial_team(true).profile(true);
/// assert!(opts.runtime_checks && opts.serial_team && opts.profile);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Number of processors the program runs on (≤ the machine's).
    pub nprocs: usize,
    /// Enable the Section-6 runtime argument checks.
    pub runtime_checks: bool,
    /// Safety valve: abort after this many executed statements.
    pub max_steps: u64,
    /// Simulate team members one after another on the host thread instead
    /// of in parallel (reference mode; also the automatic fallback for
    /// region bodies that are not parallel-safe).
    pub serial_team: bool,
    /// Attribute every access to its (array, parallel region) and return a
    /// [`crate::Profile`] in the report.
    pub profile: bool,
    /// Names of main-program arrays whose final contents the run returns
    /// (Fortran element order), for verification.
    pub captures: Vec<String>,
    /// Override the machine's reactive page-migration policy for this run
    /// (`None` keeps whatever the [`MachineConfig`] says).
    pub migration: Option<MigrationPolicy>,
    /// Which execution engine runs the program (bytecode by default; the
    /// tree-walking interpreter is kept as the differential reference).
    pub engine: Engine,
    /// Override the machine's systematic cache-set sampling for this run
    /// (`None` keeps whatever the [`MachineConfig`] says). Data results
    /// are bit-identical at any rate; only cost estimates differ.
    pub sampling: Option<SamplingConfig>,
    /// Which page mover implements redistribution and team resizing
    /// ([`RedistMode::Scheduled`] by default; [`RedistMode::Naive`] is
    /// the differential oracle).
    pub redist: RedistMode,
    /// Resize the team to this many processors after binding the main
    /// program's declarations and before the first statement executes
    /// (the dynamic-resize entry point for drivers that cannot edit the
    /// source to insert a `c$resize_team` directive). Clamped to the
    /// machine's processor count.
    pub resize_to: Option<usize>,
}

impl Default for ExecOptions {
    /// One processor, everything off.
    fn default() -> Self {
        ExecOptions::new(1)
    }
}

impl ExecOptions {
    /// Run on `nprocs` processors with checks, profiling and captures off.
    pub fn new(nprocs: usize) -> Self {
        ExecOptions {
            nprocs,
            runtime_checks: false,
            max_steps: u64::MAX,
            serial_team: false,
            profile: false,
            captures: Vec::new(),
            migration: None,
            engine: Engine::default(),
            sampling: None,
            redist: RedistMode::default(),
            resize_to: None,
        }
    }

    /// Enable or disable runtime argument checking.
    #[must_use]
    pub fn with_checks(mut self, on: bool) -> Self {
        self.runtime_checks = on;
        self
    }

    /// Force serial (one member at a time) team simulation.
    #[must_use]
    pub fn serial_team(mut self, on: bool) -> Self {
        self.serial_team = on;
        self
    }

    /// Enable memory-behavior attribution profiling.
    #[must_use]
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Cap the number of executed statements (runaway-loop valve).
    #[must_use]
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Capture the final contents of these main-program arrays.
    #[must_use]
    pub fn capture(mut self, names: &[&str]) -> Self {
        self.captures = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Run under this reactive page-migration policy (overrides the
    /// machine configuration's).
    #[must_use]
    pub fn migration(mut self, policy: MigrationPolicy) -> Self {
        self.migration = Some(policy);
        self
    }

    /// Select the execution engine ([`Engine::Bytecode`] is the default;
    /// [`Engine::Interp`] is the differential reference).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Run under systematic cache-set sampling (overrides the machine
    /// configuration's). Rejected at run time if the rate does not fit
    /// the machine's cache geometry.
    #[must_use]
    pub fn sampling(mut self, s: SamplingConfig) -> Self {
        self.sampling = Some(s);
        self
    }

    /// Select the page mover for redistribution and team resizing.
    #[must_use]
    pub fn redist(mut self, mode: RedistMode) -> Self {
        self.redist = mode;
        self
    }

    /// Resize the team to `nprocs` processors before the first statement.
    #[must_use]
    pub fn resize_to(mut self, nprocs: usize) -> Self {
        self.resize_to = Some(nprocs);
        self
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Array index outside its declared extent.
    OutOfBounds {
        /// Array name.
        array: String,
        /// 1-based index values.
        indices: Vec<i64>,
        /// Extents.
        extents: Vec<u64>,
    },
    /// Call of an unknown subroutine (escaped the pre-linker).
    UnknownSubroutine(String),
    /// Wrong argument count or kind at a call.
    BadCall(String),
    /// A runtime check or redistribution failed.
    Runtime(RuntimeError),
    /// Step budget exhausted (runaway loop).
    StepLimit,
    /// Execution options incompatible with the machine (e.g. a sampling
    /// rate the cache geometry cannot support).
    Options(String),
}

impl ExecError {
    /// Stable machine-readable code for this failure kind, used verbatim
    /// in the daemon wire protocol's error replies and exposed through
    /// `DsmError::code` for CLI exit paths. Codes are part of the
    /// protocol: add new ones, never repurpose existing ones.
    pub fn code(&self) -> &'static str {
        match self {
            ExecError::OutOfBounds { .. } => "exec.out-of-bounds",
            ExecError::UnknownSubroutine(_) => "exec.unknown-subroutine",
            ExecError::BadCall(_) => "exec.bad-call",
            ExecError::Runtime(_) => "exec.runtime",
            ExecError::StepLimit => "exec.step-limit",
            ExecError::Options(_) => "exec.options",
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::OutOfBounds {
                array,
                indices,
                extents,
            } => write!(
                f,
                "index {indices:?} out of bounds for `{array}` with extents {extents:?}"
            ),
            ExecError::UnknownSubroutine(n) => write!(f, "call to unknown subroutine `{n}`"),
            ExecError::BadCall(m) => write!(f, "bad call: {m}"),
            ExecError::Runtime(e) => write!(f, "{e}"),
            ExecError::StepLimit => write!(f, "execution step limit exceeded"),
            ExecError::Options(m) => write!(f, "invalid execution options: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<RuntimeError> for ExecError {
    fn from(e: RuntimeError) -> Self {
        ExecError::Runtime(e)
    }
}

/// Run `program` on `machine` under `opts`, returning the full
/// [`RunOutcome`]: the report (with an attribution [`crate::Profile`] when
/// `opts.profile` is set) plus the contents of any captured arrays.
///
/// Dispatches on [`ExecOptions::engine`]: the compiled bytecode engine by
/// default, or the tree-walking interpreter as differential reference.
/// Both produce bit-identical captures and machine counters.
///
/// # Errors
///
/// Returns an [`ExecError`] for out-of-bounds accesses, failed runtime
/// argument checks (when enabled), illegal redistributions, or unresolved
/// calls; unknown capture names are returned as empty vectors.
///
/// # Panics
///
/// Panics if `opts.nprocs` exceeds the machine's processor count.
pub fn run_outcome(
    machine: &mut Machine,
    program: &Program,
    opts: &ExecOptions,
) -> Result<RunOutcome, ExecError> {
    match opts.engine {
        Engine::Bytecode => crate::engine::run_bytecode(machine, program, opts),
        Engine::Interp => run_interp(machine, program, opts),
    }
}

/// The tree-walking reference engine behind [`Engine::Interp`].
fn run_interp(
    machine: &mut Machine,
    program: &Program,
    opts: &ExecOptions,
) -> Result<RunOutcome, ExecError> {
    assert!(
        opts.nprocs >= 1 && opts.nprocs <= machine.nprocs(),
        "nprocs {} out of range for machine with {} processors",
        opts.nprocs,
        machine.nprocs()
    );
    let host_t0 = std::time::Instant::now();
    if opts.profile {
        machine.enable_profiling();
    }
    if let Some(policy) = opts.migration {
        machine.set_migration(policy);
    }
    if let Some(sampling) = opts.sampling {
        machine.set_sampling(sampling).map_err(ExecError::Options)?;
    }
    let binder = Binder::new(machine, program, opts.nprocs);
    let steps = AtomicU64::new(0);
    let mut interp = Interp {
        mach: Mach::Whole(machine),
        program,
        opts: opts.clone(),
        team: opts.nprocs,
        binder: BinderRef::Owned(binder),
        checker: ArgChecker::new(),
        regions: 0,
        region_cycles: 0,
        region_wall: std::time::Duration::ZERO,
        region_names: Vec::new(),
        steps: &steps,
        epoch: EpochClock::default(),
    };
    let main = program.main_sub();
    let mut frame = Frame::new(main);
    interp
        .binder
        .owned()
        .bind_declarations(interp.mach.whole(), main, &mut frame);
    let mut ctx = Ctx {
        proc: ProcId(0),
        in_region: false,
        region: SERIAL_REGION,
    };
    if let Some(p) = opts.resize_to {
        interp.resize_now(p, &ctx)?;
    }
    interp.exec_block(&main.body, main, &mut frame, &mut ctx)?;

    let Interp {
        mach,
        binder,
        checker,
        regions,
        region_cycles,
        region_wall,
        region_names,
        ..
    } = interp;
    let Mach::Whole(machine) = mach else {
        unreachable!("top-level interpreter always holds the whole machine")
    };
    let acct = RunAccounting {
        regions,
        region_cycles,
        region_wall,
        region_names,
        argcheck_ops: checker.stats(),
    };
    Ok(collect_outcome(
        machine,
        main,
        opts,
        binder.shared(),
        &frame,
        acct,
        host_t0,
    ))
}

/// Run-level bookkeeping both engines hand to [`collect_outcome`].
pub(crate) struct RunAccounting {
    pub(crate) regions: usize,
    pub(crate) region_cycles: u64,
    pub(crate) region_wall: std::time::Duration,
    pub(crate) region_names: Vec<String>,
    pub(crate) argcheck_ops: (u64, u64),
}

/// Shared postamble: drain in-flight invalidations, gather counters and
/// the attribution profile, and read back captured arrays.
pub(crate) fn collect_outcome(
    machine: &mut Machine,
    main: &Subroutine,
    opts: &ExecOptions,
    binder: &Binder,
    frame: &Frame,
    acct: RunAccounting,
    host_t0: std::time::Instant,
) -> RunOutcome {
    machine.drain_mail();
    let per_proc: Vec<_> = (0..machine.nprocs())
        .map(|p| *machine.counters(ProcId(p)))
        .collect();
    let total = machine.total_counters();
    let total_cycles = per_proc.iter().map(|c| c.cycles).max().unwrap_or(0);
    let profile = if opts.profile {
        // Array shapes let the hints suggest a distribution per dimension.
        let shapes: Vec<(String, Vec<u64>)> = main
            .arrays
            .iter()
            .enumerate()
            .filter_map(|(i, decl)| {
                let inst = frame.arrays[i];
                (inst != usize::MAX).then(|| {
                    let arr = binder.get(inst);
                    (
                        decl.name.clone(),
                        arr.desc.dims.iter().map(|d| d.extent).collect(),
                    )
                })
            })
            .collect();
        machine.merged_attribution().map(|attr| {
            Box::new(crate::profile::build_profile(
                &attr,
                machine,
                &acct.region_names,
                &shapes,
            ))
        })
    } else {
        None
    };
    let report = RunReport {
        total_cycles,
        per_proc,
        total,
        parallel_regions: acct.regions,
        parallel_cycles: acct.region_cycles,
        pages_per_node: machine.pages_per_node(),
        argcheck_ops: acct.argcheck_ops,
        pages_migrated: machine.pages_migrated(),
        migration_cycles: machine.migration_cycles(),
        redist_pages: machine.redist_pages(),
        redist_cycles: machine.redist_cycles(),
        host_wall: host_t0.elapsed(),
        host_region_wall: acct.region_wall,
        profile,
        sampling: (opts.sampling.is_some() || !machine.config().sampling.is_exact())
            .then(|| machine.sampling_summary()),
    };
    let mut captured = Vec::with_capacity(opts.captures.len());
    for name in &opts.captures {
        let mut data = Vec::new();
        if let Some(aid) = main.array_named(name) {
            let inst = frame.arrays[aid.0];
            if inst != usize::MAX {
                let arr = binder.get(inst);
                let total_len = arr.desc.total_len();
                let rank = arr.desc.dims.len();
                for linear in 0..total_len {
                    // Delinearize the column-major index.
                    let mut rest = linear;
                    let mut idx = Vec::with_capacity(rank);
                    for d in &arr.desc.dims {
                        idx.push(rest % d.extent);
                        rest /= d.extent;
                    }
                    data.push(machine.peek_f64(arr.addr_of(&idx)));
                }
            }
        }
        captured.push(data);
    }
    RunOutcome {
        report,
        captures: captured,
    }
}

/// Execution context: which simulated processor runs the current code,
/// whether we are inside a parallel region, and which one (for access
/// attribution; [`SERIAL_REGION`] outside any region).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ctx {
    pub(crate) proc: ProcId,
    pub(crate) in_region: bool,
    pub(crate) region: u32,
}

/// The interpreter's handle on the machine: either the whole thing (serial
/// sections and the team leader) or one member's shard during a parallel
/// region.
pub(crate) enum Mach<'m> {
    Whole(&'m mut Machine),
    Shard(MachineShard<'m>),
}

impl Mach<'_> {
    pub(crate) fn config(&self) -> &MachineConfig {
        match self {
            Mach::Whole(m) => m.config(),
            Mach::Shard(s) => s.config(),
        }
    }

    /// The whole machine; only reachable outside parallel members (region
    /// bodies containing whole-machine operations are executed serially).
    pub(crate) fn whole(&mut self) -> &mut Machine {
        match self {
            Mach::Whole(m) => m,
            Mach::Shard(_) => unreachable!("whole-machine operation inside a parallel member"),
        }
    }

    pub(crate) fn charge(&mut self, proc: ProcId, cycles: u64) {
        match self {
            Mach::Whole(m) => m.charge(proc, cycles),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.charge(cycles);
            }
        }
    }

    pub(crate) fn set_tag(&mut self, proc: ProcId, tag: AccessTag) {
        match self {
            Mach::Whole(m) => m.set_tag(proc, tag),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.set_tag(tag);
            }
        }
    }

    pub(crate) fn cycles(&self, proc: ProcId) -> u64 {
        match self {
            Mach::Whole(m) => m.cycles(proc),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.cycles()
            }
        }
    }

    pub(crate) fn access(&mut self, proc: ProcId, addr: u64, kind: AccessKind) -> u64 {
        match self {
            Mach::Whole(m) => m.access(proc, addr, kind),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.access(addr, kind)
            }
        }
    }

    pub(crate) fn read_f64(&mut self, proc: ProcId, addr: u64) -> (f64, u64) {
        match self {
            Mach::Whole(m) => m.read_f64(proc, addr),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.read_f64(addr)
            }
        }
    }

    pub(crate) fn write_f64(&mut self, proc: ProcId, addr: u64, v: f64) -> u64 {
        match self {
            Mach::Whole(m) => m.write_f64(proc, addr, v),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.write_f64(addr, v)
            }
        }
    }

    pub(crate) fn read_i64(&mut self, proc: ProcId, addr: u64) -> (i64, u64) {
        match self {
            Mach::Whole(m) => m.read_i64(proc, addr),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.read_i64(addr)
            }
        }
    }

    pub(crate) fn write_i64(&mut self, proc: ProcId, addr: u64, v: i64) -> u64 {
        match self {
            Mach::Whole(m) => m.write_i64(proc, addr, v),
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.write_i64(addr, v)
            }
        }
    }
}

/// The interpreter's handle on the binder: the top-level interpreter owns
/// it; parallel members share it read-only (their bodies are gated to
/// never bind, view, or redistribute arrays).
pub(crate) enum BinderRef<'a> {
    Owned(Binder),
    Borrowed(&'a Binder),
}

impl BinderRef<'_> {
    pub(crate) fn get(&self, idx: usize) -> &dsm_runtime::RtArray {
        match self {
            BinderRef::Owned(b) => b.get(idx),
            BinderRef::Borrowed(b) => b.get(idx),
        }
    }

    /// Read-only view for sharing with team members.
    pub(crate) fn shared(&self) -> &Binder {
        match self {
            BinderRef::Owned(b) => b,
            BinderRef::Borrowed(b) => b,
        }
    }

    /// Mutable access; only reachable outside parallel members.
    pub(crate) fn owned(&mut self) -> &mut Binder {
        match self {
            BinderRef::Owned(b) => b,
            BinderRef::Borrowed(_) => {
                unreachable!("binder mutation inside a parallel member")
            }
        }
    }
}

/// A region body is parallel-safe when it cannot touch whole-machine or
/// binder state: no subroutine calls (they bind declarations and run
/// argument checks) and no redistribution. Such bodies are the compiled
/// doacross kernels; anything else falls back to serial team simulation.
pub(crate) fn body_parallel_safe(body: &[Stmt]) -> bool {
    body.iter().all(|st| match st {
        Stmt::Call { .. } | Stmt::Redistribute { .. } | Stmt::ResizeTeam { .. } => false,
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_parallel_safe(then_body) && body_parallel_safe(else_body),
        Stmt::Loop(l) => body_parallel_safe(&l.body),
        _ => true,
    })
}

struct Interp<'a> {
    mach: Mach<'a>,
    program: &'a Program,
    opts: ExecOptions,
    /// Current team size: starts at `opts.nprocs`, changed by
    /// `resize_team` (directive or [`ExecOptions::resize_to`]). Members
    /// inherit the value at fork; only the top-level interpreter resizes.
    team: usize,
    binder: BinderRef<'a>,
    checker: ArgChecker,
    regions: usize,
    region_cycles: u64,
    /// Host wall-clock accumulated across parallel regions (fork to join).
    /// Only meaningful on the top-level interpreter; member interpreters
    /// never fork.
    region_wall: std::time::Duration,
    /// Label of each parallel region executed so far, indexed by region id
    /// (only the top-level interpreter forks, so only it appends).
    region_names: Vec<String>,
    /// Statement counter, shared across the team for the step limit.
    steps: &'a AtomicU64,
    /// Migration-epoch cadence at team joins (top-level interpreter only;
    /// members never fork).
    epoch: EpochClock,
}

impl Interp<'_> {
    fn ops(&self) -> dsm_machine::OpCosts {
        self.mach.config().ops.clone()
    }

    fn exec_block(
        &mut self,
        body: &[Stmt],
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        for st in body {
            self.exec_stmt(st, sub, frame, ctx)?;
        }
        Ok(())
    }

    fn exec_stmt(
        &mut self,
        st: &Stmt,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let steps = self.steps.fetch_add(1, Ordering::Relaxed) + 1;
        if steps > self.opts.max_steps {
            return Err(ExecError::StepLimit);
        }
        match st {
            Stmt::SAssign { var, value } => {
                let v = self.eval(value, sub, frame, ctx)?;
                frame.scalars[var.0] = match sub.scalars[var.0].ty {
                    ScalarTy::Int => Value::I(v.as_i()),
                    ScalarTy::Real => Value::F(v.as_f()),
                };
                Ok(())
            }
            Stmt::Assign {
                array,
                indices,
                value,
                mode,
            } => {
                let v = self.eval(value, sub, frame, ctx)?;
                let addr = self.element_addr(*array, indices, *mode, sub, frame, ctx)?;
                match sub.arrays[array.0].ty {
                    ScalarTy::Real => {
                        self.mach.write_f64(ctx.proc, addr, v.as_f());
                    }
                    ScalarTy::Int => {
                        self.mach.write_i64(ctx.proc, addr, v.as_i());
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(cond, sub, frame, ctx)?;
                self.mach.charge(ctx.proc, self.ops().int_alu);
                if c.is_true() {
                    self.exec_block(then_body, sub, frame, ctx)
                } else {
                    self.exec_block(else_body, sub, frame, ctx)
                }
            }
            Stmt::Loop(l) => self.exec_loop(l, sub, frame, ctx),
            Stmt::Call { name, args } => self.exec_call(name, args, sub, frame, ctx),
            Stmt::Redistribute { array, dist } => {
                let inst = frame.arrays[array.0];
                let nprocs = self.team;
                let scheduled = self.opts.redist == RedistMode::Scheduled;
                // Split borrow: take the array out, operate, put it back.
                let mut arr = self.binder.get(inst).clone();
                let res = if scheduled {
                    arr.redistribute_scheduled(self.mach.whole(), ctx.proc, dist, nprocs)
                } else {
                    arr.redistribute(self.mach.whole(), ctx.proc, dist, nprocs)
                };
                *self.binder.owned().get_mut(inst) = arr;
                res.map(|_| ()).map_err(ExecError::from)
            }
            Stmt::ResizeTeam { nprocs } => self.resize_now(*nprocs as usize, ctx),
            Stmt::Barrier => {
                // Explicit barriers only make sense between regions; in
                // this serialized interpreter they only cost time.
                self.mach.charge(ctx.proc, self.ops().barrier);
                Ok(())
            }
            Stmt::Overhead {
                int_divs,
                indirect_loads,
                int_alu,
            } => {
                let ops = self.ops();
                let lat = self.mach.config().lat.clone();
                let cost = u64::from(*int_divs) * ops.int_div
                    + u64::from(*indirect_loads) * (lat.l1_hit + ops.int_alu)
                    + u64::from(*int_alu) * ops.int_alu;
                self.mach.charge(ctx.proc, cost);
                Ok(())
            }
        }
    }

    /// Re-chunk every live regular array for a team of `new` processors
    /// (clamped to the machine) and make `new` the team size for
    /// subsequent regions, `$numthreads` and redistributions.
    fn resize_now(&mut self, new: usize, ctx: &Ctx) -> Result<(), ExecError> {
        let scheduled = self.opts.redist == RedistMode::Scheduled;
        let m = self.mach.whole();
        let new = new.clamp(1, m.nprocs());
        self.binder.owned().resize_team(m, ctx.proc, new, scheduled)?;
        self.team = new;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Loops.
    // -----------------------------------------------------------------

    fn exec_loop(
        &mut self,
        l: &LoopStmt,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        match &l.par {
            Some(d) if !ctx.in_region => self.fork_region(l, d, sub, frame, ctx),
            Some(d) if matches!(d.sched, SchedType::ProcTile { .. }) => {
                // Inside a region: bind this member's own coordinate.
                let SchedType::ProcTile { grid_dim } = d.sched else {
                    unreachable!()
                };
                let aff = d.affinity.as_ref().expect("proc-tile loops carry affinity");
                let inst = frame.arrays[aff.array.0];
                let desc = &self.binder.get(inst).desc;
                let gs = desc.grid_size();
                if ctx.proc.0 >= gs {
                    return Ok(()); // idle member
                }
                // Re-resolve the grid axis against the live descriptor: a
                // redistribute/resize before this loop can re-map the
                // tiled dimension to a different axis than compiled in.
                let decl = sub.arrays[aff.array.0].dist.as_ref();
                let axis = dsm_runtime::proctile_axis(desc, decl, grid_dim);
                let coord = desc.delinearize_proc(ctx.proc.0)[axis] as i64;
                frame.scalars[l.var.0] = Value::I(coord);
                self.exec_block(&l.body, sub, frame, ctx)
            }
            _ => self.serial_loop(l, sub, frame, ctx),
        }
    }

    fn serial_loop(
        &mut self,
        l: &LoopStmt,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let lb = self.eval(&l.lb, sub, frame, ctx)?.as_i();
        let ub = self.eval(&l.ub, sub, frame, ctx)?.as_i();
        let step = self.eval(&l.step, sub, frame, ctx)?.as_i();
        if step == 0 {
            return Err(ExecError::BadCall("zero loop step".into()));
        }
        self.run_chunk(l, sub, frame, ctx, lb, ub, step)
    }

    /// Execute iterations `lb..=ub:step` of `l` on the current processor.
    #[allow(clippy::too_many_arguments)] // loop + frame + chunk bounds
    fn run_chunk(
        &mut self,
        l: &LoopStmt,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
        lb: i64,
        ub: i64,
        step: i64,
    ) -> Result<(), ExecError> {
        let loop_overhead = self.ops().loop_overhead;
        let mut i = lb;
        while (step > 0 && i <= ub) || (step < 0 && i >= ub) {
            frame.scalars[l.var.0] = Value::I(i);
            self.mach.charge(ctx.proc, loop_overhead);
            self.exec_block(&l.body, sub, frame, ctx)?;
            i += step;
        }
        Ok(())
    }

    /// Fork a parallel region for a doacross encountered in serial code.
    fn fork_region(
        &mut self,
        l: &LoopStmt,
        d: &Doacross,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let region_id = self.regions as u32;
        self.regions += 1;
        self.region_names
            .push(format!("{}:do {}", sub.name, sub.scalars[l.var.0].name));
        let ops = self.ops();
        let nprocs = self.team;
        let start = self.mach.cycles(ctx.proc) + ops.parallel_fork;
        // Per-node memory-service demand before the region: deltas bound
        // region time by the bottleneck node's throughput (the hot-node
        // effect of the paper's Figure 5).
        let served_before: Vec<u64> = self.mach.whole().node_served();

        // Per-member work lists: (proc, chunks or proc-tile marker).
        enum Work {
            Chunks(Vec<sched::Chunk>),
            ProcTile,
        }
        let mut team: Vec<(ProcId, Work)> = Vec::new();
        match d.sched {
            SchedType::ProcTile { .. } => {
                let aff = d.affinity.as_ref().expect("proc-tile loops carry affinity");
                let inst = frame.arrays[aff.array.0];
                let gs = self.binder.get(inst).desc.grid_size().min(nprocs);
                for p in 0..gs {
                    team.push((ProcId(p), Work::ProcTile));
                }
            }
            SchedType::RuntimeAffinity => {
                let lb = self.eval(&l.lb, sub, frame, ctx)?.as_i();
                let ub = self.eval(&l.ub, sub, frame, ctx)?.as_i();
                let step = self.eval(&l.step, sub, frame, ctx)?.as_i();
                let aff = d.affinity.as_ref().expect("runtime affinity has a clause");
                let inst = frame.arrays[aff.array.0];
                let desc = self.binder.get(inst).desc.clone();
                // The axis driven by this loop's variable.
                let axis = aff
                    .indices
                    .iter()
                    .position(|ix| matches!(ix, AffIdx::Loop { var, .. } if *var == l.var));
                match axis {
                    Some(dim) if desc.dims[dim].dist.is_distributed() => {
                        let AffIdx::Loop { scale, offset, .. } = &aff.indices[dim] else {
                            unreachable!()
                        };
                        let parts = dsm_runtime::sched::partition_affinity(
                            lb,
                            ub,
                            step,
                            &desc.dims[dim],
                            *scale,
                            *offset,
                        );
                        let grid_dim = desc
                            .distributed
                            .iter()
                            .position(|&dd| dd == dim)
                            .unwrap_or(0);
                        for (coord, chunks) in parts.into_iter().enumerate() {
                            // Representative member for this coordinate:
                            // zero on every other grid axis.
                            let mut coords = vec![0u64; desc.grid.len()];
                            coords[grid_dim] = coord as u64;
                            let p = desc.linearize_coords(&coords).min(nprocs - 1);
                            team.push((ProcId(p), Work::Chunks(chunks)));
                        }
                    }
                    _ => {
                        // Affinity unusable: fall back to simple.
                        for (p, chunks) in partition(SchedType::Simple, lb, ub, step, nprocs)
                            .into_iter()
                            .enumerate()
                        {
                            team.push((ProcId(p), Work::Chunks(chunks)));
                        }
                    }
                }
            }
            sched_kind => {
                let lb = self.eval(&l.lb, sub, frame, ctx)?.as_i();
                let ub = self.eval(&l.ub, sub, frame, ctx)?.as_i();
                let step = self.eval(&l.step, sub, frame, ctx)?.as_i();
                for (p, chunks) in partition(sched_kind, lb, ub, step, nprocs)
                    .into_iter()
                    .enumerate()
                {
                    team.push((ProcId(p), Work::Chunks(chunks)));
                }
            }
        }

        // Host-parallel simulation is sound only when the body cannot
        // mutate whole-machine/binder state. (Migration is compatible:
        // shards only bump lock-free reference counters; the daemon
        // itself runs at the join below, with the whole machine back in
        // hand.) Count distinct members: with fewer than two there is
        // nothing to overlap.
        let distinct = {
            let mut ids: Vec<usize> = team.iter().map(|(p, _)| p.0).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let run_parallel = !self.opts.serial_team && distinct >= 2 && body_parallel_safe(&l.body);

        let dispatch = matches!(d.sched, SchedType::Dynamic(_));
        let fork_t0 = std::time::Instant::now();
        if run_parallel {
            // Merge duplicate members (runtime-affinity clamping can hand
            // two grid coordinates to one processor) so each processor's
            // state is owned by exactly one host thread.
            let mut merged: Vec<(ProcId, Vec<&Work>)> = Vec::new();
            for (p, w) in &team {
                match merged.iter_mut().find(|(q, _)| q == p) {
                    Some((_, ws)) => ws.push(w),
                    None => merged.push((*p, vec![w])),
                }
            }
            let program = self.program;
            let opts = self.opts.clone();
            let team = self.team;
            let steps = self.steps;
            let int_alu = ops.int_alu;
            let binder: &Binder = self.binder.shared();
            let machine = self.mach.whole();
            for (p, _) in &merged {
                if machine.cycles(*p) < start {
                    machine.set_cycles(*p, start);
                }
            }
            let ids: Vec<ProcId> = merged.iter().map(|(p, _)| *p).collect();
            let shards = machine.team_shards(&ids);
            let results: Vec<Result<(), ExecError>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (shard, (proc, works)) in shards.into_iter().zip(&merged) {
                    let member_frame = frame.clone();
                    let opts = opts.clone();
                    let proc = *proc;
                    handles.push(scope.spawn(move || -> Result<(), ExecError> {
                        let mut member = Interp {
                            mach: Mach::Shard(shard),
                            program,
                            opts,
                            team,
                            binder: BinderRef::Borrowed(binder),
                            checker: ArgChecker::new(),
                            regions: 0,
                            region_cycles: 0,
                            region_wall: std::time::Duration::ZERO,
                            region_names: Vec::new(),
                            steps,
                            epoch: EpochClock::default(),
                        };
                        let mut member_ctx = Ctx {
                            proc,
                            in_region: true,
                            region: region_id,
                        };
                        // Private copy of all scalars (covers the `local`
                        // clause; in-region writes to shared scalars are
                        // discarded at join, as in the serial path).
                        let mut member_frame = member_frame;
                        for work in works {
                            match work {
                                Work::ProcTile => {
                                    member.exec_loop(l, sub, &mut member_frame, &mut member_ctx)?;
                                }
                                Work::Chunks(chunks) => {
                                    for c in chunks {
                                        if dispatch {
                                            // Work-queue grab per chunk.
                                            member.mach.charge(proc, 6 * int_alu);
                                        }
                                        member.run_chunk(
                                            l,
                                            sub,
                                            &mut member_frame,
                                            &mut member_ctx,
                                            c.lb,
                                            c.ub,
                                            c.step,
                                        )?;
                                    }
                                }
                            }
                        }
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("team member thread panicked"))
                    .collect()
            });
            // Deliver invalidations still in flight at the join.
            machine.drain_mail();
            for r in results {
                r?;
            }
        } else {
            // Serial reference path: level every member to the fork point
            // and run its share to completion before the next member.
            //
            // Access-count migration epochs are paused here: replaying
            // members one at a time means the reference counters are
            // transiently dominated by whichever member is current, and a
            // mid-region epoch would chase each member in turn (page
            // thrash the threaded path can't exhibit). The daemon instead
            // fires at the join below with whole-team counts.
            self.mach.whole().pause_epochs(true);
            for (p, work) in &team {
                if self.mach.cycles(*p) < start {
                    self.mach.whole().set_cycles(*p, start);
                }
                let mut member_ctx = Ctx {
                    proc: *p,
                    in_region: true,
                    region: region_id,
                };
                // Private copy of all scalars (covers the `local` clause;
                // the model discards in-region writes to shared scalars at
                // join).
                let mut member_frame = frame.clone();
                match work {
                    Work::ProcTile => {
                        // Re-dispatch: exec_loop binds the coordinate.
                        self.exec_loop(l, sub, &mut member_frame, &mut member_ctx)?;
                    }
                    Work::Chunks(chunks) => {
                        for c in chunks {
                            if dispatch {
                                // Work-queue grab per chunk.
                                self.mach.charge(*p, 6 * ops.int_alu);
                            }
                            self.run_chunk(
                                l,
                                sub,
                                &mut member_frame,
                                &mut member_ctx,
                                c.lb,
                                c.ub,
                                c.step,
                            )?;
                        }
                    }
                }
            }
            self.mach.whole().pause_epochs(false);
        }
        self.region_wall += fork_t0.elapsed();

        // Implicit barrier: everyone (team and idle processors alike)
        // advances to the slowest member — or, if some node's memory had
        // to service more line fills than fit in that window, to the end
        // of the bottleneck node's service demand (throughput bound).
        let occupancy = self.mach.config().lat.mem_occupancy;
        let machine = self.mach.whole();
        let node_demand = machine
            .node_served()
            .iter()
            .zip(&served_before)
            .map(|(after, before)| (after - before) * occupancy)
            .max()
            .unwrap_or(0);
        let t_end = (0..machine.nprocs())
            .map(|p| machine.cycles(ProcId(p)))
            .max()
            .unwrap_or(start)
            .max(start + node_demand)
            + ops.barrier;
        for p in 0..self.team.max(1) {
            machine.set_cycles(ProcId(p), t_end);
        }
        if machine.cycles(ctx.proc) < t_end {
            machine.set_cycles(ctx.proc, t_end);
        }
        self.region_cycles += t_end - (start - ops.parallel_fork);
        // Team join = migration epoch boundary: the shards sampled the
        // reference counters; the daemon itself needs the whole machine.
        join_epoch(self.mach.whole(), &mut self.epoch);
        // Sequential semantics for the loop variable after the region
        // (what `lastlocal` guarantees on the real system): the value it
        // would hold after a serial execution of the loop.
        if !matches!(d.sched, SchedType::ProcTile { .. }) {
            let lb = self.eval(&l.lb, sub, frame, ctx)?.as_i();
            let ub = self.eval(&l.ub, sub, frame, ctx)?.as_i();
            let step = self.eval(&l.step, sub, frame, ctx)?.as_i();
            if step != 0 {
                let niters = if step > 0 {
                    (ub - lb + step).max(0) / step
                } else {
                    (lb - ub - step).max(0) / -step
                };
                frame.scalars[l.var.0] = Value::I(lb + niters * step);
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Calls.
    // -----------------------------------------------------------------

    fn exec_call(
        &mut self,
        name: &str,
        args: &[ActualArg],
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let Some(callee_id) = self.program.sub_named(name) else {
            return Err(ExecError::UnknownSubroutine(name.to_string()));
        };
        let callee: &Subroutine = &self.program.subs[callee_id.0];
        if callee.params.len() != args.len() {
            return Err(ExecError::BadCall(format!(
                "`{name}` expects {} arguments, got {}",
                callee.params.len(),
                args.len()
            )));
        }
        let mut callee_frame = Frame::new(callee);
        // Registered (address, was-checked) actuals to pop on return.
        let mut registered: Vec<u64> = Vec::new();
        // First bind scalars and compute array bindings.
        let mut array_binds: Vec<(usize, usize)> = Vec::new(); // (callee ArrayId idx, arena idx)
        for (pos, (param, actual)) in callee.params.iter().zip(args).enumerate() {
            match (param, actual) {
                (dsm_ir::Param::Scalar(v), ActualArg::Scalar(e)) => {
                    let val = self.eval(e, sub, frame, ctx)?;
                    callee_frame.scalars[v.0] = match callee.scalars[v.0].ty {
                        ScalarTy::Int => Value::I(val.as_i()),
                        ScalarTy::Real => Value::F(val.as_f()),
                    };
                }
                (dsm_ir::Param::Array(a), ActualArg::Array(actual_id)) => {
                    let inst = frame.arrays[actual_id.0];
                    let arr = self.binder.get(inst);
                    let base = match &arr.layout {
                        dsm_runtime::ArrayLayout::Contiguous { base } => *base,
                        dsm_runtime::ArrayLayout::Reshaped { ptr_table, .. } => *ptr_table,
                    };
                    if self.opts.runtime_checks
                        && sub.arrays[actual_id.0].dist_kind == DistKind::Reshaped
                    {
                        let shape: Vec<u64> = arr.desc.dims.iter().map(|d| d.extent).collect();
                        let name = arr.name.clone();
                        self.checker
                            .register(base, ArgInfo::WholeArray { name, shape });
                        registered.push(base);
                        self.mach.charge(ctx.proc, 40);
                    }
                    // Whole-array pass: the callee sees the same instance
                    // (its declared shape must match; the clone carries
                    // the same distribution).
                    array_binds.push((a.0, inst));
                    if self.opts.runtime_checks {
                        // Entry-side lookup happens below once extents
                        // are evaluable.
                    }
                }
                (dsm_ir::Param::Array(a), ActualArg::ArrayElem(actual_id, idx)) => {
                    let addr =
                        self.element_addr(*actual_id, idx, AddrMode::Direct, sub, frame, ctx)?;
                    if self.opts.runtime_checks
                        && sub.arrays[actual_id.0].dist_kind == DistKind::Reshaped
                    {
                        // Elements from the passed address to the end of
                        // the containing portion.
                        let idx0 = self.index_values(*actual_id, idx, sub, frame, ctx)?;
                        let inst = frame.arrays[actual_id.0];
                        let arr = self.binder.get(inst);
                        // The paper's rule: the passed "portion" runs from
                        // the element to the end of its contiguous run in
                        // the fastest dimension, times the remaining
                        // portion rectangle in the outer dimensions.
                        let owner_coords = arr.desc.owner_coords(&idx0);
                        let mut gi = 0usize;
                        let mut remaining = 0u64;
                        for (d0, dim) in arr.desc.dims.iter().enumerate() {
                            let coord = if dim.dist.is_distributed() {
                                let c = owner_coords[gi];
                                gi += 1;
                                c
                            } else {
                                0
                            };
                            remaining = if d0 == 0 {
                                dim.run_remaining(idx0[0])
                            } else {
                                remaining * (dim.portion_extent(coord) - dim.local_offset(idx0[d0]))
                            };
                        }
                        let name = arr.name.clone();
                        self.checker.register(
                            addr,
                            ArgInfo::Portion {
                                name,
                                portion_len: remaining,
                            },
                        );
                        registered.push(addr);
                        self.mach.charge(ctx.proc, 40);
                    }
                    // The view's extents may depend on scalar params bound
                    // above; create it after scalars are in place.
                    let view = self.binder.owned().bind_view(
                        self.mach.whole(),
                        &callee.arrays[a.0],
                        addr,
                        &callee_frame,
                    );
                    array_binds.push((a.0, view));
                }
                (dsm_ir::Param::Scalar(_), _) => {
                    return Err(ExecError::BadCall(format!(
                        "argument {} of `{name}` must be a scalar",
                        pos + 1
                    )));
                }
                (dsm_ir::Param::Array(_), ActualArg::Scalar(_)) => {
                    return Err(ExecError::BadCall(format!(
                        "argument {} of `{name}` must be an array",
                        pos + 1
                    )));
                }
            }
        }
        for (aid, inst) in array_binds {
            callee_frame.arrays[aid] = inst;
        }
        // Entry-side runtime checks: each array formal looks up its
        // incoming base address.
        if self.opts.runtime_checks {
            for (pos, param) in callee.params.iter().enumerate() {
                if let dsm_ir::Param::Array(a) = param {
                    let inst = callee_frame.arrays[a.0];
                    let arr = self.binder.get(inst);
                    let base = match &arr.layout {
                        dsm_runtime::ArrayLayout::Contiguous { base } => *base,
                        dsm_runtime::ArrayLayout::Reshaped { ptr_table, .. } => *ptr_table,
                    };
                    let declared: Vec<u64> = callee.arrays[a.0]
                        .dims
                        .iter()
                        .map(|e| match e {
                            dsm_ir::Extent::Const(v) => (*v).max(0) as u64,
                            dsm_ir::Extent::Var(v) => {
                                callee_frame.scalars[v.0].as_i().max(0) as u64
                            }
                        })
                        .collect();
                    self.mach.charge(ctx.proc, 40);
                    self.checker
                        .check_formal(&callee.name, pos, base, &declared)
                        .map_err(|e| ExecError::Runtime(RuntimeError::ArgCheck(e)))?;
                }
            }
        }
        // Instantiate callee locals / attach commons.
        self.binder
            .owned()
            .bind_declarations(self.mach.whole(), callee, &mut callee_frame);
        // Call overhead.
        self.mach.charge(ctx.proc, 10 * self.ops().int_alu);
        let mut callee_ctx = Ctx {
            proc: ctx.proc,
            in_region: ctx.in_region,
            region: ctx.region,
        };
        self.exec_block(&callee.body, callee, &mut callee_frame, &mut callee_ctx)?;
        for addr in registered {
            self.checker.unregister(addr);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Expressions.
    // -----------------------------------------------------------------

    fn eval(
        &mut self,
        e: &Expr,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<Value, ExecError> {
        let ops = self.ops();
        match e {
            Expr::IConst(v) => Ok(Value::I(*v)),
            Expr::FConst(v) => Ok(Value::F(*v)),
            Expr::Var(v) => Ok(frame.scalars[v.0]),
            Expr::Rt(rt) => self.eval_rt(*rt, frame),
            Expr::Unary(op, x) => {
                let v = self.eval(x, sub, frame, ctx)?;
                self.mach.charge(ctx.proc, ops.int_alu);
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::I(i) => Value::I(-i),
                        Value::F(f) => Value::F(-f),
                    },
                    UnOp::Not => Value::I(i64::from(!v.is_true())),
                })
            }
            Expr::Binary(op, a, b) => {
                let va = self.eval(a, sub, frame, ctx)?;
                let vb = self.eval(b, sub, frame, ctx)?;
                self.eval_binop(*op, va, vb, ctx)
            }
            Expr::Call(intr, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, sub, frame, ctx)?);
                }
                self.eval_intrinsic(*intr, &vals, ctx)
            }
            Expr::Load {
                array,
                indices,
                mode,
            } => {
                let addr = self.element_addr(*array, indices, *mode, sub, frame, ctx)?;
                match sub.arrays[array.0].ty {
                    ScalarTy::Real => Ok(Value::F(self.mach.read_f64(ctx.proc, addr).0)),
                    ScalarTy::Int => Ok(Value::I(self.mach.read_i64(ctx.proc, addr).0)),
                }
            }
        }
    }

    fn eval_rt(&mut self, rt: RtExpr, frame: &Frame) -> Result<Value, ExecError> {
        Ok(match rt {
            RtExpr::NumThreads => Value::I(self.team as i64),
            RtExpr::NProcs { array, dim } => {
                let desc = &self.binder.get(frame.arrays[array.0]).desc;
                Value::I(desc.dims[dim].nprocs as i64)
            }
            RtExpr::BlockSize { array, dim } => {
                let desc = &self.binder.get(frame.arrays[array.0]).desc;
                Value::I(desc.dims[dim].chunk as i64)
            }
        })
    }

    fn eval_binop(
        &mut self,
        op: BinOp,
        a: Value,
        b: Value,
        ctx: &mut Ctx,
    ) -> Result<Value, ExecError> {
        let ops = self.ops();
        let promote = a.promotes(b);
        let cost = match op {
            BinOp::Add | BinOp::Sub => {
                if promote {
                    ops.fp_alu
                } else {
                    ops.int_alu
                }
            }
            BinOp::Mul => {
                if promote {
                    ops.fp_alu
                } else {
                    ops.int_mul
                }
            }
            BinOp::Div => {
                if promote {
                    ops.fp_div
                } else {
                    ops.int_div
                }
            }
            BinOp::Rem => ops.int_div,
            BinOp::Pow => ops.fp_div + ops.fp_alu,
            _ => ops.int_alu,
        };
        self.mach.charge(ctx.proc, cost);
        Ok(match op {
            BinOp::Add => {
                if promote {
                    Value::F(a.as_f() + b.as_f())
                } else {
                    Value::I(a.as_i() + b.as_i())
                }
            }
            BinOp::Sub => {
                if promote {
                    Value::F(a.as_f() - b.as_f())
                } else {
                    Value::I(a.as_i() - b.as_i())
                }
            }
            BinOp::Mul => {
                if promote {
                    Value::F(a.as_f() * b.as_f())
                } else {
                    Value::I(a.as_i() * b.as_i())
                }
            }
            BinOp::Div => {
                if promote {
                    Value::F(a.as_f() / b.as_f())
                } else if b.as_i() == 0 {
                    return Err(ExecError::BadCall("integer division by zero".into()));
                } else {
                    Value::I(a.as_i() / b.as_i())
                }
            }
            BinOp::Rem => {
                if b.as_i() == 0 {
                    return Err(ExecError::BadCall("mod by zero".into()));
                } else {
                    Value::I(a.as_i().rem_euclid(b.as_i()))
                }
            }
            BinOp::Pow => {
                if promote || b.as_i() < 0 {
                    Value::F(a.as_f().powf(b.as_f()))
                } else {
                    Value::I(a.as_i().pow(b.as_i().min(63) as u32))
                }
            }
            BinOp::Lt => Value::I(i64::from(a.as_f() < b.as_f())),
            BinOp::Le => Value::I(i64::from(a.as_f() <= b.as_f())),
            BinOp::Gt => Value::I(i64::from(a.as_f() > b.as_f())),
            BinOp::Ge => Value::I(i64::from(a.as_f() >= b.as_f())),
            BinOp::Eq => Value::I(i64::from(a.as_f() == b.as_f())),
            BinOp::Ne => Value::I(i64::from(a.as_f() != b.as_f())),
            BinOp::And => Value::I(i64::from(a.is_true() && b.is_true())),
            BinOp::Or => Value::I(i64::from(a.is_true() || b.is_true())),
        })
    }

    fn eval_intrinsic(
        &mut self,
        intr: Intrinsic,
        vals: &[Value],
        ctx: &mut Ctx,
    ) -> Result<Value, ExecError> {
        let ops = self.ops();
        let cost = match intr {
            Intrinsic::Sqrt => ops.fp_div,
            Intrinsic::Mod | Intrinsic::CeilDiv => ops.int_div,
            _ => ops.int_alu,
        };
        self.mach.charge(ctx.proc, cost);
        Ok(match intr {
            Intrinsic::Max => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MIN, f64::max))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).max().unwrap_or(0))
                }
            }
            Intrinsic::Min => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MAX, f64::min))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).min().unwrap_or(0))
                }
            }
            Intrinsic::Mod => {
                let b = vals[1].as_i();
                if b == 0 {
                    return Err(ExecError::BadCall("mod by zero".into()));
                }
                Value::I(vals[0].as_i().rem_euclid(b))
            }
            Intrinsic::CeilDiv => {
                let (a, b) = (vals[0].as_i(), vals[1].as_i());
                if b == 0 {
                    return Err(ExecError::BadCall("ceildiv by zero".into()));
                }
                Value::I((a + b - 1).div_euclid(b))
            }
            Intrinsic::Abs => match vals[0] {
                Value::I(v) => Value::I(v.abs()),
                Value::F(v) => Value::F(v.abs()),
            },
            Intrinsic::Sqrt => Value::F(vals[0].as_f().sqrt()),
            Intrinsic::Dble => Value::F(vals[0].as_f()),
            Intrinsic::Int => Value::I(vals[0].as_i()),
        })
    }

    // -----------------------------------------------------------------
    // Addressing.
    // -----------------------------------------------------------------

    /// Evaluate indices to 0-based values with bounds checking.
    fn index_values(
        &mut self,
        array: dsm_ir::ArrayId,
        indices: &[Expr],
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<Vec<u64>, ExecError> {
        let mut vals = Vec::with_capacity(indices.len());
        for ix in indices {
            vals.push(self.eval(ix, sub, frame, ctx)?.as_i());
        }
        let inst = frame.arrays[array.0];
        let desc = &self.binder.get(inst).desc;
        let mut out = Vec::with_capacity(vals.len());
        for (d, &v) in desc.dims.iter().zip(&vals) {
            if v < 1 || v as u64 > d.extent {
                let extents = desc.dims.iter().map(|d| d.extent).collect();
                return Err(ExecError::OutOfBounds {
                    array: sub.arrays[array.0].name.clone(),
                    indices: vals.clone(),
                    extents,
                });
            }
            out.push((v - 1) as u64);
        }
        Ok(out)
    }

    /// Compute an element's address, charging the addressing overhead of
    /// the reference's [`AddrMode`].
    fn element_addr(
        &mut self,
        array: dsm_ir::ArrayId,
        indices: &[Expr],
        mode: AddrMode,
        sub: &Subroutine,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<u64, ExecError> {
        let idx0 = self.index_values(array, indices, sub, frame, ctx)?;
        let inst = frame.arrays[array.0];
        let ops = self.ops();
        let arr = self.binder.get(inst);
        // Attribute this element access — and the addressing loads below —
        // to (array, enclosing region). Index evaluation above already
        // tagged any nested loads with their own arrays.
        if self.opts.profile {
            self.mach.set_tag(
                ctx.proc,
                AccessTag {
                    sym: arr.sym,
                    region: ctx.region,
                },
            );
        }
        let arr = self.binder.get(inst);
        let addr = arr.addr_of(&idx0);
        let n_dist = arr.desc.distributed.len().max(1) as u64;
        let owner = match mode {
            AddrMode::ReshapedRaw
            | AddrMode::ReshapedRawFp
            | AddrMode::ReshapedTiled
            | AddrMode::ReshapedSharedDiv => arr.desc.owner_proc(&idx0),
            _ => 0,
        };
        let slot = arr.ptr_slot_addr(owner);
        match mode {
            AddrMode::Direct | AddrMode::ReshapedHoisted | AddrMode::ReshapedSharedAll => {
                // Strength-reduced column-major walk: one address add.
                self.mach.charge(ctx.proc, ops.int_alu);
            }
            AddrMode::ReshapedRaw | AddrMode::ReshapedRawFp => {
                // One divide per distributed dimension — a MIPS `div`
                // leaves quotient *and* remainder in LO/HI, so the
                // Table-1 div+mod pair is a single unpipelined divide plus
                // register moves — and the indirect portion-pointer load.
                let div = if mode == AddrMode::ReshapedRaw {
                    ops.int_div
                } else {
                    ops.fp_emulated_div
                };
                self.mach
                    .charge(ctx.proc, n_dist * (div + ops.int_alu) + 2 * ops.int_alu);
                if let Some(slot) = slot {
                    self.mach.access(ctx.proc, slot, AccessKind::Read);
                }
            }
            AddrMode::ReshapedTiled | AddrMode::ReshapedSharedDiv => {
                // No div/mod, but the pointer is re-loaded every access
                // (indirect loads cannot be speculated / were CSE-shared
                // only for the divide).
                self.mach.charge(ctx.proc, 2 * ops.int_alu);
                if let Some(slot) = slot {
                    self.mach.access(ctx.proc, slot, AccessKind::Read);
                }
            }
        }
        Ok(addr)
    }
}
