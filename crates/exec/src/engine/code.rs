//! Bytecode format and compiler.
//!
//! Each subroutine lowers to one flat [`Op`] stream over a register file
//! that extends the subroutine's scalar frame: registers `0..n_scalars`
//! *are* the scalars (so `Var` reads cost nothing), followed by four
//! persistent registers per serial loop (normalized bounds and the
//! iteration counter) and a per-statement temporary window.
//!
//! Control constructs that need runtime machinery the opcode stream
//! cannot express — parallel regions, calls, redistribution, bulk loops —
//! compile to one-word ops indexing side tables that keep references into
//! the IR; their expression operands (loop bounds, call arguments) compile
//! to out-of-line blocks terminated by [`Op::Halt`] that the VM runs on
//! demand, preserving the interpreter's exact evaluation order.
//!
//! Statement-level static costs (barriers, hoisted [`Stmt::Overhead`]
//! bookkeeping) and the statement count of each straight-line segment are
//! aggregated into a single leading [`Op::Charge`], so the hot path pays
//! one addition where the interpreter paid a dispatch per statement.

use dsm_ir::{
    ActualArg, AddrMode, BinOp, DistKind, Distribution, Doacross, Expr, Intrinsic, LoopStmt,
    Param, Program, RtExpr, ScalarTy, Stmt, Subroutine, UnOp, VarId,
};
use dsm_machine::MachineConfig;

use super::plan::MAX_RANK;

/// Register index into the extended frame.
pub(crate) type Reg = u16;

/// A slice of the per-subroutine register pool (operand lists).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ListRef {
    pub start: u32,
    pub len: u16,
}

/// One opcode.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    /// End of a block (main body or out-of-line block).
    Halt,
    /// Unconditional jump.
    Jump { target: u32 },
    /// `if`: charge one ALU op, fall through when `cond` is true, else
    /// jump to `else_target`.
    Branch { cond: Reg, else_target: u32 },
    /// Load an integer literal.
    ConstI { dst: Reg, v: i64 },
    /// Load a real literal.
    ConstF { dst: Reg, v: f64 },
    /// Register copy (untyped, cost-free — materializes loop bounds).
    Mov { dst: Reg, src: Reg },
    /// `dst = I(src.as_i())` — scalar-assign coercion to `integer`.
    CoerceI { dst: Reg, src: Reg },
    /// `dst = F(src.as_f())` — scalar-assign coercion to `real*8`.
    CoerceF { dst: Reg, src: Reg },
    /// Unary operator (one ALU op).
    Un { op: UnOp, dst: Reg, src: Reg },
    /// Binary operator (cost from operand types, as the interpreter).
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// Intrinsic call over an operand list.
    Intr { intr: Intrinsic, dst: Reg, args: ListRef },
    /// Runtime distribution query (`NProcs` / `BlockSize`).
    RtDim {
        dst: Reg,
        array: u16,
        dim: u16,
        block: bool,
    },
    /// Segment prologue: add the aggregated static cycle cost of the
    /// following straight-line statements and count their steps.
    Charge { cycles: u64, steps: u32 },
    /// Array element load: bounds-check the index registers, resolve the
    /// address through the interned plan, charge the [`AddrMode`]
    /// overhead, perform the access.
    Load {
        dst: Reg,
        array: u16,
        idx: ListRef,
        mode: AddrMode,
        is_f: bool,
    },
    /// Array element store (value register evaluated first, as the
    /// interpreter evaluates the RHS before the address).
    Store {
        src: Reg,
        array: u16,
        idx: ListRef,
        mode: AddrMode,
        is_f: bool,
    },
    /// Serial loop entry: validate the step, normalize bounds to
    /// integers, enter the first iteration (or jump to `exit`).
    LoopHead {
        var: Reg,
        lb: Reg,
        ub: Reg,
        step: Reg,
        cur: Reg,
        exit: u32,
    },
    /// Serial loop back-edge: advance the private iteration counter
    /// (immune to body writes of the loop variable) and loop or fall out.
    LoopNext {
        var: Reg,
        cur: Reg,
        ub: Reg,
        step: Reg,
        back: u32,
    },
    /// Bulk-loop fast path: if the precheck holds, execute the whole
    /// loop as batched access runs and jump to `exit`; otherwise fall
    /// through to the generic `LoopHead` at the next op.
    Bulk { idx: u16, exit: u32 },
    /// Parallel region (doacross) — side-table index.
    Fork { idx: u16 },
    /// Subroutine call — side-table index.
    CallSub { idx: u16 },
    /// `c$redistribute` — side-table index.
    Redist { idx: u16 },
    /// `c$resize_team` — side-table index (the new team size lives in
    /// the table so the op stays one word).
    Resize { idx: u16 },
    /// `$numthreads` — reads the VM's *current* team size (dynamic:
    /// `resize_team` changes it mid-run, so it cannot be baked as a
    /// constant at compile time).
    NumThreads { dst: Reg },
}

/// Baked per-run operation costs (one clone of the machine config's
/// tables, instead of the interpreter's clone per expression node).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Costs {
    pub int_alu: u64,
    pub int_mul: u64,
    pub int_div: u64,
    pub fp_emulated_div: u64,
    pub fp_alu: u64,
    pub fp_div: u64,
    pub loop_overhead: u64,
    pub parallel_fork: u64,
    pub barrier: u64,
    pub l1_hit: u64,
}

impl Costs {
    pub fn from_config(cfg: &MachineConfig) -> Costs {
        Costs {
            int_alu: cfg.ops.int_alu,
            int_mul: cfg.ops.int_mul,
            int_div: cfg.ops.int_div,
            fp_emulated_div: cfg.ops.fp_emulated_div,
            fp_alu: cfg.ops.fp_alu,
            fp_div: cfg.ops.fp_div,
            loop_overhead: cfg.ops.loop_overhead,
            parallel_fork: cfg.ops.parallel_fork,
            barrier: cfg.ops.barrier,
            l1_hit: cfg.lat.l1_hit,
        }
    }
}

/// An out-of-line expression block: run from `pc` to its `Halt`, result
/// in `reg`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ExprBlock {
    pub pc: u32,
    pub reg: Reg,
}

/// Side table of one doacross.
#[derive(Debug)]
pub(crate) struct ParLoop<'p> {
    pub l: &'p LoopStmt,
    pub d: &'p Doacross,
    pub lb: ExprBlock,
    pub ub: ExprBlock,
    pub step: ExprBlock,
    /// Body block (leading `Charge` carries the body statics and steps;
    /// per-iteration loop overhead is charged by the chunk runner).
    pub body_pc: u32,
}

/// One compiled actual argument.
#[derive(Debug)]
pub(crate) enum ArgCode {
    /// Scalar actual → callee scalar `var` (coerced by its declared
    /// type).
    Scalar { block: ExprBlock, var: u16 },
    /// Whole-array actual → callee formal (same instance).
    Array {
        caller: u16,
        callee: u16,
        caller_reshaped: bool,
    },
    /// Array-element actual → callee formal bound to a view at the
    /// element's address.
    Elem {
        caller: u16,
        callee: u16,
        idx_pc: u32,
        idx_regs: Vec<Reg>,
        caller_reshaped: bool,
    },
}

/// Side table of one call site.
#[derive(Debug)]
pub(crate) struct CallCode<'p> {
    pub name: &'p str,
    /// Resolved callee index (`None` → `UnknownSubroutine` at
    /// execution, as the interpreter).
    pub callee: Option<usize>,
    /// Arguments up to the first kind mismatch (the interpreter
    /// processes — and charges — the preceding arguments before
    /// erroring).
    pub args: Vec<ArgCode>,
    /// Arity or kind-mismatch error raised after processing `args`.
    pub fail: Option<String>,
}

/// Which value an affine index term reads per iteration.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AffVar {
    /// The bulk loop's own variable (varies per iteration).
    Loop,
    /// Another integer scalar (constant across the loop).
    Reg(Reg),
    /// Pure constant.
    None,
}

/// One affine index: `scale · var + offset`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AffTerm {
    pub scale: i64,
    pub offset: i64,
    pub var: AffVar,
}

/// One side of a bulk transfer (the store target or the copy source).
#[derive(Debug)]
pub(crate) struct BulkRef {
    pub array: u16,
    pub mode: AddrMode,
    pub is_f: bool,
    pub idx: Vec<AffTerm>,
}

/// What a bulk loop writes.
#[derive(Debug)]
pub(crate) enum BulkKind {
    /// Loop-invariant RHS: evaluate once, fill the run.
    Fill { value: ExprBlock },
    /// Straight element copy (identical element types, raw word moves).
    Copy { src: BulkRef },
}

/// Side table of one bulk-eligible serial loop.
#[derive(Debug)]
pub(crate) struct BulkCode {
    pub var: Reg,
    pub lb: Reg,
    pub ub: Reg,
    pub step: Reg,
    pub dst: BulkRef,
    pub kind: BulkKind,
    /// Static per-iteration index-evaluation charge (both sides), as the
    /// interpreter would charge walking the affine expressions.
    pub idx_cost: u64,
}

/// Side table of one redistribute statement.
#[derive(Debug)]
pub(crate) struct RedistCode<'p> {
    pub array: u16,
    pub dist: &'p Distribution,
}

/// One compiled subroutine.
#[derive(Debug)]
pub(crate) struct SubCode<'p> {
    pub sub: &'p Subroutine,
    pub ops: Vec<Op>,
    pub pool: Vec<Reg>,
    pub n_regs: usize,
    pub par_loops: Vec<ParLoop<'p>>,
    pub calls: Vec<CallCode<'p>>,
    pub bulks: Vec<BulkCode>,
    pub redists: Vec<RedistCode<'p>>,
    /// New team size of each `resize_team` statement, in program order.
    pub resizes: Vec<u64>,
}

/// The whole program, compiled (indexed like `program.subs`).
#[derive(Debug)]
pub(crate) struct ProgramCode<'p> {
    pub subs: Vec<SubCode<'p>>,
}

impl<'p> ProgramCode<'p> {
    /// Lower every subroutine. Compilation is per-run: the cost table is
    /// baked into the stream (the team size is *not* — `resize_team`
    /// changes it mid-run, so team-dependent values stay dynamic).
    pub fn compile(program: &'p Program, cfg: &MachineConfig) -> ProgramCode<'p> {
        let costs = Costs::from_config(cfg);
        let code = ProgramCode {
            subs: program
                .subs
                .iter()
                .map(|s| SubCompiler::compile(s, program, costs))
                .collect(),
        };
        if std::env::var_os("DSM_DUMP_OPS").is_some() {
            for sc in &code.subs {
                eprintln!("=== {} (n_regs {}) ===", sc.sub.name, sc.n_regs);
                for (pc, op) in sc.ops.iter().enumerate() {
                    eprintln!("{pc:4}: {op:?}");
                }
                for (i, pl) in sc.par_loops.iter().enumerate() {
                    eprintln!(
                        "par {i}: lb={:?} ub={:?} step={:?} body_pc={}",
                        pl.lb, pl.ub, pl.step, pl.body_pc
                    );
                }
                for (i, b) in sc.bulks.iter().enumerate() {
                    eprintln!("bulk {i}: {b:?}");
                }
            }
        }
        code
    }
}

/// Deferred out-of-line block, emitted after the main stream.
enum Deferred<'p> {
    Expr { e: &'p Expr, slot: Slot },
    Body { body: &'p [Stmt], slot: Slot },
    ExprList { exprs: &'p [Expr], slot: Slot },
}

/// Where a deferred block's location is recorded once emitted.
enum Slot {
    ParLb(usize),
    ParUb(usize),
    ParStep(usize),
    ParBody(usize),
    CallScalar { call: usize, arg: usize },
    CallElem { call: usize, arg: usize },
    BulkValue(usize),
}

struct SubCompiler<'p> {
    sub: &'p Subroutine,
    program: &'p Program,
    costs: Costs,
    ops: Vec<Op>,
    pool: Vec<Reg>,
    par_loops: Vec<ParLoop<'p>>,
    calls: Vec<CallCode<'p>>,
    bulks: Vec<BulkCode>,
    redists: Vec<RedistCode<'p>>,
    resizes: Vec<u64>,
    /// First temporary register (scalars + persistent loop registers).
    tmp_base: u16,
    /// Next temporary within the current statement.
    next_tmp: u16,
    /// High-water mark of the temporary window.
    max_tmp: u16,
    /// Persistent-register allocator for serial loops (4 each).
    next_loop: u16,
    deferred: Vec<Deferred<'p>>,
}

impl<'p> SubCompiler<'p> {
    fn compile(sub: &'p Subroutine, program: &'p Program, costs: Costs) -> SubCode<'p> {
        // Pre-pass: every serial loop anywhere in the subroutine gets
        // four persistent registers (bounds survive across its body).
        let mut serial_loops = 0u32;
        for st in &sub.body {
            st.walk(&mut |s| {
                if let Stmt::Loop(l) = s {
                    if l.par.is_none() {
                        serial_loops += 1;
                    }
                }
            });
        }
        let tmp_base = sub.scalars.len() + 4 * serial_loops as usize;
        assert!(tmp_base < u16::MAX as usize, "register file overflow");
        let mut c = SubCompiler {
            sub,
            program,
            costs,
            ops: Vec::new(),
            pool: Vec::new(),
            par_loops: Vec::new(),
            calls: Vec::new(),
            bulks: Vec::new(),
            redists: Vec::new(),
            resizes: Vec::new(),
            tmp_base: tmp_base as u16,
            next_tmp: 0,
            max_tmp: 0,
            next_loop: 0,
            deferred: Vec::new(),
        };
        c.block(&sub.body);
        c.ops.push(Op::Halt);
        while let Some(d) = c.deferred.pop() {
            c.emit_deferred(d);
        }
        let n_regs = tmp_base + c.max_tmp as usize;
        assert!(n_regs <= u16::MAX as usize + 1, "register file overflow");
        SubCode {
            sub,
            ops: c.ops,
            pool: c.pool,
            n_regs,
            par_loops: c.par_loops,
            calls: c.calls,
            bulks: c.bulks,
            redists: c.redists,
            resizes: c.resizes,
        }
    }

    fn here(&self) -> u32 {
        self.ops.len() as u32
    }

    fn emit(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.ops[at] {
            Op::Jump { target: t } | Op::Branch { else_target: t, .. } => *t = target,
            Op::LoopHead { exit, .. } | Op::Bulk { exit, .. } => *exit = target,
            _ => unreachable!("patch target is not a jump"),
        }
    }

    fn tmp(&mut self) -> Reg {
        let r = self.tmp_base + self.next_tmp;
        self.next_tmp += 1;
        self.max_tmp = self.max_tmp.max(self.next_tmp);
        r
    }

    fn list(&mut self, regs: &[Reg]) -> ListRef {
        let start = self.pool.len() as u32;
        self.pool.extend_from_slice(regs);
        ListRef {
            start,
            len: regs.len() as u16,
        }
    }

    /// Fixed cycle cost of a statement that compiles to no ops of its
    /// own (`Barrier`, hoisted `Overhead`); zero for everything else.
    fn static_cost(&self, st: &Stmt) -> u64 {
        match st {
            Stmt::Barrier => self.costs.barrier,
            Stmt::Overhead {
                int_divs,
                indirect_loads,
                int_alu,
            } => {
                u64::from(*int_divs) * self.costs.int_div
                    + u64::from(*indirect_loads) * (self.costs.l1_hit + self.costs.int_alu)
                    + u64::from(*int_alu) * self.costs.int_alu
            }
            _ => 0,
        }
    }

    /// A statement list: one aggregated `Charge` (statics + step count),
    /// then the statements.
    ///
    /// Static costs are folded into the entry charge only up to the
    /// first compound statement (`Loop`/`If`/`Call`/`Redistribute`).
    /// A compound statement can contain a parallel region, and its join
    /// levels every member to the executing proc's clock — so a barrier
    /// or overhead cost hoisted from *after* the region to block entry
    /// would be broadcast to the whole team. Past that point each
    /// static cost is charged at its program position, matching the
    /// interpreter's placement exactly.
    fn block(&mut self, body: &'p [Stmt]) {
        let compound = |st: &Stmt| {
            matches!(
                st,
                Stmt::Loop(_)
                    | Stmt::If { .. }
                    | Stmt::Call { .. }
                    | Stmt::Redistribute { .. }
                    | Stmt::ResizeTeam { .. }
            )
        };
        let boundary = body.iter().position(compound).unwrap_or(body.len());
        let steps = body.len() as u32;
        let cycles: u64 = body[..boundary].iter().map(|st| self.static_cost(st)).sum();
        if cycles > 0 || steps > 0 {
            self.emit(Op::Charge { cycles, steps });
        }
        for (i, st) in body.iter().enumerate() {
            if i > boundary {
                let cycles = self.static_cost(st);
                if cycles > 0 {
                    self.emit(Op::Charge { cycles, steps: 0 });
                }
            }
            self.stmt(st);
        }
    }

    fn stmt(&mut self, st: &'p Stmt) {
        self.next_tmp = 0;
        match st {
            Stmt::SAssign { var, value } => {
                let r = self.expr(value);
                let dst = var.0 as Reg;
                match self.sub.scalars[var.0].ty {
                    ScalarTy::Int => self.emit(Op::CoerceI { dst, src: r }),
                    ScalarTy::Real => self.emit(Op::CoerceF { dst, src: r }),
                };
            }
            Stmt::Assign {
                array,
                indices,
                value,
                mode,
            } => {
                let src = self.expr(value);
                let idx = self.expr_list(indices);
                self.emit(Op::Store {
                    src,
                    array: array.0 as u16,
                    idx,
                    mode: *mode,
                    is_f: self.sub.arrays[array.0].ty == ScalarTy::Real,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.expr(cond);
                let br = self.emit(Op::Branch {
                    cond: c,
                    else_target: 0,
                });
                self.block(then_body);
                let j = self.emit(Op::Jump { target: 0 });
                let else_pc = self.here();
                self.patch(br, else_pc);
                self.block(else_body);
                let end = self.here();
                self.patch(j, end);
            }
            Stmt::Loop(l) => match &l.par {
                None => self.serial_loop(l),
                Some(d) => {
                    let idx = self.par_loops.len();
                    self.par_loops.push(ParLoop {
                        l,
                        d,
                        lb: ExprBlock::default(),
                        ub: ExprBlock::default(),
                        step: ExprBlock::default(),
                        body_pc: 0,
                    });
                    self.deferred.push(Deferred::Expr {
                        e: &l.lb,
                        slot: Slot::ParLb(idx),
                    });
                    self.deferred.push(Deferred::Expr {
                        e: &l.ub,
                        slot: Slot::ParUb(idx),
                    });
                    self.deferred.push(Deferred::Expr {
                        e: &l.step,
                        slot: Slot::ParStep(idx),
                    });
                    self.deferred.push(Deferred::Body {
                        body: &l.body,
                        slot: Slot::ParBody(idx),
                    });
                    self.emit(Op::Fork { idx: idx as u16 });
                }
            },
            Stmt::Call { name, args } => {
                let idx = self.compile_call(name, args);
                self.emit(Op::CallSub { idx: idx as u16 });
            }
            Stmt::Redistribute { array, dist } => {
                let idx = self.redists.len();
                self.redists.push(RedistCode {
                    array: array.0 as u16,
                    dist,
                });
                self.emit(Op::Redist { idx: idx as u16 });
            }
            Stmt::ResizeTeam { nprocs } => {
                let idx = self.resizes.len();
                self.resizes.push(*nprocs);
                self.emit(Op::Resize { idx: idx as u16 });
            }
            // Folded into the enclosing segment's `Charge`.
            Stmt::Barrier | Stmt::Overhead { .. } => {}
        }
    }

    fn serial_loop(&mut self, l: &'p LoopStmt) {
        let base = self.sub.scalars.len() as u16 + 4 * self.next_loop;
        self.next_loop += 1;
        let (lb_r, ub_r, step_r, cur_r) = (base, base + 1, base + 2, base + 3);
        // Bounds evaluate in interpreter order: lb, ub, step.
        let r = self.expr(&l.lb);
        self.emit(Op::Mov { dst: lb_r, src: r });
        let r = self.expr(&l.ub);
        self.emit(Op::Mov { dst: ub_r, src: r });
        let r = self.expr(&l.step);
        self.emit(Op::Mov {
            dst: step_r,
            src: r,
        });
        let bulk_at = self.try_bulk(l, lb_r, ub_r, step_r).map(|b| {
            let idx = self.bulks.len();
            self.bulks.push(b);
            self.emit(Op::Bulk {
                idx: idx as u16,
                exit: 0,
            })
        });
        let head = self.emit(Op::LoopHead {
            var: l.var.0 as Reg,
            lb: lb_r,
            ub: ub_r,
            step: step_r,
            cur: cur_r,
            exit: 0,
        });
        let body_start = self.here();
        self.block(&l.body);
        self.emit(Op::LoopNext {
            var: l.var.0 as Reg,
            cur: cur_r,
            ub: ub_r,
            step: step_r,
            back: body_start,
        });
        let exit = self.here();
        self.patch(head, exit);
        if let Some(b) = bulk_at {
            self.patch(b, exit);
        }
    }

    fn expr(&mut self, e: &'p Expr) -> Reg {
        match e {
            Expr::IConst(v) => {
                let dst = self.tmp();
                self.emit(Op::ConstI { dst, v: *v });
                dst
            }
            Expr::FConst(v) => {
                let dst = self.tmp();
                self.emit(Op::ConstF { dst, v: *v });
                dst
            }
            Expr::Var(v) => v.0 as Reg,
            Expr::Rt(rt) => {
                let dst = self.tmp();
                match rt {
                    RtExpr::NumThreads => {
                        self.emit(Op::NumThreads { dst });
                    }
                    RtExpr::NProcs { array, dim } => {
                        self.emit(Op::RtDim {
                            dst,
                            array: array.0 as u16,
                            dim: *dim as u16,
                            block: false,
                        });
                    }
                    RtExpr::BlockSize { array, dim } => {
                        self.emit(Op::RtDim {
                            dst,
                            array: array.0 as u16,
                            dim: *dim as u16,
                            block: true,
                        });
                    }
                }
                dst
            }
            Expr::Unary(op, x) => {
                let src = self.expr(x);
                let dst = self.tmp();
                self.emit(Op::Un { op: *op, dst, src });
                dst
            }
            Expr::Binary(op, a, b) => {
                let ra = self.expr(a);
                let rb = self.expr(b);
                let dst = self.tmp();
                self.emit(Op::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
                dst
            }
            Expr::Call(intr, args) => {
                let regs: Vec<Reg> = args.iter().map(|a| self.expr(a)).collect();
                let args = self.list(&regs);
                let dst = self.tmp();
                self.emit(Op::Intr {
                    intr: *intr,
                    dst,
                    args,
                });
                dst
            }
            Expr::Load {
                array,
                indices,
                mode,
            } => {
                let idx = self.expr_list(indices);
                let dst = self.tmp();
                self.emit(Op::Load {
                    dst,
                    array: array.0 as u16,
                    idx,
                    mode: *mode,
                    is_f: self.sub.arrays[array.0].ty == ScalarTy::Real,
                });
                dst
            }
        }
    }

    fn expr_list(&mut self, exprs: &'p [Expr]) -> ListRef {
        let regs: Vec<Reg> = exprs.iter().map(|e| self.expr(e)).collect();
        self.list(&regs)
    }

    fn compile_call(&mut self, name: &'p str, args: &'p [ActualArg]) -> usize {
        let ci = self.calls.len();
        let callee_id = self.program.sub_named(name).map(|s| s.0);
        self.calls.push(CallCode {
            name,
            callee: callee_id,
            args: Vec::new(),
            fail: None,
        });
        let Some(sid) = callee_id else {
            return ci; // UnknownSubroutine at execution.
        };
        let callee = &self.program.subs[sid];
        if callee.params.len() != args.len() {
            self.calls[ci].fail = Some(format!(
                "`{name}` expects {} arguments, got {}",
                callee.params.len(),
                args.len()
            ));
            return ci;
        }
        for (pos, (param, actual)) in callee.params.iter().zip(args).enumerate() {
            let ai = self.calls[ci].args.len();
            match (param, actual) {
                (Param::Scalar(v), ActualArg::Scalar(e)) => {
                    self.calls[ci].args.push(ArgCode::Scalar {
                        block: ExprBlock::default(),
                        var: v.0 as u16,
                    });
                    self.deferred.push(Deferred::Expr {
                        e,
                        slot: Slot::CallScalar { call: ci, arg: ai },
                    });
                }
                (Param::Array(a), ActualArg::Array(actual_id)) => {
                    self.calls[ci].args.push(ArgCode::Array {
                        caller: actual_id.0 as u16,
                        callee: a.0 as u16,
                        caller_reshaped: self.sub.arrays[actual_id.0].dist_kind
                            == DistKind::Reshaped,
                    });
                }
                (Param::Array(a), ActualArg::ArrayElem(actual_id, idx)) => {
                    self.calls[ci].args.push(ArgCode::Elem {
                        caller: actual_id.0 as u16,
                        callee: a.0 as u16,
                        idx_pc: 0,
                        idx_regs: Vec::new(),
                        caller_reshaped: self.sub.arrays[actual_id.0].dist_kind
                            == DistKind::Reshaped,
                    });
                    self.deferred.push(Deferred::ExprList {
                        exprs: idx,
                        slot: Slot::CallElem { call: ci, arg: ai },
                    });
                }
                (Param::Scalar(_), _) => {
                    self.calls[ci].fail = Some(format!(
                        "argument {} of `{name}` must be a scalar",
                        pos + 1
                    ));
                    return ci;
                }
                (Param::Array(_), ActualArg::Scalar(_)) => {
                    self.calls[ci].fail = Some(format!(
                        "argument {} of `{name}` must be an array",
                        pos + 1
                    ));
                    return ci;
                }
            }
        }
        ci
    }

    // -----------------------------------------------------------------
    // Bulk-loop analysis.
    // -----------------------------------------------------------------

    /// Recognize `s·var + c` with literal constants whose every scalar is
    /// integer-typed (so the closed form matches the interpreter's value
    /// arithmetic exactly), returning the term and the interpreter's
    /// per-evaluation charge.
    fn affine_term(&self, e: &'p Expr, loopvar: VarId) -> Option<(AffTerm, u64)> {
        let (var, scale, offset) = e.as_affine()?;
        let cost = affine_cost(e, &self.costs)?;
        let var = match var {
            None => AffVar::None,
            // The loop variable always holds an integer at runtime.
            Some(v) if v == loopvar => AffVar::Loop,
            Some(v) => {
                if self.sub.scalars[v.0].ty != ScalarTy::Int {
                    return None;
                }
                AffVar::Reg(v.0 as Reg)
            }
        };
        Some((
            AffTerm {
                scale,
                offset,
                var,
            },
            cost,
        ))
    }

    /// A serial loop is bulk-eligible when its body is a single array
    /// store with affine indices and a RHS that is either loop-invariant
    /// (fill) or a single affine load of the same element type (copy).
    fn try_bulk(&mut self, l: &'p LoopStmt, lb: Reg, ub: Reg, step: Reg) -> Option<BulkCode> {
        let [Stmt::Assign {
            array,
            indices,
            value,
            mode,
        }] = l.body.as_slice()
        else {
            return None;
        };
        if indices.len() > MAX_RANK {
            return None;
        }
        let mut idx_cost = 0u64;
        let mut dst_idx = Vec::with_capacity(indices.len());
        for e in indices {
            let (t, c) = self.affine_term(e, l.var)?;
            idx_cost += c;
            dst_idx.push(t);
        }
        let dst_is_f = self.sub.arrays[array.0].ty == ScalarTy::Real;
        let dst = BulkRef {
            array: array.0 as u16,
            mode: *mode,
            is_f: dst_is_f,
            idx: dst_idx,
        };
        if let Expr::Load {
            array: sa,
            indices: sidx,
            mode: smode,
        } = value
        {
            // Copy: identical element types so raw words move unchanged.
            if sidx.len() > MAX_RANK
                || (self.sub.arrays[sa.0].ty == ScalarTy::Real) != dst_is_f
            {
                return None;
            }
            let mut src_idx = Vec::with_capacity(sidx.len());
            for e in sidx {
                let (t, c) = self.affine_term(e, l.var)?;
                idx_cost += c;
                src_idx.push(t);
            }
            return Some(BulkCode {
                var: l.var.0 as Reg,
                lb,
                ub,
                step,
                dst,
                idx_cost,
                kind: BulkKind::Copy {
                    src: BulkRef {
                        array: sa.0 as u16,
                        mode: *smode,
                        is_f: dst_is_f,
                        idx: src_idx,
                    },
                },
            });
        }
        // Fill: the RHS must be loop-invariant and access-free so one
        // evaluation stands for every iteration.
        let mut loads = 0usize;
        value.for_each_load(&mut |_, _, _| loads += 1);
        if loads > 0 || value.uses_var(l.var) {
            return None;
        }
        let bi = self.bulks.len();
        self.deferred.push(Deferred::Expr {
            e: value,
            slot: Slot::BulkValue(bi),
        });
        Some(BulkCode {
            var: l.var.0 as Reg,
            lb,
            ub,
            step,
            dst,
            idx_cost,
            kind: BulkKind::Fill {
                value: ExprBlock::default(),
            },
        })
    }

    fn emit_deferred(&mut self, d: Deferred<'p>) {
        match d {
            Deferred::Expr { e, slot } => {
                let pc = self.here();
                self.next_tmp = 0;
                let reg = self.expr(e);
                self.emit(Op::Halt);
                let block = ExprBlock { pc, reg };
                match slot {
                    Slot::ParLb(i) => self.par_loops[i].lb = block,
                    Slot::ParUb(i) => self.par_loops[i].ub = block,
                    Slot::ParStep(i) => self.par_loops[i].step = block,
                    Slot::CallScalar { call, arg } => {
                        let ArgCode::Scalar { block: b, .. } = &mut self.calls[call].args[arg]
                        else {
                            unreachable!()
                        };
                        *b = block;
                    }
                    Slot::BulkValue(i) => {
                        let BulkKind::Fill { value } = &mut self.bulks[i].kind else {
                            unreachable!()
                        };
                        *value = block;
                    }
                    _ => unreachable!("expression block with a non-expression slot"),
                }
            }
            Deferred::Body { body, slot } => {
                let pc = self.here();
                self.block(body);
                self.emit(Op::Halt);
                let Slot::ParBody(i) = slot else {
                    unreachable!()
                };
                self.par_loops[i].body_pc = pc;
            }
            Deferred::ExprList { exprs, slot } => {
                let pc = self.here();
                self.next_tmp = 0;
                let regs: Vec<Reg> = exprs.iter().map(|e| self.expr(e)).collect();
                self.emit(Op::Halt);
                let Slot::CallElem { call, arg } = slot else {
                    unreachable!()
                };
                let ArgCode::Elem {
                    idx_pc, idx_regs, ..
                } = &mut self.calls[call].args[arg]
                else {
                    unreachable!()
                };
                *idx_pc = pc;
                *idx_regs = regs;
            }
        }
    }
}

/// The interpreter's cycle charge for evaluating an affine expression
/// (all-integer operands), or `None` when the shape falls outside what
/// [`Expr::as_affine`] accepts.
fn affine_cost(e: &Expr, costs: &Costs) -> Option<u64> {
    Some(match e {
        Expr::IConst(_) | Expr::Var(_) => 0,
        Expr::Unary(UnOp::Neg, x) => affine_cost(x, costs)? + costs.int_alu,
        Expr::Binary(BinOp::Add | BinOp::Sub, a, b) => {
            affine_cost(a, costs)? + affine_cost(b, costs)? + costs.int_alu
        }
        Expr::Binary(BinOp::Mul, a, b) => {
            affine_cost(a, costs)? + affine_cost(b, costs)? + costs.int_mul
        }
        _ => return None,
    })
}
