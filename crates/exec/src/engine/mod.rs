//! The compiled bytecode execution engine.
//!
//! [`crate::run_outcome`] lowers the post-pipeline IR to a flat,
//! register-based opcode stream once per run ([`code`]), interns every
//! array's address polynomial in a [`plan::PlanCache`], and executes the
//! stream on a small virtual machine ([`vm`]) that feeds the same
//! simulated machine model as the tree-walking interpreter — access for
//! access, charge for charge.  The interpreter survives as
//! [`Engine::Interp`], the differential reference: both engines produce
//! bit-identical captures and identical hardware counters.

mod code;
mod plan;
mod vm;

pub(crate) use vm::run_bytecode;

/// Which executor runs the program (see [`crate::ExecOptions::engine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// The compiled bytecode engine (default): flat opcode stream,
    /// interned address plans, bulk access runs.
    #[default]
    Bytecode,
    /// The tree-walking interpreter, kept as the differential reference
    /// for conformance (`dsmfuzz --engine-diff`).
    Interp,
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Engine::Bytecode => write!(f, "bytecode"),
            Engine::Interp => write!(f, "interp"),
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bytecode" => Ok(Engine::Bytecode),
            "interp" => Ok(Engine::Interp),
            other => Err(format!(
                "unknown engine `{other}` (expected `bytecode` or `interp`)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Engine;

    #[test]
    fn engine_default_is_bytecode() {
        assert_eq!(Engine::default(), Engine::Bytecode);
    }

    #[test]
    fn engine_parses_and_displays() {
        assert_eq!("interp".parse::<Engine>(), Ok(Engine::Interp));
        assert_eq!("bytecode".parse::<Engine>(), Ok(Engine::Bytecode));
        assert!("treewalk".parse::<Engine>().is_err());
        assert_eq!(Engine::Bytecode.to_string(), "bytecode");
        assert_eq!(Engine::Interp.to_string(), "interp");
    }
}
