//! Interned address plans.
//!
//! The interpreter recomputes every element address from the runtime
//! descriptor — allocating owner-coordinate and local-offset vectors on
//! each reshaped access.  The engine interns one [`AddrPlan`] per live
//! array instance instead: byte strides for contiguous layouts, and
//! flattened grid/portion tables for reshaped ones, so an address resolve
//! is pure arithmetic with zero allocation.  The plans reproduce
//! [`dsm_runtime::RtArray::addr_of`] bit-for-bit.

use dsm_runtime::{ArrayLayout, DimDesc, RtArray};

use crate::bind::Binder;

/// Maximum supported array rank (Fortran allows 7).
pub(crate) const MAX_RANK: usize = 8;

/// Per-dimension geometry of a reshaped plan.
#[derive(Debug, Clone)]
pub(crate) struct DimPlan {
    /// The resolved dimension descriptor (owner / local-offset math).
    pub desc: DimDesc,
    /// Whether this dimension is distributed.
    pub distributed: bool,
    /// `portion_extent(c)` for every grid coordinate `c` of this
    /// dimension (all `1`s when undistributed).
    pub pext: Box<[u64]>,
}

/// Layout-specific part of a plan.
#[derive(Debug, Clone)]
pub(crate) enum PlanKind {
    /// Column-major storage: `addr = base + Σ idx[d] · strides[d]`.
    Contig {
        /// First element's address.
        base: u64,
        /// Byte stride per dimension.
        strides: Vec<u64>,
    },
    /// Figure-3 processor-array storage.
    Resh(Box<ReshPlan>),
}

/// Flattened reshaped-layout tables.
#[derive(Debug, Clone)]
pub(crate) struct ReshPlan {
    /// Portion-pointer table base address.
    pub ptr_table: u64,
    /// Portion base address per linearized grid processor.
    pub portions: Vec<u64>,
    /// Grid extent per distributed dimension.
    pub grid: Vec<u64>,
    /// Dimension index of each grid axis (the descriptor's
    /// `distributed` list).
    pub dist_dims: Vec<usize>,
    /// All dimensions, declaration order.
    pub dims: Vec<DimPlan>,
}

/// One array instance's interned addressing state.
#[derive(Debug, Clone)]
pub(crate) struct AddrPlan {
    /// Interned machine symbol (access-tag attribution).
    pub sym: u32,
    /// Declared extent per dimension (bounds checks).
    pub extents: Vec<u64>,
    /// Distributed-dimension count, min 1 (the per-access div count of
    /// the raw addressing modes).
    pub n_dist: u64,
    /// Layout-specific tables.
    pub kind: PlanKind,
}

impl AddrPlan {
    /// Build the plan for a live array instance.
    pub fn build(arr: &RtArray) -> AddrPlan {
        let extents: Vec<u64> = arr.desc.dims.iter().map(|d| d.extent).collect();
        let n_dist = arr.desc.distributed.len().max(1) as u64;
        let kind = match &arr.layout {
            ArrayLayout::Contiguous { base } => {
                let mut strides = Vec::with_capacity(extents.len());
                let mut s = arr.elem_bytes;
                for &e in &extents {
                    strides.push(s);
                    s *= e;
                }
                PlanKind::Contig {
                    base: *base,
                    strides,
                }
            }
            ArrayLayout::Reshaped {
                ptr_table,
                portions,
            } => {
                let dims = arr
                    .desc
                    .dims
                    .iter()
                    .map(|d| DimPlan {
                        desc: *d,
                        distributed: d.dist.is_distributed(),
                        pext: (0..d.nprocs).map(|p| d.portion_extent(p)).collect(),
                    })
                    .collect();
                PlanKind::Resh(Box::new(ReshPlan {
                    ptr_table: *ptr_table,
                    portions: portions.clone(),
                    grid: arr.desc.grid.iter().map(|&g| g as u64).collect(),
                    dist_dims: arr.desc.distributed.clone(),
                    dims,
                }))
            }
        };
        AddrPlan {
            sym: arr.sym,
            extents,
            n_dist,
            kind,
        }
    }

    /// Address and owning grid processor of the element at 0-based
    /// `idx0` — the allocation-free equivalent of
    /// [`RtArray::addr_of`] + `owner_proc`.
    #[inline]
    pub fn resolve(&self, idx0: &[u64]) -> (u64, usize) {
        match &self.kind {
            PlanKind::Contig { base, strides } => {
                let mut a = *base;
                for (d, &i) in idx0.iter().enumerate() {
                    a += i * strides[d];
                }
                (a, 0)
            }
            PlanKind::Resh(r) => {
                // Linearized owner: fold grid axes highest-first
                // (mirrors `DistDescriptor::linearize_coords`).
                let mut proc = 0u64;
                for gi in (0..r.dist_dims.len()).rev() {
                    let di = r.dist_dims[gi];
                    proc = proc * r.grid[gi] + r.dims[di].desc.owner(idx0[di]);
                }
                // Column-major offset within the owner's portion
                // (mirrors `DistDescriptor::local_linear`).
                let mut off = 0u64;
                for di in (0..r.dims.len()).rev() {
                    let d = &r.dims[di];
                    let (li, ext) = if d.distributed {
                        let c = d.desc.owner(idx0[di]);
                        (d.desc.local_offset(idx0[di]), d.pext[c as usize])
                    } else {
                        (idx0[di], d.desc.extent)
                    };
                    off = off * ext + li;
                }
                (r.portions[proc as usize] + off * 8, proc as usize)
            }
        }
    }

    /// Address of the portion-pointer slot for grid processor `p`
    /// (`None` for contiguous layouts), as
    /// [`RtArray::ptr_slot_addr`].
    #[inline]
    pub fn slot_addr(&self, p: usize) -> Option<u64> {
        match &self.kind {
            PlanKind::Resh(r) => Some(r.ptr_table + (p * 8) as u64),
            PlanKind::Contig { .. } => None,
        }
    }
}

/// Plans for every live binder instance, indexed by arena slot.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    plans: Vec<AddrPlan>,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache { plans: Vec::new() }
    }

    /// Intern plans for instances bound since the last sync (the arena
    /// only grows; existing plans stay valid except across
    /// [`PlanCache::rebuild`]).
    pub fn sync(&mut self, binder: &Binder) {
        while self.plans.len() < binder.live() {
            self.plans.push(AddrPlan::build(binder.get(self.plans.len())));
        }
    }

    /// Re-intern one instance after a redistribution changed its
    /// descriptor.
    pub fn rebuild(&mut self, idx: usize, binder: &Binder) {
        self.plans[idx] = AddrPlan::build(binder.get(idx));
    }

    #[inline]
    pub fn get(&self, idx: usize) -> &AddrPlan {
        &self.plans[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_ir::{Dist, DistKind, Distribution};
    use dsm_machine::{Machine, MachineConfig};
    use dsm_runtime::PoolSet;

    fn check_parity(arr: &RtArray) {
        let plan = AddrPlan::build(arr);
        let rank = arr.desc.dims.len();
        let total = arr.desc.total_len();
        for linear in 0..total {
            let mut rest = linear;
            let mut idx = Vec::with_capacity(rank);
            for d in &arr.desc.dims {
                idx.push(rest % d.extent);
                rest /= d.extent;
            }
            let (addr, owner) = plan.resolve(&idx);
            assert_eq!(addr, arr.addr_of(&idx), "addr mismatch at {idx:?}");
            if matches!(arr.layout, ArrayLayout::Reshaped { .. }) {
                assert_eq!(owner, arr.desc.owner_proc(&idx), "owner at {idx:?}");
                assert_eq!(plan.slot_addr(owner), arr.ptr_slot_addr(owner));
            } else {
                assert_eq!(plan.slot_addr(owner), None);
            }
        }
    }

    #[test]
    fn plans_match_rtarray_addressing() {
        let mut m = Machine::new(MachineConfig::small_test(4));
        let mut pools = PoolSet::new(4, 1 << 16);
        for (dist, kind) in [
            (None, DistKind::None),
            (
                Some(Distribution::new(vec![Dist::Block, Dist::Star])),
                DistKind::Reshaped,
            ),
            (
                Some(Distribution::new(vec![Dist::Cyclic(3), Dist::Block])),
                DistKind::Reshaped,
            ),
            (
                Some(Distribution::new(vec![Dist::Block, Dist::Block])),
                DistKind::Regular,
            ),
        ] {
            let arr = RtArray::instantiate(
                &mut m,
                &mut pools,
                "a",
                &[13, 9],
                dist.as_ref(),
                kind,
                4,
            );
            check_parity(&arr);
        }
    }
}
