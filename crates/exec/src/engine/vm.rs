//! The bytecode virtual machine.
//!
//! Executes the opcode streams of [`super::code`] against the simulated
//! machine, issuing the *identical* ordered sequence of memory accesses,
//! tag stamps and (summed) cycle charges as the tree-walking interpreter,
//! so captures and hardware counters match it bit for bit.  Three things
//! make it fast:
//!
//! * arithmetic cycle charges accumulate in a local `pending` counter and
//!   reach the machine in one `charge` call at the next synchronization
//!   point (cycle charges are purely additive, and nothing between flush
//!   points reads the clock — migration epochs trigger on access counts);
//! * element addresses resolve through interned [`AddrPlan`]s — pure
//!   arithmetic, no per-access allocation;
//! * eligible serial loops run as bulk transfers: a loop-invariant fill
//!   over a contiguous destination becomes one [`AccessRun`] handed to
//!   the machine in a single call, and affine fills/copies elsewhere run
//!   as fused per-element loops with no opcode dispatch.

use std::sync::atomic::{AtomicU64, Ordering};

use dsm_ir::{
    AddrMode, AffIdx, BinOp, Extent, Intrinsic, Param, Program, ScalarTy, SchedType, UnOp,
};
use dsm_machine::{AccessKind, AccessRun, AccessTag, ProcId, SERIAL_REGION};
use dsm_runtime::epoch::{join_epoch, EpochClock};
use dsm_runtime::{argcheck::ArgInfo, partition, sched, ArgChecker, ArrayLayout, RuntimeError};

use crate::bind::Binder;
use crate::interp::{
    body_parallel_safe, collect_outcome, BinderRef, Ctx, Mach, RedistMode, RunAccounting,
};
use crate::report::RunOutcome;
use crate::value::{Frame, Value};
use crate::{ExecError, ExecOptions};

use super::code::{
    AffVar, ArgCode, BulkCode, BulkKind, BulkRef, Costs, Op, ParLoop, ProgramCode, SubCode,
};
use super::plan::{PlanCache, PlanKind, MAX_RANK};

/// Run `program` as compiled bytecode (the [`crate::Engine::Bytecode`]
/// path behind [`crate::run_outcome`]).
pub(crate) fn run_bytecode(
    machine: &mut dsm_machine::Machine,
    program: &Program,
    opts: &ExecOptions,
) -> Result<RunOutcome, ExecError> {
    assert!(
        opts.nprocs >= 1 && opts.nprocs <= machine.nprocs(),
        "nprocs {} out of range for machine with {} processors",
        opts.nprocs,
        machine.nprocs()
    );
    let host_t0 = std::time::Instant::now();
    if opts.profile {
        machine.enable_profiling();
    }
    if let Some(policy) = opts.migration {
        machine.set_migration(policy);
    }
    if let Some(sampling) = opts.sampling {
        machine.set_sampling(sampling).map_err(ExecError::Options)?;
    }
    let costs = Costs::from_config(machine.config());
    let code = ProgramCode::compile(program, machine.config());
    let binder = Binder::new(machine, program, opts.nprocs);
    let steps = AtomicU64::new(0);
    let mut vm = Vm {
        mach: Mach::Whole(machine),
        code: &code,
        opts,
        binder: BinderRef::Owned(binder),
        plans: PlansRef::Owned(PlanCache::new()),
        checker: ArgChecker::new(),
        regions: 0,
        region_cycles: 0,
        region_wall: std::time::Duration::ZERO,
        region_names: Vec::new(),
        steps: &steps,
        epoch: EpochClock::default(),
        pending: 0,
        costs,
        team: opts.nprocs,
    };
    let main = program.main_sub();
    let main_sc = &code.subs[program.main];
    let mut frame = Frame::new(main);
    frame.scalars.resize(main_sc.n_regs, Value::I(0));
    vm.binder
        .owned()
        .bind_declarations(vm.mach.whole(), main, &mut frame);
    vm.plans.owned().sync(vm.binder.shared());
    let mut ctx = Ctx {
        proc: ProcId(0),
        in_region: false,
        region: SERIAL_REGION,
    };
    if let Some(p) = opts.resize_to {
        vm.exec_resize(p, &ctx)?;
    }
    let res = vm.run_block(main_sc, 0, &mut frame, &mut ctx);
    vm.flush(ctx.proc);
    res?;

    let Vm {
        mach,
        binder,
        checker,
        regions,
        region_cycles,
        region_wall,
        region_names,
        ..
    } = vm;
    let Mach::Whole(machine) = mach else {
        unreachable!("top-level VM always holds the whole machine")
    };
    let acct = RunAccounting {
        regions,
        region_cycles,
        region_wall,
        region_names,
        argcheck_ops: checker.stats(),
    };
    Ok(collect_outcome(
        machine,
        main,
        opts,
        binder.shared(),
        &frame,
        acct,
        host_t0,
    ))
}

/// The VM's handle on the plan cache: owned at top level, shared
/// read-only by parallel team members (their bodies never bind or
/// redistribute).
pub(crate) enum PlansRef<'a> {
    Owned(PlanCache),
    Borrowed(&'a PlanCache),
}

impl PlansRef<'_> {
    #[inline]
    fn get(&self, idx: usize) -> &super::plan::AddrPlan {
        match self {
            PlansRef::Owned(p) => p.get(idx),
            PlansRef::Borrowed(p) => p.get(idx),
        }
    }

    fn shared(&self) -> &PlanCache {
        match self {
            PlansRef::Owned(p) => p,
            PlansRef::Borrowed(p) => p,
        }
    }

    fn owned(&mut self) -> &mut PlanCache {
        match self {
            PlansRef::Owned(p) => p,
            PlansRef::Borrowed(_) => unreachable!("plan mutation inside a parallel member"),
        }
    }
}

/// Whether this addressing mode re-loads the portion pointer per access.
#[inline]
fn needs_slot(mode: AddrMode) -> bool {
    matches!(
        mode,
        AddrMode::ReshapedRaw
            | AddrMode::ReshapedRawFp
            | AddrMode::ReshapedTiled
            | AddrMode::ReshapedSharedDiv
    )
}

struct Vm<'a, 'p> {
    mach: Mach<'a>,
    code: &'a ProgramCode<'p>,
    opts: &'a ExecOptions,
    binder: BinderRef<'a>,
    plans: PlansRef<'a>,
    checker: ArgChecker,
    regions: usize,
    region_cycles: u64,
    region_wall: std::time::Duration,
    region_names: Vec<String>,
    steps: &'a AtomicU64,
    epoch: EpochClock,
    /// Deferred arithmetic cycle charges (flushed to the machine before
    /// every clock read and at run end — charges are additive, so the
    /// final counters equal the interpreter's immediate-charge totals).
    pending: u64,
    costs: Costs,
    /// Current team size: starts at `opts.nprocs`, changed by
    /// `resize_team`; members inherit the parent's team at fork.
    team: usize,
}

impl<'a, 'p> Vm<'a, 'p> {
    #[inline]
    fn flush(&mut self, proc: ProcId) {
        if self.pending > 0 {
            let p = std::mem::take(&mut self.pending);
            self.mach.charge(proc, p);
        }
    }

    /// The interpreter's addressing-overhead charge for one reference.
    #[inline]
    fn mode_cost(&self, mode: AddrMode, n_dist: u64) -> u64 {
        let c = &self.costs;
        match mode {
            AddrMode::Direct | AddrMode::ReshapedHoisted | AddrMode::ReshapedSharedAll => c.int_alu,
            AddrMode::ReshapedRaw => n_dist * (c.int_div + c.int_alu) + 2 * c.int_alu,
            AddrMode::ReshapedRawFp => n_dist * (c.fp_emulated_div + c.int_alu) + 2 * c.int_alu,
            AddrMode::ReshapedTiled | AddrMode::ReshapedSharedDiv => 2 * c.int_alu,
        }
    }

    /// Execute from `entry` until the block's `Halt`.
    fn run_block(
        &mut self,
        sc: &SubCode<'p>,
        entry: u32,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let track_steps = self.opts.max_steps != u64::MAX;
        let mut pc = entry as usize;
        loop {
            let op = sc.ops[pc];
            pc += 1;
            match op {
                Op::Halt => return Ok(()),
                Op::Charge { cycles, steps } => {
                    self.pending += cycles;
                    if track_steps && steps > 0 {
                        let s =
                            self.steps.fetch_add(u64::from(steps), Ordering::Relaxed)
                                + u64::from(steps);
                        if s > self.opts.max_steps {
                            return Err(ExecError::StepLimit);
                        }
                    }
                }
                Op::Jump { target } => pc = target as usize,
                Op::Branch { cond, else_target } => {
                    self.pending += self.costs.int_alu;
                    if !frame.scalars[cond as usize].is_true() {
                        pc = else_target as usize;
                    }
                }
                Op::ConstI { dst, v } => frame.scalars[dst as usize] = Value::I(v),
                Op::ConstF { dst, v } => frame.scalars[dst as usize] = Value::F(v),
                Op::Mov { dst, src } => {
                    frame.scalars[dst as usize] = frame.scalars[src as usize];
                }
                Op::CoerceI { dst, src } => {
                    frame.scalars[dst as usize] = Value::I(frame.scalars[src as usize].as_i());
                }
                Op::CoerceF { dst, src } => {
                    frame.scalars[dst as usize] = Value::F(frame.scalars[src as usize].as_f());
                }
                Op::Un { op, dst, src } => {
                    self.pending += self.costs.int_alu;
                    let v = frame.scalars[src as usize];
                    frame.scalars[dst as usize] = match op {
                        UnOp::Neg => match v {
                            Value::I(i) => Value::I(-i),
                            Value::F(f) => Value::F(-f),
                        },
                        UnOp::Not => Value::I(i64::from(!v.is_true())),
                    };
                }
                Op::Bin { op, dst, a, b } => {
                    let va = frame.scalars[a as usize];
                    let vb = frame.scalars[b as usize];
                    frame.scalars[dst as usize] = self.bin_value(op, va, vb)?;
                }
                Op::Intr { intr, dst, args } => {
                    let regs = &sc.pool[args.start as usize..][..args.len as usize];
                    let mut buf = [Value::I(0); 8];
                    let spill;
                    let vals: &[Value] = if regs.len() <= buf.len() {
                        for (i, &r) in regs.iter().enumerate() {
                            buf[i] = frame.scalars[r as usize];
                        }
                        &buf[..regs.len()]
                    } else {
                        spill = regs
                            .iter()
                            .map(|&r| frame.scalars[r as usize])
                            .collect::<Vec<_>>();
                        &spill
                    };
                    frame.scalars[dst as usize] = self.intr_value(intr, vals)?;
                }
                Op::RtDim {
                    dst,
                    array,
                    dim,
                    block,
                } => {
                    let inst = frame.arrays[array as usize];
                    let d = &self.binder.get(inst).desc.dims[dim as usize];
                    frame.scalars[dst as usize] = Value::I(if block {
                        d.chunk as i64
                    } else {
                        d.nprocs as i64
                    });
                }
                Op::Load {
                    dst,
                    array,
                    idx,
                    mode,
                    is_f,
                } => {
                    let addr = self.elem_addr(sc, array, idx, mode, frame, ctx)?;
                    frame.scalars[dst as usize] = if is_f {
                        Value::F(self.mach.read_f64(ctx.proc, addr).0)
                    } else {
                        Value::I(self.mach.read_i64(ctx.proc, addr).0)
                    };
                }
                Op::Store {
                    src,
                    array,
                    idx,
                    mode,
                    is_f,
                } => {
                    let v = frame.scalars[src as usize];
                    let addr = self.elem_addr(sc, array, idx, mode, frame, ctx)?;
                    if is_f {
                        self.mach.write_f64(ctx.proc, addr, v.as_f());
                    } else {
                        self.mach.write_i64(ctx.proc, addr, v.as_i());
                    }
                }
                Op::LoopHead {
                    var,
                    lb,
                    ub,
                    step,
                    cur,
                    exit,
                } => {
                    let lbv = frame.scalars[lb as usize].as_i();
                    let ubv = frame.scalars[ub as usize].as_i();
                    let stepv = frame.scalars[step as usize].as_i();
                    if stepv == 0 {
                        return Err(ExecError::BadCall("zero loop step".into()));
                    }
                    // Normalize so the back-edge does integer math only.
                    frame.scalars[ub as usize] = Value::I(ubv);
                    frame.scalars[step as usize] = Value::I(stepv);
                    if (stepv > 0 && lbv <= ubv) || (stepv < 0 && lbv >= ubv) {
                        frame.scalars[var as usize] = Value::I(lbv);
                        frame.scalars[cur as usize] = Value::I(lbv);
                        self.pending += self.costs.loop_overhead;
                    } else {
                        pc = exit as usize;
                    }
                }
                Op::LoopNext {
                    var,
                    cur,
                    ub,
                    step,
                    back,
                } => {
                    let stepv = frame.scalars[step as usize].as_i();
                    let i = frame.scalars[cur as usize].as_i() + stepv;
                    let ubv = frame.scalars[ub as usize].as_i();
                    if (stepv > 0 && i <= ubv) || (stepv < 0 && i >= ubv) {
                        frame.scalars[cur as usize] = Value::I(i);
                        frame.scalars[var as usize] = Value::I(i);
                        self.pending += self.costs.loop_overhead;
                        pc = back as usize;
                    }
                }
                Op::Bulk { idx, exit } => {
                    if self.bulk_exec(sc, &sc.bulks[idx as usize], frame, ctx)? {
                        pc = exit as usize;
                    }
                    // else: fall through to the generic LoopHead.
                }
                Op::Fork { idx } => {
                    self.exec_fork(sc, &sc.par_loops[idx as usize], frame, ctx)?;
                }
                Op::CallSub { idx } => {
                    self.exec_call(sc, idx, frame, ctx)?;
                }
                Op::Redist { idx } => {
                    let rc = &sc.redists[idx as usize];
                    let inst = frame.arrays[rc.array as usize];
                    let nprocs = self.team;
                    let scheduled = self.opts.redist == RedistMode::Scheduled;
                    // Redistribution moves data through the machine; bring
                    // this processor's clock current first.
                    self.flush(ctx.proc);
                    // Split borrow: take the array out, operate, put it back.
                    let mut arr = self.binder.get(inst).clone();
                    let res = if scheduled {
                        arr.redistribute_scheduled(self.mach.whole(), ctx.proc, rc.dist, nprocs)
                    } else {
                        arr.redistribute(self.mach.whole(), ctx.proc, rc.dist, nprocs)
                    };
                    *self.binder.owned().get_mut(inst) = arr;
                    res.map_err(ExecError::from)?;
                    self.plans.owned().rebuild(inst, self.binder.shared());
                }
                Op::Resize { idx } => {
                    let new = sc.resizes[idx as usize] as usize;
                    self.flush(ctx.proc);
                    self.exec_resize(new, ctx)?;
                }
                Op::NumThreads { dst } => {
                    frame.scalars[dst as usize] = Value::I(self.team as i64);
                }
            }
        }
    }

    /// Re-chunk every regular array for a team of `new` processors (the
    /// `c$resize_team` directive and [`ExecOptions::resize_to`]). All
    /// descriptors change, so every cached address plan is rebuilt.
    fn exec_resize(&mut self, new: usize, ctx: &Ctx) -> Result<(), ExecError> {
        let scheduled = self.opts.redist == RedistMode::Scheduled;
        let m = self.mach.whole();
        let new = new.clamp(1, m.nprocs());
        self.binder.owned().resize_team(m, ctx.proc, new, scheduled)?;
        self.team = new;
        let Vm { plans, binder, .. } = self;
        let binder = binder.shared();
        let plans = plans.owned();
        for i in 0..binder.live() {
            plans.rebuild(i, binder);
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Scalar operators (value semantics identical to the interpreter).
    // -----------------------------------------------------------------

    fn bin_value(&mut self, op: BinOp, a: Value, b: Value) -> Result<Value, ExecError> {
        let c = &self.costs;
        let promote = a.promotes(b);
        self.pending += match op {
            BinOp::Add | BinOp::Sub => {
                if promote {
                    c.fp_alu
                } else {
                    c.int_alu
                }
            }
            BinOp::Mul => {
                if promote {
                    c.fp_alu
                } else {
                    c.int_mul
                }
            }
            BinOp::Div => {
                if promote {
                    c.fp_div
                } else {
                    c.int_div
                }
            }
            BinOp::Rem => c.int_div,
            BinOp::Pow => c.fp_div + c.fp_alu,
            _ => c.int_alu,
        };
        Ok(match op {
            BinOp::Add => {
                if promote {
                    Value::F(a.as_f() + b.as_f())
                } else {
                    Value::I(a.as_i() + b.as_i())
                }
            }
            BinOp::Sub => {
                if promote {
                    Value::F(a.as_f() - b.as_f())
                } else {
                    Value::I(a.as_i() - b.as_i())
                }
            }
            BinOp::Mul => {
                if promote {
                    Value::F(a.as_f() * b.as_f())
                } else {
                    Value::I(a.as_i() * b.as_i())
                }
            }
            BinOp::Div => {
                if promote {
                    Value::F(a.as_f() / b.as_f())
                } else if b.as_i() == 0 {
                    return Err(ExecError::BadCall("integer division by zero".into()));
                } else {
                    Value::I(a.as_i() / b.as_i())
                }
            }
            BinOp::Rem => {
                if b.as_i() == 0 {
                    return Err(ExecError::BadCall("mod by zero".into()));
                } else {
                    Value::I(a.as_i().rem_euclid(b.as_i()))
                }
            }
            BinOp::Pow => {
                if promote || b.as_i() < 0 {
                    Value::F(a.as_f().powf(b.as_f()))
                } else {
                    Value::I(a.as_i().pow(b.as_i().min(63) as u32))
                }
            }
            BinOp::Lt => Value::I(i64::from(a.as_f() < b.as_f())),
            BinOp::Le => Value::I(i64::from(a.as_f() <= b.as_f())),
            BinOp::Gt => Value::I(i64::from(a.as_f() > b.as_f())),
            BinOp::Ge => Value::I(i64::from(a.as_f() >= b.as_f())),
            BinOp::Eq => Value::I(i64::from(a.as_f() == b.as_f())),
            BinOp::Ne => Value::I(i64::from(a.as_f() != b.as_f())),
            BinOp::And => Value::I(i64::from(a.is_true() && b.is_true())),
            BinOp::Or => Value::I(i64::from(a.is_true() || b.is_true())),
        })
    }

    fn intr_value(&mut self, intr: Intrinsic, vals: &[Value]) -> Result<Value, ExecError> {
        let c = &self.costs;
        self.pending += match intr {
            Intrinsic::Sqrt => c.fp_div,
            Intrinsic::Mod | Intrinsic::CeilDiv => c.int_div,
            _ => c.int_alu,
        };
        Ok(match intr {
            Intrinsic::Max => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MIN, f64::max))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).max().unwrap_or(0))
                }
            }
            Intrinsic::Min => {
                if vals.iter().any(|v| matches!(v, Value::F(_))) {
                    Value::F(vals.iter().map(|v| v.as_f()).fold(f64::MAX, f64::min))
                } else {
                    Value::I(vals.iter().map(|v| v.as_i()).min().unwrap_or(0))
                }
            }
            Intrinsic::Mod => {
                let b = vals[1].as_i();
                if b == 0 {
                    return Err(ExecError::BadCall("mod by zero".into()));
                }
                Value::I(vals[0].as_i().rem_euclid(b))
            }
            Intrinsic::CeilDiv => {
                let (a, b) = (vals[0].as_i(), vals[1].as_i());
                if b == 0 {
                    return Err(ExecError::BadCall("ceildiv by zero".into()));
                }
                Value::I((a + b - 1).div_euclid(b))
            }
            Intrinsic::Abs => match vals[0] {
                Value::I(v) => Value::I(v.abs()),
                Value::F(v) => Value::F(v.abs()),
            },
            Intrinsic::Sqrt => Value::F(vals[0].as_f().sqrt()),
            Intrinsic::Dble => Value::F(vals[0].as_f()),
            Intrinsic::Int => Value::I(vals[0].as_i()),
        })
    }

    // -----------------------------------------------------------------
    // Addressing.
    // -----------------------------------------------------------------

    /// Resolve a register list into an element address: bounds checks,
    /// profile tag, addressing-mode charge, portion-pointer load.
    #[inline]
    fn elem_addr(
        &mut self,
        sc: &SubCode<'p>,
        array: u16,
        idx: super::code::ListRef,
        mode: AddrMode,
        frame: &Frame,
        ctx: &Ctx,
    ) -> Result<u64, ExecError> {
        let regs = &sc.pool[idx.start as usize..][..idx.len as usize];
        let mut vals = [0i64; MAX_RANK];
        for (i, &r) in regs.iter().enumerate() {
            vals[i] = frame.scalars[r as usize].as_i();
        }
        self.addr_checked(sc, array, &vals[..regs.len()], mode, frame, ctx)
    }

    /// The interned-plan equivalent of the interpreter's
    /// `index_values` + `element_addr`.
    fn addr_checked(
        &mut self,
        sc: &SubCode<'p>,
        array: u16,
        vals: &[i64],
        mode: AddrMode,
        frame: &Frame,
        ctx: &Ctx,
    ) -> Result<u64, ExecError> {
        let inst = frame.arrays[array as usize];
        let (addr, slot, sym, cost) = {
            let plan = self.plans.get(inst);
            let mut idx0 = [0u64; MAX_RANK];
            for (d, &v) in vals.iter().enumerate() {
                if v < 1 || v as u64 > plan.extents[d] {
                    return Err(ExecError::OutOfBounds {
                        array: sc.sub.arrays[array as usize].name.clone(),
                        indices: vals.to_vec(),
                        extents: plan.extents.clone(),
                    });
                }
                idx0[d] = (v - 1) as u64;
            }
            let (addr, owner) = plan.resolve(&idx0[..vals.len()]);
            let slot = if needs_slot(mode) {
                plan.slot_addr(owner)
            } else {
                None
            };
            (addr, slot, plan.sym, self.mode_cost(mode, plan.n_dist))
        };
        if self.opts.profile {
            self.mach.set_tag(
                ctx.proc,
                AccessTag {
                    sym,
                    region: ctx.region,
                },
            );
        }
        self.pending += cost;
        if let Some(slot) = slot {
            self.mach.access(ctx.proc, slot, AccessKind::Read);
        }
        Ok(addr)
    }

    // -----------------------------------------------------------------
    // Bulk loops.
    // -----------------------------------------------------------------

    /// Try to execute a bulk-eligible loop as batched/fused transfers.
    /// Returns `Ok(true)` when done (jump to the loop exit) or
    /// `Ok(false)` to fall through to the generic loop.
    fn bulk_exec(
        &mut self,
        sc: &SubCode<'p>,
        b: &BulkCode,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<bool, ExecError> {
        // Under a finite step budget the generic path keeps the
        // interpreter's exact statement-by-statement abort point.
        if self.opts.max_steps != u64::MAX {
            return Ok(false);
        }
        let lb = frame.scalars[b.lb as usize].as_i();
        let ub = frame.scalars[b.ub as usize].as_i();
        let step = frame.scalars[b.step as usize].as_i();
        if step == 0 {
            return Ok(false); // generic path raises the error
        }
        let niters = {
            let (l, u, s) = (lb as i128, ub as i128, step as i128);
            let n = if step > 0 {
                (u - l + s).max(0) / s
            } else {
                (l - u - s).max(0) / -s
            };
            if n <= 0 || n > u32::MAX as i128 {
                return Ok(false);
            }
            n as i64
        };
        // Affine indices are monotone in the loop variable, so endpoint
        // bounds checks cover every iteration.
        let last = lb as i128 + (niters as i128 - 1) * step as i128;
        if !self.run_in_bounds(&b.dst, lb as i128, last, frame) {
            return Ok(false);
        }
        if let BulkKind::Copy { src } = &b.kind {
            if !self.run_in_bounds(src, lb as i128, last, frame) {
                return Ok(false);
            }
        }
        let n = niters as u64;
        match &b.kind {
            BulkKind::Fill { value } => {
                // Evaluate the loop-invariant RHS once, measuring its
                // charge; the remaining iterations charge the same delta.
                let before = self.pending;
                self.run_block(sc, value.pc, frame, ctx)?;
                let delta = self.pending - before;
                let v = frame.scalars[value.reg as usize];
                let word = if b.dst.is_f {
                    v.as_f().to_bits()
                } else {
                    v.as_i() as u64
                };
                let dinst = frame.arrays[b.dst.array as usize];
                let (n_dist, sym, contig) = {
                    let plan = self.plans.get(dinst);
                    (
                        plan.n_dist,
                        plan.sym,
                        matches!(plan.kind, PlanKind::Contig { .. }),
                    )
                };
                self.pending += (self.costs.loop_overhead
                    + b.idx_cost
                    + self.mode_cost(b.dst.mode, n_dist))
                    * n
                    + delta * (n - 1);
                if self.opts.profile {
                    self.mach.set_tag(
                        ctx.proc,
                        AccessTag {
                            sym,
                            region: ctx.region,
                        },
                    );
                }
                if contig && b.dst.mode == AddrMode::Direct {
                    // One batched access run through the memory system.
                    let (base, stride) = self.run_geometry(&b.dst, dinst, lb, step, frame);
                    let run = AccessRun {
                        base,
                        stride,
                        count: n,
                        kind: AccessKind::Write,
                    };
                    self.mach.fill_run(ctx.proc, &run, word);
                } else {
                    // Fused per-element loop: owner and portion pointer
                    // change along the run.
                    for k in 0..niters {
                        let i = lb + k * step;
                        let (addr, slot) = self.bulk_addr(&b.dst, dinst, i, frame);
                        if let Some(s) = slot {
                            self.mach.access(ctx.proc, s, AccessKind::Read);
                        }
                        let one = AccessRun {
                            base: addr,
                            stride: 0,
                            count: 1,
                            kind: AccessKind::Write,
                        };
                        self.mach.fill_run(ctx.proc, &one, word);
                    }
                }
            }
            BulkKind::Copy { src } => {
                let dinst = frame.arrays[b.dst.array as usize];
                let sinst = frame.arrays[src.array as usize];
                let (dn, dsym) = {
                    let p = self.plans.get(dinst);
                    (p.n_dist, p.sym)
                };
                let (sn, ssym) = {
                    let p = self.plans.get(sinst);
                    (p.n_dist, p.sym)
                };
                self.pending += (self.costs.loop_overhead
                    + b.idx_cost
                    + self.mode_cost(src.mode, sn)
                    + self.mode_cost(b.dst.mode, dn))
                    * n;
                let profile = self.opts.profile;
                // Fused per-element loop, accesses interleaved exactly as
                // the interpreter: src pointer slot, src element, dst
                // pointer slot, dst element.
                for k in 0..niters {
                    let i = lb + k * step;
                    let (saddr, sslot) = self.bulk_addr(src, sinst, i, frame);
                    if profile {
                        self.mach.set_tag(
                            ctx.proc,
                            AccessTag {
                                sym: ssym,
                                region: ctx.region,
                            },
                        );
                    }
                    if let Some(s) = sslot {
                        self.mach.access(ctx.proc, s, AccessKind::Read);
                    }
                    let word = if src.is_f {
                        self.mach.read_f64(ctx.proc, saddr).0.to_bits()
                    } else {
                        self.mach.read_i64(ctx.proc, saddr).0 as u64
                    };
                    let (daddr, dslot) = self.bulk_addr(&b.dst, dinst, i, frame);
                    if profile {
                        self.mach.set_tag(
                            ctx.proc,
                            AccessTag {
                                sym: dsym,
                                region: ctx.region,
                            },
                        );
                    }
                    if let Some(s) = dslot {
                        self.mach.access(ctx.proc, s, AccessKind::Read);
                    }
                    if b.dst.is_f {
                        self.mach.write_f64(ctx.proc, daddr, f64::from_bits(word));
                    } else {
                        self.mach.write_i64(ctx.proc, daddr, word as i64);
                    }
                }
            }
        }
        // The loop variable holds the last executed iteration's value
        // (the body never writes it: it is a single array store).
        frame.scalars[b.var as usize] = Value::I(lb + (niters - 1) * step);
        Ok(true)
    }

    /// Endpoint bounds check of every affine index of one side.
    fn run_in_bounds(&self, r: &BulkRef, first: i128, last: i128, frame: &Frame) -> bool {
        let inst = frame.arrays[r.array as usize];
        let plan = self.plans.get(inst);
        if r.idx.len() != plan.extents.len() {
            return false;
        }
        for (d, t) in r.idx.iter().enumerate() {
            let term = |i: i128| -> Option<i128> {
                (t.scale as i128)
                    .checked_mul(i)?
                    .checked_add(t.offset as i128)
            };
            let (v0, v1) = match t.var {
                AffVar::Loop => match (term(first), term(last)) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return false,
                },
                AffVar::Reg(rg) => {
                    match term(frame.scalars[rg as usize].as_i() as i128) {
                        Some(v) => (v, v),
                        None => return false,
                    }
                }
                AffVar::None => (t.offset as i128, t.offset as i128),
            };
            let (lo, hi) = (v0.min(v1), v0.max(v1));
            if lo < 1 || hi > plan.extents[d] as i128 {
                return false;
            }
        }
        true
    }

    /// Address and portion-pointer slot of one side's element at
    /// iteration value `i` (indices already prechecked in-bounds).
    #[inline]
    fn bulk_addr(&self, r: &BulkRef, inst: usize, i: i64, frame: &Frame) -> (u64, Option<u64>) {
        let plan = self.plans.get(inst);
        let mut idx0 = [0u64; MAX_RANK];
        for (d, t) in r.idx.iter().enumerate() {
            let v = match t.var {
                AffVar::Loop => t.scale * i + t.offset,
                AffVar::Reg(rg) => t.scale * frame.scalars[rg as usize].as_i() + t.offset,
                AffVar::None => t.offset,
            };
            idx0[d] = (v - 1) as u64;
        }
        let (addr, owner) = plan.resolve(&idx0[..r.idx.len()]);
        let slot = if needs_slot(r.mode) {
            plan.slot_addr(owner)
        } else {
            None
        };
        (addr, slot)
    }

    // -----------------------------------------------------------------
    // Parallel regions.
    // -----------------------------------------------------------------

    /// Execute iterations `lb..=ub:step` of a par-loop body on the
    /// current processor (the interpreter's `run_chunk`).
    #[allow(clippy::too_many_arguments)] // loop + frame + chunk bounds
    fn run_chunk(
        &mut self,
        sc: &SubCode<'p>,
        pl: &ParLoop<'p>,
        frame: &mut Frame,
        ctx: &mut Ctx,
        lb: i64,
        ub: i64,
        step: i64,
    ) -> Result<(), ExecError> {
        let var = pl.l.var.0;
        let loop_overhead = self.costs.loop_overhead;
        let mut i = lb;
        while (step > 0 && i <= ub) || (step < 0 && i >= ub) {
            frame.scalars[var] = Value::I(i);
            self.pending += loop_overhead;
            self.run_block(sc, pl.body_pc, frame, ctx)?;
            i += step;
        }
        Ok(())
    }

    /// A proc-tile member inside a region: bind this processor's own
    /// grid coordinate and run the body once.
    fn proctile_member(
        &mut self,
        sc: &SubCode<'p>,
        pl: &ParLoop<'p>,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let SchedType::ProcTile { grid_dim } = pl.d.sched else {
            unreachable!()
        };
        let aff = pl.d.affinity.as_ref().expect("proc-tile loops carry affinity");
        let inst = frame.arrays[aff.array.0];
        let coord = {
            let desc = &self.binder.get(inst).desc;
            if ctx.proc.0 >= desc.grid_size() {
                return Ok(()); // idle member
            }
            // Re-resolve the grid axis against the live descriptor: a
            // redistribute/resize before this loop can re-map the tiled
            // dimension to a different axis than the one compiled in.
            let decl = sc.sub.arrays[aff.array.0].dist.as_ref();
            let axis = sched::proctile_axis(desc, decl, grid_dim);
            desc.delinearize_proc(ctx.proc.0)[axis] as i64
        };
        frame.scalars[pl.l.var.0] = Value::I(coord);
        self.run_block(sc, pl.body_pc, frame, ctx)
    }

    /// Evaluate a par-loop's bounds in interpreter order.  Each result
    /// register is read immediately after its block runs: the three
    /// blocks share scratch registers.
    fn eval_bounds(
        &mut self,
        sc: &SubCode<'p>,
        pl: &ParLoop<'p>,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(i64, i64, i64), ExecError> {
        self.run_block(sc, pl.lb.pc, frame, ctx)?;
        let lb = frame.scalars[pl.lb.reg as usize].as_i();
        self.run_block(sc, pl.ub.pc, frame, ctx)?;
        let ub = frame.scalars[pl.ub.reg as usize].as_i();
        self.run_block(sc, pl.step.pc, frame, ctx)?;
        let step = frame.scalars[pl.step.reg as usize].as_i();
        Ok((lb, ub, step))
    }

    /// The `Fork` opcode: a doacross loop.  Inside a region it runs this
    /// member's share; at top level it forks the team (the interpreter's
    /// `fork_region`, access for access).
    fn exec_fork(
        &mut self,
        sc: &SubCode<'p>,
        pl: &ParLoop<'p>,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let l = pl.l;
        let d = pl.d;
        if ctx.in_region {
            if matches!(d.sched, SchedType::ProcTile { .. }) {
                return self.proctile_member(sc, pl, frame, ctx);
            }
            // Serial semantics for a nested doacross.
            let (lb, ub, step) = self.eval_bounds(sc, pl, frame, ctx)?;
            if step == 0 {
                return Err(ExecError::BadCall("zero loop step".into()));
            }
            return self.run_chunk(sc, pl, frame, ctx, lb, ub, step);
        }

        let region_id = self.regions as u32;
        self.regions += 1;
        self.region_names
            .push(format!("{}:do {}", sc.sub.name, sc.sub.scalars[l.var.0].name));
        let nprocs = self.team;
        self.flush(ctx.proc);
        let start = self.mach.cycles(ctx.proc) + self.costs.parallel_fork;
        // Per-node memory-service demand before the region: deltas bound
        // region time by the bottleneck node's throughput (the hot-node
        // effect of the paper's Figure 5).
        let served_before: Vec<u64> = self.mach.whole().node_served();

        // Per-member work lists: (proc, chunks or proc-tile marker).
        enum Work {
            Chunks(Vec<sched::Chunk>),
            ProcTile,
        }
        let mut team: Vec<(ProcId, Work)> = Vec::new();
        match d.sched {
            SchedType::ProcTile { .. } => {
                let aff = d.affinity.as_ref().expect("proc-tile loops carry affinity");
                let inst = frame.arrays[aff.array.0];
                let gs = self.binder.get(inst).desc.grid_size().min(nprocs);
                for p in 0..gs {
                    team.push((ProcId(p), Work::ProcTile));
                }
            }
            SchedType::RuntimeAffinity => {
                let (lb, ub, step) = self.eval_bounds(sc, pl, frame, ctx)?;
                let aff = d.affinity.as_ref().expect("runtime affinity has a clause");
                let inst = frame.arrays[aff.array.0];
                let desc = self.binder.get(inst).desc.clone();
                // The axis driven by this loop's variable.
                let axis = aff
                    .indices
                    .iter()
                    .position(|ix| matches!(ix, AffIdx::Loop { var, .. } if *var == l.var));
                match axis {
                    Some(dim) if desc.dims[dim].dist.is_distributed() => {
                        let AffIdx::Loop { scale, offset, .. } = &aff.indices[dim] else {
                            unreachable!()
                        };
                        let parts = sched::partition_affinity(
                            lb,
                            ub,
                            step,
                            &desc.dims[dim],
                            *scale,
                            *offset,
                        );
                        let grid_dim = desc
                            .distributed
                            .iter()
                            .position(|&dd| dd == dim)
                            .unwrap_or(0);
                        for (coord, chunks) in parts.into_iter().enumerate() {
                            // Representative member for this coordinate:
                            // zero on every other grid axis.
                            let mut coords = vec![0u64; desc.grid.len()];
                            coords[grid_dim] = coord as u64;
                            let p = desc.linearize_coords(&coords).min(nprocs - 1);
                            team.push((ProcId(p), Work::Chunks(chunks)));
                        }
                    }
                    _ => {
                        // Affinity unusable: fall back to simple.
                        for (p, chunks) in partition(SchedType::Simple, lb, ub, step, nprocs)
                            .into_iter()
                            .enumerate()
                        {
                            team.push((ProcId(p), Work::Chunks(chunks)));
                        }
                    }
                }
            }
            sched_kind => {
                let (lb, ub, step) = self.eval_bounds(sc, pl, frame, ctx)?;
                for (p, chunks) in partition(sched_kind, lb, ub, step, nprocs)
                    .into_iter()
                    .enumerate()
                {
                    team.push((ProcId(p), Work::Chunks(chunks)));
                }
            }
        }
        self.flush(ctx.proc);

        // Host-parallel simulation is sound only when the body cannot
        // mutate whole-machine/binder state (same gate as the
        // interpreter).
        let distinct = {
            let mut ids: Vec<usize> = team.iter().map(|(p, _)| p.0).collect();
            ids.sort_unstable();
            ids.dedup();
            ids.len()
        };
        let run_parallel = !self.opts.serial_team && distinct >= 2 && body_parallel_safe(&l.body);

        let dispatch = matches!(d.sched, SchedType::Dynamic(_));
        let int_alu = self.costs.int_alu;
        let fork_t0 = std::time::Instant::now();
        if run_parallel {
            // Merge duplicate members (runtime-affinity clamping can hand
            // two grid coordinates to one processor) so each processor's
            // state is owned by exactly one host thread.
            let mut merged: Vec<(ProcId, Vec<&Work>)> = Vec::new();
            for (p, w) in &team {
                match merged.iter_mut().find(|(q, _)| q == p) {
                    Some((_, ws)) => ws.push(w),
                    None => merged.push((*p, vec![w])),
                }
            }
            let code = self.code;
            let opts = self.opts;
            let steps = self.steps;
            let costs = self.costs;
            let team_size = self.team;
            let binder: &Binder = self.binder.shared();
            let plans: &PlanCache = self.plans.shared();
            let machine = self.mach.whole();
            for (p, _) in &merged {
                if machine.cycles(*p) < start {
                    machine.set_cycles(*p, start);
                }
            }
            let ids: Vec<ProcId> = merged.iter().map(|(p, _)| *p).collect();
            let shards = machine.team_shards(&ids);
            let results: Vec<Result<(), ExecError>> = std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (shard, (proc, works)) in shards.into_iter().zip(&merged) {
                    let member_frame = frame.clone();
                    let proc = *proc;
                    handles.push(scope.spawn(move || -> Result<(), ExecError> {
                        let mut member = Vm {
                            mach: Mach::Shard(shard),
                            code,
                            opts,
                            binder: BinderRef::Borrowed(binder),
                            plans: PlansRef::Borrowed(plans),
                            checker: ArgChecker::new(),
                            regions: 0,
                            region_cycles: 0,
                            region_wall: std::time::Duration::ZERO,
                            region_names: Vec::new(),
                            steps,
                            epoch: EpochClock::default(),
                            pending: 0,
                            costs,
                            team: team_size,
                        };
                        let mut member_ctx = Ctx {
                            proc,
                            in_region: true,
                            region: region_id,
                        };
                        // Private copy of all scalars (covers the `local`
                        // clause; in-region writes to shared scalars are
                        // discarded at join, as in the serial path).
                        let mut member_frame = member_frame;
                        for work in works {
                            match work {
                                Work::ProcTile => {
                                    member.proctile_member(
                                        sc,
                                        pl,
                                        &mut member_frame,
                                        &mut member_ctx,
                                    )?;
                                }
                                Work::Chunks(chunks) => {
                                    for c in chunks {
                                        if dispatch {
                                            // Work-queue grab per chunk.
                                            member.mach.charge(proc, 6 * int_alu);
                                        }
                                        member.run_chunk(
                                            sc,
                                            pl,
                                            &mut member_frame,
                                            &mut member_ctx,
                                            c.lb,
                                            c.ub,
                                            c.step,
                                        )?;
                                    }
                                }
                            }
                        }
                        member.flush(proc);
                        Ok(())
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("team member thread panicked"))
                    .collect()
            });
            // Deliver invalidations still in flight at the join.
            machine.drain_mail();
            for r in results {
                r?;
            }
        } else {
            // Serial reference path: level every member to the fork point
            // and run its share to completion before the next member.
            // Access-count migration epochs pause until the join (see the
            // interpreter for the rationale).
            self.mach.whole().pause_epochs(true);
            for (p, work) in &team {
                if self.mach.cycles(*p) < start {
                    self.mach.whole().set_cycles(*p, start);
                }
                let mut member_ctx = Ctx {
                    proc: *p,
                    in_region: true,
                    region: region_id,
                };
                // Private copy of all scalars (covers the `local` clause;
                // the model discards in-region writes to shared scalars at
                // join).
                let mut member_frame = frame.clone();
                match work {
                    Work::ProcTile => {
                        self.proctile_member(sc, pl, &mut member_frame, &mut member_ctx)?;
                    }
                    Work::Chunks(chunks) => {
                        for c in chunks {
                            if dispatch {
                                // Work-queue grab per chunk.
                                self.mach.charge(*p, 6 * int_alu);
                            }
                            self.run_chunk(
                                sc,
                                pl,
                                &mut member_frame,
                                &mut member_ctx,
                                c.lb,
                                c.ub,
                                c.step,
                            )?;
                        }
                    }
                }
                self.flush(*p);
            }
            self.mach.whole().pause_epochs(false);
        }
        self.region_wall += fork_t0.elapsed();
        debug_assert_eq!(self.pending, 0, "unflushed charges at region join");

        // Implicit barrier: everyone (team and idle processors alike)
        // advances to the slowest member — or, if some node's memory had
        // to service more line fills than fit in that window, to the end
        // of the bottleneck node's service demand (throughput bound).
        let occupancy = self.mach.config().lat.mem_occupancy;
        let machine = self.mach.whole();
        let node_demand = machine
            .node_served()
            .iter()
            .zip(&served_before)
            .map(|(after, before)| (after - before) * occupancy)
            .max()
            .unwrap_or(0);
        let t_end = (0..machine.nprocs())
            .map(|p| machine.cycles(ProcId(p)))
            .max()
            .unwrap_or(start)
            .max(start + node_demand)
            + self.costs.barrier;
        for p in 0..nprocs.max(1) {
            machine.set_cycles(ProcId(p), t_end);
        }
        if machine.cycles(ctx.proc) < t_end {
            machine.set_cycles(ctx.proc, t_end);
        }
        self.region_cycles += t_end - (start - self.costs.parallel_fork);
        // Team join = migration epoch boundary: the shards sampled the
        // reference counters; the daemon itself needs the whole machine.
        join_epoch(self.mach.whole(), &mut self.epoch);
        // Sequential semantics for the loop variable after the region
        // (what `lastlocal` guarantees on the real system).
        if !matches!(d.sched, SchedType::ProcTile { .. }) {
            let (lb, ub, step) = self.eval_bounds(sc, pl, frame, ctx)?;
            if step != 0 {
                let niters = if step > 0 {
                    (ub - lb + step).max(0) / step
                } else {
                    (lb - ub - step).max(0) / -step
                };
                frame.scalars[l.var.0] = Value::I(lb + niters * step);
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Calls.
    // -----------------------------------------------------------------

    /// The `CallSub` opcode (the interpreter's `exec_call`).
    fn exec_call(
        &mut self,
        sc: &SubCode<'p>,
        idx: u16,
        frame: &mut Frame,
        ctx: &mut Ctx,
    ) -> Result<(), ExecError> {
        let code = self.code;
        let cc = &sc.calls[idx as usize];
        let Some(callee_idx) = cc.callee else {
            return Err(ExecError::UnknownSubroutine(cc.name.to_string()));
        };
        let callee_sc = &code.subs[callee_idx];
        let callee = callee_sc.sub;
        // Binding and entry checks allocate and move data through the
        // machine; bring this processor's clock current first.
        self.flush(ctx.proc);
        let mut callee_frame = Frame::new(callee);
        callee_frame.scalars.resize(callee_sc.n_regs, Value::I(0));
        // Registered actual addresses to pop on return.
        let mut registered: Vec<u64> = Vec::new();
        // (callee ArrayId idx, arena idx): applied after all args.
        let mut array_binds: Vec<(usize, usize)> = Vec::new();
        for arg in &cc.args {
            match arg {
                ArgCode::Scalar { block, var } => {
                    self.run_block(sc, block.pc, frame, ctx)?;
                    let val = frame.scalars[block.reg as usize];
                    callee_frame.scalars[*var as usize] = match callee.scalars[*var as usize].ty {
                        ScalarTy::Int => Value::I(val.as_i()),
                        ScalarTy::Real => Value::F(val.as_f()),
                    };
                }
                ArgCode::Array {
                    caller,
                    callee: ca,
                    caller_reshaped,
                } => {
                    let inst = frame.arrays[*caller as usize];
                    if self.opts.runtime_checks && *caller_reshaped {
                        let (base, name, shape) = {
                            let arr = self.binder.get(inst);
                            let base = match &arr.layout {
                                ArrayLayout::Contiguous { base } => *base,
                                ArrayLayout::Reshaped { ptr_table, .. } => *ptr_table,
                            };
                            let shape: Vec<u64> =
                                arr.desc.dims.iter().map(|d| d.extent).collect();
                            (base, arr.name.clone(), shape)
                        };
                        self.checker
                            .register(base, ArgInfo::WholeArray { name, shape });
                        registered.push(base);
                        self.mach.charge(ctx.proc, 40);
                    }
                    // Whole-array pass: the callee sees the same instance.
                    array_binds.push((*ca as usize, inst));
                }
                ArgCode::Elem {
                    caller,
                    callee: ca,
                    idx_pc,
                    idx_regs,
                    caller_reshaped,
                } => {
                    self.run_block(sc, *idx_pc, frame, ctx)?;
                    let rank = idx_regs.len();
                    let mut vals = [0i64; MAX_RANK];
                    for (i, &r) in idx_regs.iter().enumerate() {
                        vals[i] = frame.scalars[r as usize].as_i();
                    }
                    let addr = self.addr_checked(
                        sc,
                        *caller,
                        &vals[..rank],
                        AddrMode::Direct,
                        frame,
                        ctx,
                    )?;
                    if self.opts.runtime_checks && *caller_reshaped {
                        // The interpreter re-evaluates the indices here
                        // (`index_values`), charging again.
                        self.run_block(sc, *idx_pc, frame, ctx)?;
                        let mut idx0 = [0u64; MAX_RANK];
                        for (i, &r) in idx_regs.iter().enumerate() {
                            idx0[i] = (frame.scalars[r as usize].as_i() - 1) as u64;
                        }
                        let inst = frame.arrays[*caller as usize];
                        // The paper's rule: the passed "portion" runs from
                        // the element to the end of its contiguous run in
                        // the fastest dimension, times the remaining
                        // portion rectangle in the outer dimensions.
                        let (name, portion_len) = {
                            let arr = self.binder.get(inst);
                            let owner_coords = arr.desc.owner_coords(&idx0[..rank]);
                            let mut gi = 0usize;
                            let mut remaining = 0u64;
                            for (d0, dim) in arr.desc.dims.iter().enumerate() {
                                let coord = if dim.dist.is_distributed() {
                                    let c = owner_coords[gi];
                                    gi += 1;
                                    c
                                } else {
                                    0
                                };
                                remaining = if d0 == 0 {
                                    dim.run_remaining(idx0[0])
                                } else {
                                    remaining
                                        * (dim.portion_extent(coord)
                                            - dim.local_offset(idx0[d0]))
                                };
                            }
                            (arr.name.clone(), remaining)
                        };
                        self.checker
                            .register(addr, ArgInfo::Portion { name, portion_len });
                        registered.push(addr);
                        self.mach.charge(ctx.proc, 40);
                    }
                    // The view's extents may depend on scalar params bound
                    // above; create it after scalars are in place.
                    let view = self.binder.owned().bind_view(
                        self.mach.whole(),
                        &callee.arrays[*ca as usize],
                        addr,
                        &callee_frame,
                    );
                    array_binds.push((*ca as usize, view));
                }
            }
        }
        // Arity / argument-kind mismatch (compiled to a message; fires
        // after the well-formed prefix of arguments, as the interpreter).
        if let Some(msg) = &cc.fail {
            return Err(ExecError::BadCall(msg.clone()));
        }
        for (aid, inst) in array_binds {
            callee_frame.arrays[aid] = inst;
        }
        // Entry-side runtime checks: each array formal looks up its
        // incoming base address.
        if self.opts.runtime_checks {
            for (pos, param) in callee.params.iter().enumerate() {
                if let Param::Array(a) = param {
                    let inst = callee_frame.arrays[a.0];
                    let base = {
                        let arr = self.binder.get(inst);
                        match &arr.layout {
                            ArrayLayout::Contiguous { base } => *base,
                            ArrayLayout::Reshaped { ptr_table, .. } => *ptr_table,
                        }
                    };
                    let declared: Vec<u64> = callee.arrays[a.0]
                        .dims
                        .iter()
                        .map(|e| match e {
                            Extent::Const(v) => (*v).max(0) as u64,
                            Extent::Var(v) => callee_frame.scalars[v.0].as_i().max(0) as u64,
                        })
                        .collect();
                    self.mach.charge(ctx.proc, 40);
                    self.checker
                        .check_formal(&callee.name, pos, base, &declared)
                        .map_err(|e| ExecError::Runtime(RuntimeError::ArgCheck(e)))?;
                }
            }
        }
        // Instantiate callee locals / attach commons, then intern plans
        // for every instance the call brought to life.
        self.binder
            .owned()
            .bind_declarations(self.mach.whole(), callee, &mut callee_frame);
        self.plans.owned().sync(self.binder.shared());
        // Call overhead.
        self.mach.charge(ctx.proc, 10 * self.costs.int_alu);
        let mut callee_ctx = Ctx {
            proc: ctx.proc,
            in_region: ctx.in_region,
            region: ctx.region,
        };
        self.run_block(callee_sc, 0, &mut callee_frame, &mut callee_ctx)?;
        for addr in registered {
            self.checker.unregister(addr);
        }
        Ok(())
    }

    /// Base address and byte stride of a contiguous-direct run.
    fn run_geometry(
        &self,
        r: &BulkRef,
        inst: usize,
        lb: i64,
        step: i64,
        frame: &Frame,
    ) -> (u64, i64) {
        let plan = self.plans.get(inst);
        let PlanKind::Contig { base, strides } = &plan.kind else {
            unreachable!("run geometry of a reshaped plan")
        };
        let mut addr = *base as i64;
        let mut run_stride = 0i64;
        for (d, t) in r.idx.iter().enumerate() {
            let v0 = match t.var {
                AffVar::Loop => t.scale * lb + t.offset,
                AffVar::Reg(rg) => t.scale * frame.scalars[rg as usize].as_i() + t.offset,
                AffVar::None => t.offset,
            };
            addr += (v0 - 1) * strides[d] as i64;
            if matches!(t.var, AffVar::Loop) {
                run_stride += t.scale * step * strides[d] as i64;
            }
        }
        (addr as u64, run_stride)
    }
}

impl Mach<'_> {
    /// Dispatch a bulk write run (access + raw store per element) to the
    /// whole machine or this member's shard.
    #[inline]
    fn fill_run(&mut self, proc: ProcId, run: &AccessRun, word: u64) {
        match self {
            Mach::Whole(m) => {
                m.fill_run_u64(proc, run, word);
            }
            Mach::Shard(s) => {
                debug_assert_eq!(proc, s.proc());
                s.fill_run_u64(run, word);
            }
        }
    }
}
